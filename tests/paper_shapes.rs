//! Small-scale versions of the paper's qualitative results, so
//! `cargo test` alone demonstrates the reproduction (the full-size tables
//! come from the `fig1`…`fig7` binaries in `maps-bench`).

use maps::analysis::GroupedReuseProfiler;
use maps::secure::{Layout, SecureConfig};
use maps::sim::itermin::run_min;
use maps::sim::{CacheContents, MdcConfig, SecureSim, SimConfig};
use maps::trace::{BlockKind, MetaGroup};
use maps::workloads::Benchmark;

const N: u64 = 40_000;

fn mpki(cfg: &SimConfig, bench: Benchmark) -> f64 {
    SecureSim::new(cfg.clone(), bench.build(5))
        .run(N)
        .metadata_mpki()
}

/// Figure 1: caching all types beats counters-only at small capacities.
#[test]
fn fig1_all_types_beat_counters_only() {
    let base = SimConfig::paper_default();
    for bench in [Benchmark::Canneal, Benchmark::Libquantum] {
        let all = mpki(
            &base.with_mdc(
                base.mdc
                    .with_contents(CacheContents::ALL)
                    .with_size(64 << 10),
            ),
            bench,
        );
        let ctrs = mpki(
            &base.with_mdc(
                base.mdc
                    .with_contents(CacheContents::COUNTERS_ONLY)
                    .with_size(64 << 10),
            ),
            bench,
        );
        assert!(
            all < ctrs,
            "{bench}: all={all:.1} vs counters-only={ctrs:.1}"
        );
    }
}

/// Figure 2's flip: canneal prefers a big metadata cache, the average
/// workload prefers a big LLC.
#[test]
fn fig2_canneal_prefers_metadata_capacity() {
    let base = SimConfig::paper_default();
    let big_llc = base
        .with_llc_bytes(1 << 20)
        .with_mdc(base.mdc.with_size(16 << 10));
    let split = base
        .with_llc_bytes(512 << 10)
        .with_mdc(base.mdc.with_size(512 << 10));
    let canneal_big = SecureSim::new(big_llc, Benchmark::Canneal.build(5))
        .run(N)
        .ed2();
    let canneal_split = SecureSim::new(split, Benchmark::Canneal.build(5))
        .run(N)
        .ed2();
    assert!(
        canneal_split < canneal_big,
        "canneal should prefer the 512K/512K split: {canneal_split:.3e} vs {canneal_big:.3e}"
    );
}

/// Table II: data protected per metadata block.
#[test]
fn table2_data_protected() {
    let pi = Layout::new(SecureConfig::poison_ivy(1 << 30));
    let sgx = Layout::new(SecureConfig::sgx(1 << 30));
    assert_eq!(pi.data_protected_by(BlockKind::Counter), 4 << 10);
    assert_eq!(sgx.data_protected_by(BlockKind::Counter), 512);
    assert_eq!(pi.data_protected_by(BlockKind::Hash), 512);
    assert_eq!(pi.data_protected_by(BlockKind::Tree(0)), 32 << 10);
    assert_eq!(sgx.data_protected_by(BlockKind::Tree(0)), 4 << 10);
}

/// Figure 3: tree nodes have the shortest reuse distances, hashes the
/// longest.
#[test]
fn fig3_reuse_distance_ordering() {
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::disabled());
    for bench in [Benchmark::Libquantum, Benchmark::Fft] {
        let mut sim = SecureSim::new(cfg.clone(), bench.build(5));
        let mut profiler = GroupedReuseProfiler::new();
        sim.run_observed(N, &mut profiler);
        let at_4k = |g: MetaGroup| profiler.cdf(g).fraction_at_or_below(64);
        assert!(
            at_4k(MetaGroup::Tree) >= at_4k(MetaGroup::Counter),
            "{bench}: tree should be shorter than counters"
        );
        assert!(
            at_4k(MetaGroup::Counter) >= at_4k(MetaGroup::Hash),
            "{bench}: counters should be shorter than hashes"
        );
    }
}

/// Figure 4: the streaming benchmarks are strongly bimodal.
#[test]
fn fig4_bimodality() {
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::disabled());
    for bench in [Benchmark::Libquantum, Benchmark::Lbm] {
        let mut sim = SecureSim::new(cfg.clone(), bench.build(5));
        let mut profiler = GroupedReuseProfiler::new();
        sim.run_observed(N, &mut profiler);
        assert!(
            profiler.combined().class_counts().is_bimodal(),
            "{bench} should classify as bimodal"
        );
    }
}

/// Figure 5: write-after-write reuse is shorter than write-after-read.
#[test]
fn fig5_waw_shorter_than_war() {
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::disabled());
    let mut sim = SecureSim::new(cfg, Benchmark::Fft.build(5));
    let mut profiler = GroupedReuseProfiler::new();
    // WaW pairs need two writebacks of the same hash block; use a longer
    // window than the other shape tests so enough dirty evictions recur.
    sim.run_observed(4 * N, &mut profiler);
    use maps::analysis::Transition;
    let waw = profiler
        .transition_cdf(MetaGroup::Hash, Transition::WRITE_AFTER_WRITE)
        .quantile(0.5)
        .expect("fft generates WaW hash pairs");
    let war = profiler
        .transition_cdf(MetaGroup::Hash, Transition::WRITE_AFTER_READ)
        .quantile(0.5)
        .expect("fft generates WaR hash pairs");
    assert!(
        waw <= war,
        "WaW median {waw} should not exceed WaR median {war}"
    );
}

/// Figure 6: trace-fed MIN loses to pseudo-LRU once its future knowledge
/// goes stale.
#[test]
fn fig6_min_worse_than_pseudo_lru() {
    let mut cfg = SimConfig::paper_default();
    cfg.mdc = MdcConfig::paper_default().with_size(32 << 10);
    cfg.warmup_fraction = 0.0;
    let mut losses = 0;
    let benches = [Benchmark::Mcf, Benchmark::Canneal, Benchmark::Fft];
    for bench in benches {
        let plru = mpki(&cfg, bench);
        let min = run_min(&cfg, bench, 5, N).metadata_mpki();
        if min > plru {
            losses += 1;
        }
    }
    assert!(
        losses >= 2,
        "MIN should lose to pseudo-LRU on most of {benches:?}"
    );
}
