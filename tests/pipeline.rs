//! End-to-end pipeline tests: every workload profile through the full
//! secure-memory simulation, with cross-crate consistency invariants.

use maps::sim::{CacheContents, MdcConfig, SecureSim, SimConfig};
use maps::trace::MetaGroup;
use maps::workloads::Benchmark;

const N: u64 = 30_000;

fn run(cfg: &SimConfig, bench: Benchmark) -> maps::sim::SimReport {
    SecureSim::new(cfg.clone(), bench.build(99)).run(N)
}

#[test]
fn every_benchmark_completes_with_consistent_totals() {
    let cfg = SimConfig::paper_default();
    for bench in Benchmark::ALL {
        let r = run(&cfg, bench);
        assert_eq!(r.workload, bench.name());
        assert!(r.instructions > 0, "{bench}: no instructions");
        assert!(
            r.cycles >= r.instructions,
            "{bench}: cycles below CPI-1 floor"
        );
        let meta = r.engine.meta.metadata_total();
        assert_eq!(
            meta.accesses,
            meta.hits + meta.misses,
            "{bench}: meta counts"
        );
        // Every data read miss produces at least a hash and counter access.
        assert!(
            meta.accesses >= 2 * r.engine.reads,
            "{bench}: too few metadata accesses for {} reads",
            r.engine.reads
        );
        assert!(r.energy.total_pj() > 0.0, "{bench}: no energy accounted");
    }
}

#[test]
fn memory_intensity_classification_matches_profiles() {
    // A longer window than the other tests: the small working sets need
    // their compulsory misses amortized before steady-state MPKI emerges.
    let cfg = SimConfig::paper_default();
    for bench in Benchmark::ALL {
        let r = SecureSim::new(cfg.clone(), bench.build(99)).run(5 * N);
        if bench.is_memory_intensive() {
            assert!(
                r.llc_mpki() > 10.0,
                "{bench}: expected MPKI > 10, got {:.1}",
                r.llc_mpki()
            );
        } else {
            assert!(
                r.llc_mpki() < 15.0,
                "{bench}: expected modest MPKI, got {:.1}",
                r.llc_mpki()
            );
        }
    }
}

#[test]
fn secure_memory_strictly_costs_more_than_insecure() {
    for bench in [Benchmark::Libquantum, Benchmark::Canneal, Benchmark::Fft] {
        let secure = run(&SimConfig::paper_default(), bench);
        let insecure = run(&SimConfig::insecure_baseline(), bench);
        assert!(secure.cycles >= insecure.cycles, "{bench}: cycles");
        assert!(
            secure.energy.total_pj() > insecure.energy.total_pj(),
            "{bench}: energy"
        );
        assert!(secure.ed2() > insecure.ed2(), "{bench}: ED^2");
    }
}

#[test]
fn metadata_cache_monotonically_reduces_dram_traffic() {
    let base = SimConfig::paper_default();
    for bench in [Benchmark::Libquantum, Benchmark::Leslie3d] {
        let sizes = [0u64, 16 << 10, 256 << 10];
        let traffic: Vec<u64> = sizes
            .iter()
            .map(|&s| {
                let cfg = base.with_mdc(if s == 0 {
                    MdcConfig::disabled()
                } else {
                    base.mdc.with_size(s)
                });
                run(&cfg, bench).engine.dram_meta.total()
            })
            .collect();
        assert!(
            traffic[0] > traffic[1] && traffic[1] >= traffic[2],
            "{bench}: metadata DRAM traffic not decreasing: {traffic:?}"
        );
    }
}

#[test]
fn counter_hit_rate_benefits_from_page_coverage() {
    // Split counters: one block covers a 4 KB page, so page-local streams
    // hit on 63 of 64 accesses even with a tiny cache.
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::paper_default().with_size(16 << 10));
    let r = run(&cfg, Benchmark::Libquantum);
    let ctr = r.engine.meta.kind(maps::trace::BlockKind::Counter);
    assert!(
        ctr.hits as f64 > 0.9 * ctr.accesses as f64,
        "counter hit rate too low: {}/{}",
        ctr.hits,
        ctr.accesses
    );
}

#[test]
fn excluding_a_type_forces_all_its_accesses_to_memory() {
    let base = SimConfig::paper_default();
    let cfg = base.with_mdc(base.mdc.with_contents(CacheContents::COUNTERS_ONLY));
    let r = run(&cfg, Benchmark::Fft);
    let hash = r.engine.meta.kind(maps::trace::BlockKind::Hash);
    assert_eq!(hash.hits, 0, "hashes must never hit when not cacheable");
    assert!(r.group_mpki(MetaGroup::Hash) > 0.0);
}

#[test]
fn deterministic_across_runs() {
    let cfg = SimConfig::paper_default();
    let a = run(&cfg, Benchmark::Mcf);
    let b = run(&cfg, Benchmark::Mcf);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.engine.dram_meta.total(), b.engine.dram_meta.total());
    assert_eq!(
        a.engine.meta.metadata_total().misses,
        b.engine.meta.metadata_total().misses
    );
}

#[test]
fn tree_walks_only_follow_counter_misses() {
    let r = run(&SimConfig::paper_default(), Benchmark::Gups);
    let ctr_misses = r.engine.meta.kind(maps::trace::BlockKind::Counter).misses;
    assert!(
        r.engine.tree_walks <= ctr_misses,
        "walks {} exceed counter misses {}",
        r.engine.tree_walks,
        ctr_misses
    );
    assert!(r.engine.tree_walks > 0, "gups must miss counters");
}
