//! Cross-crate property-based tests (proptest) on the core invariants.

#![cfg(feature = "heavy-tests")]

use maps::analysis::ReuseProfiler;
use maps::cache::policy::{MinOracle, TrueLru};
use maps::cache::{belady_misses, csopt_min_cost, CacheConfig, CostedAccess, SetAssocCache};
use maps::secure::{Layout, SecureConfig};
use maps::trace::{BlockAddr, BlockKind};
use proptest::prelude::*;

/// Naive O(n^2) reuse-distance reference.
fn naive_distances(keys: &[u64]) -> Vec<Option<u64>> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| {
            keys[..i].iter().rposition(|&p| p == k).map(|p| {
                let mut set = std::collections::HashSet::<u64>::new();
                set.extend(&keys[p + 1..i]);
                set.len() as u64
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reuse_profiler_matches_naive(keys in prop::collection::vec(0u64..32, 1..300)) {
        let mut p = ReuseProfiler::new();
        let got: Vec<_> = keys.iter().map(|&k| p.observe(k)).collect();
        prop_assert_eq!(got, naive_distances(&keys));
    }

    #[test]
    fn reuse_distance_bounds(keys in prop::collection::vec(0u64..64, 1..400)) {
        let mut p = ReuseProfiler::new();
        let distinct = keys.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        for &k in &keys {
            if let Some(d) = p.observe(k) {
                // A reuse distance can never reach the distinct-key count.
                prop_assert!(d < distinct);
            }
        }
        prop_assert_eq!(p.cold_misses(), distinct);
    }

    #[test]
    fn csopt_equals_belady_under_uniform_costs(
        keys in prop::collection::vec(0u64..8, 1..24),
        capacity in 1usize..4,
    ) {
        let costed: Vec<_> = keys.iter().map(|&k| CostedAccess::unit(k)).collect();
        let out = csopt_min_cost(&costed, capacity, None);
        prop_assert_eq!(out.min_cost, belady_misses(&keys, capacity));
    }

    #[test]
    fn csopt_cost_monotone_in_capacity(
        keys in prop::collection::vec(0u64..8, 1..20),
    ) {
        let costed: Vec<_> =
            keys.iter().map(|&k| CostedAccess::new(k, 1 + k % 4)).collect();
        let c2 = csopt_min_cost(&costed, 2, None).min_cost;
        let c3 = csopt_min_cost(&costed, 3, None).min_cost;
        prop_assert!(c3 <= c2, "more capacity cannot cost more: {} vs {}", c3, c2);
    }

    #[test]
    fn min_oracle_never_loses_to_lru_fully_associative(
        keys in prop::collection::vec(0u64..16, 1..300),
    ) {
        let run = |mut cache: SetAssocCache<_>| -> u64 {
            keys.iter().filter(|&&k| !cache.access(k, BlockKind::Data, false).hit).count() as u64
        };
        let min = SetAssocCache::new(CacheConfig::from_bytes(256, 4), MinOracle::from_trace(&keys));
        let lru = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        let min_misses =
            keys.iter().fold((min, 0u64), |(mut c, m), &k| {
                let hit = c.access(k, BlockKind::Data, false).hit;
                (c, m + u64::from(!hit))
            }).1;
        let lru_misses = run(lru);
        prop_assert!(min_misses <= lru_misses, "MIN {} vs LRU {}", min_misses, lru_misses);
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        keys in prop::collection::vec(0u64..1024, 1..500),
        writes in prop::collection::vec(any::<bool>(), 500),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::from_bytes(1024, 4), TrueLru::new());
        for (&k, &w) in keys.iter().zip(&writes) {
            cache.access(k, BlockKind::Data, w);
            prop_assert!(cache.occupancy() <= 16);
        }
        // Every dirty write is either resident or was evicted with its
        // dirty bit intact (writeback conservation).
        let resident_dirty = cache.resident_lines().filter(|l| l.dirty).count() as u64;
        let evicted_dirty = cache.stats().total().writebacks;
        let writes_issued = keys.iter().zip(&writes).filter(|&(_, &w)| w).count() as u64;
        prop_assert!(resident_dirty + evicted_dirty <= writes_issued);
    }

    #[test]
    fn layout_metadata_regions_disjoint_from_data(
        mem_pages in 16u64..4096,
        block in 0u64..1_000_000,
    ) {
        let cfg = SecureConfig::poison_ivy(mem_pages * 4096);
        let layout = Layout::new(cfg);
        let data = BlockAddr::new(block % layout.data_blocks());
        let counter = layout.counter_block_of(data);
        let hash = layout.hash_block_of(data);
        prop_assert!(counter.index() >= layout.data_blocks());
        prop_assert!(hash.index() > counter.index() || layout.counter_blocks() == 0);
        prop_assert_eq!(layout.kind_of(data), BlockKind::Data);
        prop_assert_eq!(layout.kind_of(counter), BlockKind::Counter);
        prop_assert_eq!(layout.kind_of(hash), BlockKind::Hash);
        // The tree walk ascends strictly and terminates.
        let path: Vec<_> = layout.tree_path_of_counter(counter).collect();
        prop_assert!(path.len() <= 12);
        for (i, node) in path.iter().enumerate() {
            prop_assert_eq!(layout.kind_of(*node), BlockKind::Tree(i as u8));
        }
    }

    #[test]
    fn layout_counter_mapping_is_consistent(
        mem_pages in 16u64..1024,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let layout = Layout::new(SecureConfig::poison_ivy(mem_pages * 4096));
        let da = BlockAddr::new(a % layout.data_blocks());
        let db = BlockAddr::new(b % layout.data_blocks());
        let same_page = da.page() == db.page();
        let same_counter = layout.counter_block_of(da) == layout.counter_block_of(db);
        // Split counters: same page <=> same counter block.
        prop_assert_eq!(same_page, same_counter);
        // Hash blocks group exactly eight consecutive data blocks.
        let same_hash = layout.hash_block_of(da) == layout.hash_block_of(db);
        prop_assert_eq!(da.index() / 8 == db.index() / 8, same_hash);
    }
}
