//! Property tests over the full simulation pipeline: conservation laws
//! that must hold for any workload and configuration.

#![cfg(feature = "heavy-tests")]

use maps::cache::Partition;
use maps::sim::{
    CacheContents, MdcConfig, PartitionMode, PolicyChoice, RecordingObserver, SecureSim, SimConfig,
};
use maps::trace::{AccessKind, BlockKind, MemAccess, PhysAddr};
use maps::workloads::ReplayWorkload;
use proptest::prelude::*;

/// Builds a small arbitrary workload from proptest-chosen accesses.
fn workload_from(accesses: &[(u16, bool)]) -> ReplayWorkload {
    let trace: Vec<MemAccess> = accesses
        .iter()
        .map(|&(block, write)| {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            MemAccess::new(PhysAddr::new(u64::from(block) * 64), kind, 5)
        })
        .collect();
    ReplayWorkload::looping("prop", trace)
}

fn small_cfg(mdc_size: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.l1_bytes = 1024;
    cfg.l2_bytes = 2048;
    cfg.llc_bytes = 4096;
    cfg.mdc = MdcConfig::paper_default().with_size(mdc_size);
    cfg.warmup_fraction = 0.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_conservation_laws(
        accesses in prop::collection::vec((0u16..2048, any::<bool>()), 10..120),
        mdc_size in prop::sample::select(vec![0u64, 512, 4096, 65536]),
    ) {
        let n = accesses.len() as u64 * 3;
        let mut sim = SecureSim::new(small_cfg(mdc_size), workload_from(&accesses));
        let r = sim.run(n);
        let meta = r.engine.meta.metadata_total();

        // Conservation: every metadata access is a hit or a miss.
        prop_assert_eq!(meta.accesses, meta.hits + meta.misses);
        // Every read implies at least hash + counter accesses.
        prop_assert!(meta.accesses >= 2 * r.engine.reads);
        // Tree walks only start on counter misses.
        prop_assert!(r.engine.tree_walks <= r.engine.meta.kind(BlockKind::Counter).misses);
        // DRAM metadata reads are bounded by metadata misses plus RMW and
        // partial-fill traffic; with a cache and no partial writes, every
        // dram metadata read stems from a miss, a write-allocate fetch, an
        // RMW, or a flush fill.
        prop_assert!(
            r.engine.dram_meta.reads
                <= meta.misses + r.engine.partial_fill_reads + meta.accesses
        );
        // Stalls: at least one DRAM latency per demand read.
        prop_assert!(r.engine.stall_cycles >= r.engine.reads * 200);
        // Cycles include the instruction base.
        prop_assert!(r.cycles >= r.instructions);
    }

    #[test]
    fn smaller_metadata_cache_never_means_fewer_dram_transfers(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 20..100),
    ) {
        let n = accesses.len() as u64 * 4;
        let run = |size: u64| {
            let mut sim = SecureSim::new(small_cfg(size), workload_from(&accesses));
            sim.run(n).engine.dram_meta.total()
        };
        let none = run(0);
        let big = run(64 << 10);
        prop_assert!(big <= none, "64KB cache produced more DRAM traffic: {} > {}", big, none);
    }

    #[test]
    fn observer_sees_every_controller_metadata_access(
        accesses in prop::collection::vec((0u16..512, any::<bool>()), 10..80),
    ) {
        let n = accesses.len() as u64 * 2;
        let mut sim = SecureSim::new(small_cfg(4096), workload_from(&accesses));
        let mut rec = RecordingObserver::new();
        let r = sim.run_observed(n, &mut rec);
        prop_assert_eq!(
            rec.records.len() as u64,
            r.engine.meta.metadata_total().accesses,
            "every engine-counted access must be observed exactly once"
        );
        // The layout classifies every observed block consistently.
        for record in &rec.records {
            prop_assert!(record.kind.is_metadata());
        }
    }

    #[test]
    fn all_policies_and_partitions_preserve_counters(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 10..60),
        policy in prop::sample::select(vec![
            PolicyChoice::PseudoLru,
            PolicyChoice::TrueLru,
            PolicyChoice::Fifo,
            PolicyChoice::Random(9),
            PolicyChoice::Srrip,
            PolicyChoice::Eva,
            PolicyChoice::CostAware(5),
        ]),
        partition in prop::sample::select(vec![0usize, 2, 4, 6]),
    ) {
        let n = accesses.len() as u64 * 2;
        let mut cfg = small_cfg(8192);
        cfg.mdc.policy = policy;
        if partition != 0 {
            cfg.mdc.partition = PartitionMode::Static(Partition::counter_ways(partition));
        }
        let mut sim = SecureSim::new(cfg, workload_from(&accesses));
        let r = sim.run(n);
        let meta = r.engine.meta.metadata_total();
        prop_assert_eq!(meta.accesses, meta.hits + meta.misses);
        prop_assert!(r.engine.reads > 0 || r.engine.writes > 0 || meta.accesses == 0);
    }

    #[test]
    fn batched_replay_matches_scalar_at_any_batch_size(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 20..120),
        batch in 1usize..=512,
        mdc_size in prop::sample::select(vec![0u64, 2048, 65536]),
        sgx in any::<bool>(),
    ) {
        use maps::secure::CounterMode;
        use maps::sim::{CapturedTrace, ReplaySim};
        let n = accesses.len() as u64 * 3;
        let mut cfg = small_cfg(mdc_size);
        if sgx {
            cfg.counter_mode = CounterMode::SgxMonolithic;
        }
        let trace = CapturedTrace::record(&cfg, workload_from(&accesses), n);
        let scalar = ReplaySim::new(cfg.clone(), &trace).run_scalar();
        let batched = ReplaySim::new(cfg, &trace).with_batch_size(batch).run();
        prop_assert_eq!(
            batched, scalar,
            "batched replay (batch={}) diverged from scalar", batch
        );
    }

    #[test]
    fn contents_restriction_only_reduces_hits(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 20..80),
    ) {
        let n = accesses.len() as u64 * 4;
        let run = |contents: CacheContents| {
            let mut cfg = small_cfg(8192);
            cfg.mdc.contents = contents;
            let mut sim = SecureSim::new(cfg, workload_from(&accesses));
            sim.run(n).engine.meta.kind(BlockKind::Counter).hits
        };
        // Counters are admitted in both configs; giving hashes and tree
        // nodes their own admission can steal counter capacity but the
        // access *count* stays driven by the workload. This asserts the
        // runs complete and counters still hit somewhere in both.
        let only = run(CacheContents::COUNTERS_ONLY);
        let all = run(CacheContents::ALL);
        prop_assert!(only > 0 || all == only || all > 0);
    }
}
