//! Property tests for tenant attribution: the per-tenant ledger must
//! conserve the global metadata-cache counters for arbitrary access
//! interleavings, across both structural designs and every partition
//! mode; partitions must additionally bound each tenant's occupancy by
//! its static share.

#![cfg(feature = "heavy-tests")]

use maps::cache::{CacheStats, TenantPartition};
use maps::sim::{MdcConfig, MdcDesign, MetadataCache, PartitionMode, SecureSim, SimConfig};
use maps::trace::{BlockKind, TenantId};
use maps_oracle::diff::{OpsWorkload, TraceOp};
use proptest::prelude::*;

fn kind_of(sel: u8) -> BlockKind {
    match sel % 4 {
        0 => BlockKind::Counter,
        1 => BlockKind::Hash,
        2 => BlockKind::Tree(0),
        _ => BlockKind::Tree(1),
    }
}

fn small_cfg(mdc: MdcConfig) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.l1_bytes = 1024;
    cfg.l2_bytes = 2048;
    cfg.llc_bytes = 4096;
    cfg.mdc = mdc;
    cfg.warmup_fraction = 0.0;
    cfg
}

fn ops_trace(accesses: &[(u16, bool)]) -> Vec<TraceOp> {
    accesses
        .iter()
        .map(|&(block, write)| {
            let b = u64::from(block);
            if write {
                TraceOp::Write(b)
            } else {
                TraceOp::Read(b)
            }
        })
        .collect()
}

// Σ per-tenant booked stats and occupancy against the report's rows.
fn tenant_sums(report: &maps::sim::SimReport) -> (CacheStats, u64) {
    let mut sum = CacheStats::default();
    let mut occupancy = 0;
    for row in &report.tenants {
        sum.accumulate(&row.meta);
        occupancy += row.occupancy;
    }
    (sum, occupancy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Driving a bare [`MetadataCache`] with arbitrary interleavings of
    // tenants, kinds, and partial writes: the tenant table's combined
    // stats equal the global counters bucket-for-bucket, and per-tenant
    // occupancy sums to exactly the resident line count — for both
    // designs and every partition mode.
    #[test]
    fn tenant_table_conserves_global_cache_stats(
        // One op per element: `((block, kind selector, write), (tenant,
        // partial, slot))` — nested pairs because tuple strategies top
        // out at four elements.
        ops in prop::collection::vec(
            ((0u64..192, 0u8..4, any::<bool>()), (0u8..4, any::<bool>(), 0u8..8)),
            30..200,
        ),
        design in prop::sample::select(vec![
            MdcDesign::SetAssoc,
            MdcDesign::Randomized { seed: 0x5EED },
            MdcDesign::Randomized { seed: 0xA11CE },
        ]),
        partition in prop::sample::select(vec![
            PartitionMode::None,
            PartitionMode::PerTenant { tenants: 2 },
            PartitionMode::PerTenant { tenants: 3 },
        ]),
        partial_writes in any::<bool>(),
    ) {
        let mut cfg = MdcConfig::paper_default()
            .with_size(4096)
            .with_design(design)
            .with_partition(partition);
        cfg.partial_writes = partial_writes;
        let mut mdc = MetadataCache::new(&cfg).expect("non-zero cache");

        for &((block, sel, write), (tenant, partial, slot)) in &ops {
            let kind = kind_of(sel);
            // Disjoint key spaces per kind, like the real block layout.
            let key = block + u64::from(sel % 4) * 4096;
            let tenant = TenantId(tenant);
            let hash_or_tree = !matches!(kind, BlockKind::Counter);
            if partial && hash_or_tree && mdc.partial_writes_enabled() {
                mdc.write_partial(key, kind, slot, tenant);
            } else {
                mdc.access(key, kind, write, tenant);
            }
        }

        let table = mdc.tenant_stats();
        prop_assert_eq!(
            table.combined(),
            *mdc.stats(),
            "per-tenant stats must sum to the global counters"
        );
        let resident = mdc.resident_lines().count() as u64;
        let booked: u64 = table.tenants().map(|t| table.occupancy(t)).sum();
        prop_assert_eq!(booked, resident, "occupancy ledger must cover every resident line");
        prop_assert_eq!(mdc.occupancy() as u64, resident);
    }

    // In shared designs (no partition), tenant attribution is pure
    // observation: re-labelling the same access stream across 1..=4
    // tenants changes nothing the simulator measures — engine counters,
    // hierarchy, cycles, energy — and the per-tenant rows of every
    // labelling sum to the same totals.
    #[test]
    fn shared_design_attribution_is_observation_only(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 20..100),
        tenants in 2usize..=4,
        design in prop::sample::select(vec![
            MdcDesign::SetAssoc,
            MdcDesign::Randomized { seed: 0x7AB1E },
        ]),
        mdc_size in prop::sample::select(vec![2048u64, 65536]),
    ) {
        let trace = ops_trace(&accesses);
        let n = accesses.len() as u64 * 3;
        let cfg = small_cfg(
            MdcConfig::paper_default().with_size(mdc_size).with_design(design),
        );
        let run = |k: usize| {
            SecureSim::new(cfg.clone(), OpsWorkload::with_tenants(&trace, k)).run(n)
        };
        let single = run(1);
        let multi = run(tenants);

        prop_assert_eq!(&multi.engine, &single.engine, "engine counters moved with labelling");
        prop_assert_eq!(&multi.hierarchy, &single.hierarchy);
        prop_assert_eq!(multi.cycles, single.cycles);
        prop_assert_eq!(&multi.energy, &single.energy);

        let (multi_sum, multi_occ) = tenant_sums(&multi);
        let (single_sum, single_occ) = tenant_sums(&single);
        prop_assert_eq!(multi_sum, single_sum, "attributed totals must not depend on labelling");
        prop_assert_eq!(multi_occ, single_occ);
    }

    // Under a per-tenant partition with as many tenants as the
    // interleaving uses, each tenant's end-of-run occupancy respects its
    // static share — way range × sets for the set-associative design,
    // frame quota for the randomized one — and the rows stay internally
    // conserved.
    #[test]
    fn per_tenant_partitions_bound_occupancy_by_share(
        accesses in prop::collection::vec((0u16..1024, any::<bool>()), 30..120),
        tenants in 2usize..=4,
        design in prop::sample::select(vec![
            MdcDesign::SetAssoc,
            MdcDesign::Randomized { seed: 0xB0B },
        ]),
    ) {
        let trace = ops_trace(&accesses);
        let n = accesses.len() as u64 * 3;
        let mdc = MdcConfig::paper_default()
            .with_size(4096)
            .with_design(design)
            .with_partition(PartitionMode::PerTenant { tenants });
        let ways = mdc.ways;
        let capacity = (mdc.size_bytes / 64) as usize;
        let sets = capacity / ways;
        let cfg = small_cfg(mdc);
        let report =
            SecureSim::new(cfg, OpsWorkload::with_tenants(&trace, tenants)).run(n);

        let split = TenantPartition::new(tenants, ways).expect("valid split");
        let mut total_occupancy = 0;
        for row in &report.tenants {
            let total = row.meta.total();
            prop_assert_eq!(total.accesses, total.hits + total.misses);
            let share = match design {
                MdcDesign::SetAssoc => {
                    let (lo, hi) = split.ways_for(row.tenant, ways);
                    (hi - lo) * sets
                }
                MdcDesign::Randomized { .. } => split.frame_quota(capacity),
            };
            prop_assert!(
                row.occupancy <= share as u64,
                "tenant {} occupies {} lines, above its share of {}",
                row.tenant,
                row.occupancy,
                share
            );
            total_occupancy += row.occupancy;
        }
        prop_assert!(total_occupancy <= capacity as u64);
    }
}
