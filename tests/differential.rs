//! Bounded differential tier: production `SecureSim` vs the executable
//! specification in `maps-oracle`, in lockstep, across every replacement
//! policy × {secure split-counter, secure SGX, metadata-cache-off} plus
//! partition modes, partial writes, and the adversarial workload
//! generators.
//!
//! Trace lengths are sized to keep the whole suite well under a minute in
//! `cargo test -q`; setting `MAPS_DEEP_DIFF=1` multiplies them 50× for the
//! nightly long-fuzz tier. Any divergence is automatically minimized and
//! dumped as a replayable artifact under `results/failures/` (see
//! `maps_oracle::diff`).
//!
//! A second differential axis lives here too: the batched SoA replay
//! engine vs the scalar reference loop, across the same policy × mode
//! matrix and the adversarial storm generators at batch sizes chosen to
//! straddle cascade and overflow bursts.

use maps_cache::Partition;
use maps_oracle::diff::{
    check_case, failures_dir, ops_from_workload, random_ops, replay_artifact, scaled_len, DiffCase,
};
use maps_secure::CounterMode;
use maps_sim::{
    CacheContents, CapturedTrace, MdcConfig, MdcDesign, PartitionMode, PolicyChoice, ReplaySim,
    SimConfig,
};
use maps_workloads::{Benchmark, CascadeDeepGen, OverflowHeavyGen, PartitionBoundaryGen};

/// Small hierarchy + small MDC so conflict misses, evictions, and cascades
/// happen within short traces.
fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.l1_bytes = 1024;
    cfg.l2_bytes = 2048;
    cfg.llc_bytes = 4096;
    cfg.memory_bytes = 1 << 20;
    cfg.mdc = MdcConfig::paper_default().with_size(2048);
    cfg
}

/// Every runtime-selectable replacement policy. `Min`/`TraceMin` carry the
/// empty-trace sentinel: the harness derives their oracle trace from the
/// case deterministically.
fn all_policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::PseudoLru,
        PolicyChoice::TrueLru,
        PolicyChoice::Fifo,
        PolicyChoice::Random(0xD1FF),
        PolicyChoice::Srrip,
        PolicyChoice::Eva,
        PolicyChoice::Min(Vec::new()),
        PolicyChoice::TraceMin(Vec::new()),
        PolicyChoice::CostAware(5),
        PolicyChoice::Drrip,
        PolicyChoice::EvaPerType,
    ]
}

fn run(label: &str, seed: u64, cfg: SimConfig, ops: Vec<maps_oracle::TraceOp>) {
    run_tenants(label, seed, cfg, ops, 1);
}

fn run_tenants(
    label: &str,
    seed: u64,
    cfg: SimConfig,
    ops: Vec<maps_oracle::TraceOp>,
    tenants: usize,
) {
    let case = DiffCase {
        label: label.to_string(),
        seed,
        cfg,
        ops,
        tenants,
    };
    if let Err(e) = check_case(&case) {
        panic!("{e}");
    }
}

#[test]
fn every_policy_secure_split_counters() {
    let n = scaled_len(500);
    for (i, policy) in all_policies().into_iter().enumerate() {
        let seed = 0x5EC0 + i as u64;
        let mut cfg = base_cfg();
        let label = format!("policy-{}-pi", policy.name());
        cfg.mdc.policy = policy;
        run(&label, seed, cfg, random_ops(seed, 2048, n, 40));
    }
}

#[test]
fn every_policy_secure_sgx() {
    let n = scaled_len(400);
    for (i, policy) in all_policies().into_iter().enumerate() {
        let seed = 0x5360 + i as u64;
        let mut cfg = base_cfg();
        cfg.counter_mode = CounterMode::SgxMonolithic;
        let label = format!("policy-{}-sgx", policy.name());
        cfg.mdc.policy = policy;
        run(&label, seed, cfg, random_ops(seed, 2048, n, 40));
    }
}

#[test]
fn metadata_cache_off() {
    // Without an MDC the policy is irrelevant; cover both counter modes
    // and the insecure baseline.
    let n = scaled_len(500);
    let mut cfg = base_cfg();
    cfg.mdc = MdcConfig::disabled();
    run(
        "mdc-off-pi",
        0x0FF,
        cfg.clone(),
        random_ops(0x0FF, 2048, n, 40),
    );
    cfg.counter_mode = CounterMode::SgxMonolithic;
    run("mdc-off-sgx", 0x0FE, cfg, random_ops(0x0FE, 2048, n, 40));
    let insecure = SimConfig::insecure_baseline();
    run("insecure", 0x0FD, insecure, random_ops(0x0FD, 2048, n, 40));
}

#[test]
fn contents_subsets_and_partial_writes() {
    let n = scaled_len(400);
    for (i, contents) in [
        CacheContents::COUNTERS_ONLY,
        CacheContents::COUNTERS_AND_HASHES,
        CacheContents::NONE,
    ]
    .into_iter()
    .enumerate()
    {
        let seed = 0xC0 + i as u64;
        let mut cfg = base_cfg();
        cfg.mdc.contents = contents;
        run(
            &format!("contents-{}", contents.label().replace('+', "-")),
            seed,
            cfg,
            random_ops(seed, 2048, n, 40),
        );
    }
    let mut cfg = base_cfg();
    cfg.mdc.partial_writes = true;
    run("partial-writes", 0xA7, cfg, random_ops(0xA7, 2048, n, 50));
}

#[test]
fn partition_modes() {
    let n = scaled_len(400);
    let mut cfg = base_cfg();
    cfg.mdc.partition = PartitionMode::Static(Partition::counter_ways(3));
    run(
        "partition-static",
        0x57A,
        cfg,
        random_ops(0x57A, 2048, n, 40),
    );

    let mut cfg = base_cfg();
    cfg.mdc.partition = PartitionMode::Dynamic {
        a: Partition::counter_ways(2),
        b: Partition::counter_ways(6),
        leaders_per_side: 1,
    };
    run(
        "partition-dynamic",
        0xD7A,
        cfg,
        random_ops(0xD7A, 2048, n, 40),
    );
}

#[test]
fn randomized_design_every_policy_and_mode() {
    // The randomized fully-associative backend ignores the replacement
    // policy, but the policy still shapes the surrounding config plumbing
    // (MIN sentinel materialization included), so sweep the whole matrix:
    // every policy × both counter modes against the naive spec.
    let n = scaled_len(350);
    for (i, policy) in all_policies().into_iter().enumerate() {
        for (mode, tag) in [
            (CounterMode::SplitPi, "pi"),
            (CounterMode::SgxMonolithic, "sgx"),
        ] {
            let seed = 0x7A4D + (i as u64) * 2 + u64::from(mode == CounterMode::SgxMonolithic);
            let mut cfg = base_cfg();
            cfg.counter_mode = mode;
            let label = format!("rand-{}-{}", policy.name(), tag);
            cfg.mdc.policy = policy.clone();
            cfg.mdc = cfg.mdc.with_design(MdcDesign::Randomized {
                seed: 0x11CE + i as u64,
            });
            run(&label, seed, cfg, random_ops(seed, 2048, n, 40));
        }
    }
}

#[test]
fn randomized_design_partial_writes_and_contents() {
    let n = scaled_len(400);
    let mut cfg = base_cfg();
    cfg.mdc = cfg.mdc.with_design(MdcDesign::Randomized { seed: 0xBEE });
    cfg.mdc.partial_writes = true;
    run(
        "rand-partial-writes",
        0xB1,
        cfg,
        random_ops(0xB1, 2048, n, 50),
    );
    let mut cfg = base_cfg();
    cfg.mdc = cfg.mdc.with_design(MdcDesign::Randomized { seed: 0xBEF });
    cfg.mdc.contents = CacheContents::COUNTERS_ONLY;
    run(
        "rand-counters-only",
        0xB2,
        cfg,
        random_ops(0xB2, 2048, n, 40),
    );
}

#[test]
fn multi_tenant_shared_and_partitioned() {
    // Tenant attribution must not perturb simulated behavior in a shared
    // cache, and per-tenant way splits / randomized quotas must agree
    // with the spec under an interleaved multi-tenant stream.
    let n = scaled_len(500);
    run_tenants(
        "tenants-shared",
        0x7E0,
        base_cfg(),
        random_ops(0x7E0, 2048, n, 40),
        3,
    );

    let mut cfg = base_cfg();
    cfg.mdc = cfg
        .mdc
        .with_partition(PartitionMode::PerTenant { tenants: 2 });
    run_tenants(
        "tenants-split-setassoc",
        0x7E1,
        cfg,
        random_ops(0x7E1, 2048, n, 40),
        2,
    );

    let mut cfg = base_cfg();
    cfg.mdc = cfg
        .mdc
        .with_design(MdcDesign::Randomized { seed: 0x9A })
        .with_partition(PartitionMode::PerTenant { tenants: 2 });
    run_tenants(
        "tenants-quota-randomized",
        0x7E2,
        cfg,
        random_ops(0x7E2, 2048, n, 40),
        2,
    );

    // More tenants than the round-robin stream strictly needs: ids above
    // the partition count still land somewhere legal via wrap-around.
    let mut cfg = base_cfg();
    cfg.mdc = cfg
        .mdc
        .with_partition(PartitionMode::PerTenant { tenants: 4 });
    run_tenants(
        "tenants-wraparound",
        0x7E3,
        cfg,
        random_ops(0x7E3, 2048, n, 40),
        7,
    );
}

#[test]
fn adversarial_generators() {
    let n = scaled_len(600);
    run(
        "adv-overflow",
        11,
        base_cfg(),
        ops_from_workload(OverflowHeavyGen::new(11, 4, 2), n),
    );
    run(
        "adv-cascade",
        12,
        base_cfg(),
        ops_from_workload(CascadeDeepGen::new(12, 64, 4), n),
    );
    let mut cfg = base_cfg();
    cfg.mdc.partition = PartitionMode::Dynamic {
        a: Partition::counter_ways(2),
        b: Partition::counter_ways(6),
        leaders_per_side: 1,
    };
    run(
        "adv-partition",
        13,
        cfg,
        ops_from_workload(PartitionBoundaryGen::new(13, 32, 150), n),
    );
}

#[test]
fn benchmark_profile_trace() {
    // One realistic (non-adversarial) stream to cover locality patterns
    // the uniform generator misses.
    let n = scaled_len(800);
    run(
        "bench-gups",
        21,
        base_cfg(),
        ops_from_workload(Benchmark::Gups.build(21), n),
    );
}

/// Asserts the batched SoA replay reproduces the scalar reference loop
/// bit-for-bit — full [`maps_sim::SimReport`] equality, cycles included.
fn batched_vs_scalar(label: &str, cfg: &SimConfig, trace: &CapturedTrace) {
    let scalar = ReplaySim::new(cfg.clone(), trace).run_scalar();
    let batched = ReplaySim::new(cfg.clone(), trace).run();
    assert_eq!(
        batched, scalar,
        "{label}: batched replay diverged from scalar"
    );
}

#[test]
fn batched_replay_every_policy_and_mode() {
    // A capture depends only on the front end, so one recording serves
    // every back-end point: all policies × both counter modes, MDC-off,
    // and the insecure baseline.
    let accesses = scaled_len(4_000) as u64;
    let base = base_cfg();
    let trace = CapturedTrace::record(&base, Benchmark::Gups.build(0xBA7C), accesses);
    for (i, policy) in all_policies().into_iter().enumerate() {
        for (mode, tag) in [
            (CounterMode::SplitPi, "pi"),
            (CounterMode::SgxMonolithic, "sgx"),
        ] {
            let mut cfg = base.clone();
            cfg.mdc.policy = policy.clone();
            cfg.counter_mode = mode;
            let label = format!("batch-{}-{}-{}", i, policy.name(), tag);
            batched_vs_scalar(&label, &cfg, &trace);
        }
    }
    let mut off = base.clone();
    off.mdc = MdcConfig::disabled();
    batched_vs_scalar("batch-mdc-off", &off, &trace);
    let mut insecure = base.clone();
    insecure.secure = false;
    insecure.mdc = MdcConfig::disabled();
    batched_vs_scalar("batch-insecure", &insecure, &trace);
}

#[test]
fn batched_replay_boundary_straddling_storms() {
    // Overflow re-encryption bursts and deep BMT cascades must not care
    // where a batch boundary falls: every batch size — including ones
    // guaranteed to split a cascade mid-storm — reproduces the scalar
    // report exactly.
    let accesses = scaled_len(3_000) as u64;
    let base = base_cfg();
    let overflow = CapturedTrace::record(&base, OverflowHeavyGen::new(11, 4, 2), accesses);
    let cascade = CapturedTrace::record(&base, CascadeDeepGen::new(12, 64, 4), accesses);
    for (label, trace) in [("overflow", &overflow), ("cascade", &cascade)] {
        let scalar = ReplaySim::new(base.clone(), trace).run_scalar();
        for batch in [1usize, 3, 8, 255, 256, 511, 512] {
            let batched = ReplaySim::new(base.clone(), trace)
                .with_batch_size(batch)
                .run();
            assert_eq!(batched, scalar, "storm-{label} at batch size {batch}");
        }
    }
}

#[test]
fn replay_failure_artifacts() {
    // Any artifact present under results/failures/ must still parse and
    // replay; this is also the entry point named in artifact headers.
    let dir = failures_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no failures directory: nothing to replay
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "trace") {
            // The artifact documents a historical divergence; replay must
            // at minimum parse and execute. A passing replay means the bug
            // it captured has been fixed (fine); a parse error means the
            // artifact format broke (not fine).
            let _divergence =
                replay_artifact(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    }
}
