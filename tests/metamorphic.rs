//! Metamorphic tier: invariants that relate *different* runs of the
//! simulator, rather than comparing one run against the oracle.
//!
//! * Interleaving independent address regions preserves each region's
//!   metadata miss counts and observed metadata streams.
//! * Doubling metadata-cache size (same block geometry, double ways)
//!   never increases metadata misses under stack-algorithm policies.
//! * Counter-overflow re-encryption leaves the value-level BMT root
//!   consistent with a from-scratch recomputation.
//! * Secure and insecure runs agree on the core-visible memory stream
//!   (metadata handling must never perturb the data hierarchy).

use maps_oracle::diff::{ops_from_workload, random_ops, OpsWorkload, TraceOp};
use maps_oracle::{OracleBmt, OracleCounters};
use maps_secure::{spec, CounterMode, SecureConfig, WriteOutcome};
use maps_sim::{CapturedTrace, MdcConfig, MetaObserver, PolicyChoice, SecureSim, SimConfig};
use maps_trace::{BlockAddr, MetaAccess};
use maps_workloads::OverflowHeavyGen;

fn small_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.l1_bytes = 1024;
    cfg.l2_bytes = 2048;
    cfg.llc_bytes = 4096;
    cfg.memory_bytes = 1 << 20;
    cfg.mdc = MdcConfig::paper_default().with_size(2048);
    cfg
}

/// Records every observed metadata access verbatim.
#[derive(Default)]
struct StreamObserver {
    stream: Vec<MetaAccess>,
}

impl MetaObserver for StreamObserver {
    fn observe(&mut self, access: &MetaAccess) {
        self.stream.push(*access);
    }
}

fn run_ops(cfg: &SimConfig, ops: &[TraceOp]) -> (maps_sim::EngineStats, Vec<MetaAccess>) {
    let mut sim = SecureSim::new(cfg.clone(), OpsWorkload::new(ops));
    let mut obs = StreamObserver::default();
    for _ in 0..ops.len() {
        sim.step_observed(&mut obs);
    }
    (*sim.engine().expect("secure run").stats(), obs.stream)
}

#[test]
fn interleaving_independent_regions_preserves_per_region_misses() {
    // Two regions far apart in physical memory share no data, counter,
    // hash, or tree blocks. Served by independent controllers (one
    // simulator each), every interleaving of the two request streams must
    // reproduce each region's solo miss counts and metadata stream.
    let cfg = small_cfg();
    let region_a = random_ops(51, 1024, 400, 40);
    let region_b: Vec<TraceOp> = random_ops(52, 1024, 400, 40)
        .into_iter()
        .map(|op| match op {
            TraceOp::Read(b) => TraceOp::Read(b + 8192),
            TraceOp::Write(b) => TraceOp::Write(b + 8192),
        })
        .collect();

    let (solo_a, stream_a) = run_ops(&cfg, &region_a);
    let (solo_b, stream_b) = run_ops(&cfg, &region_b);

    let mut sim_a = SecureSim::new(cfg.clone(), OpsWorkload::new(&region_a));
    let mut sim_b = SecureSim::new(cfg.clone(), OpsWorkload::new(&region_b));
    let mut obs_a = StreamObserver::default();
    let mut obs_b = StreamObserver::default();
    let (mut done_a, mut done_b) = (0usize, 0usize);
    let mut tick = 0u64;
    // Irregular (but deterministic) interleaving pattern.
    while done_a < region_a.len() || done_b < region_b.len() {
        tick = tick
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick_a = done_b >= region_b.len() || (done_a < region_a.len() && tick % 5 < 3);
        if pick_a {
            sim_a.step_observed(&mut obs_a);
            done_a += 1;
        } else {
            sim_b.step_observed(&mut obs_b);
            done_b += 1;
        }
    }

    assert_eq!(*sim_a.engine().unwrap().stats(), solo_a);
    assert_eq!(*sim_b.engine().unwrap().stats(), solo_b);
    assert_eq!(obs_a.stream, stream_a);
    assert_eq!(obs_b.stream, stream_b);
}

#[test]
fn doubling_mdc_never_increases_misses_under_stack_policies() {
    // Inclusion (Mattson): a stack algorithm's cache contents at size S
    // are a subset of its contents at size 2S on the same stream, so
    // doubling the MDC can only turn misses into hits. Gated on the
    // policy's own is_stack_algorithm() declaration.
    for policy in [PolicyChoice::TrueLru, PolicyChoice::Min(Vec::new())] {
        assert!(
            policy.build().is_stack_algorithm(),
            "{} must self-report as a stack algorithm",
            policy.name()
        );
        let ops = random_ops(61, 2048, 600, 40);
        let mk = |size: u64, ways: usize| {
            let mut cfg = small_cfg();
            cfg.mdc.size_bytes = size;
            cfg.mdc.ways = ways;
            cfg.mdc.policy = match &policy {
                // Give MIN its future knowledge, derived for this geometry.
                PolicyChoice::Min(_) => {
                    PolicyChoice::Min(maps_oracle::diff::derive_oracle_trace(&cfg, &ops, 1))
                }
                other => other.clone(),
            };
            cfg
        };
        let (small, _) = run_ops(&mk(2048, 8), &ops);
        let (large, _) = run_ops(&mk(4096, 16), &ops);
        let (sm, lm) = (
            small.meta.metadata_total().misses,
            large.meta.metadata_total().misses,
        );
        assert!(
            lm <= sm,
            "{}: doubling the MDC increased metadata misses {sm} -> {lm}",
            policy.name()
        );
    }
}

#[test]
fn non_stack_policies_report_no_inclusion_guarantee() {
    // The inclusion invariant above is gated on is_stack_algorithm();
    // every approximation/adaptive policy must decline the guarantee.
    for policy in [
        PolicyChoice::PseudoLru,
        PolicyChoice::Fifo,
        PolicyChoice::Random(1),
        PolicyChoice::Srrip,
        PolicyChoice::Eva,
        PolicyChoice::TraceMin(Vec::new()),
        PolicyChoice::CostAware(5),
        PolicyChoice::Drrip,
        PolicyChoice::EvaPerType,
    ] {
        assert!(
            !policy.build().is_stack_algorithm(),
            "{} wrongly claims the inclusion property",
            policy.name()
        );
    }
}

#[test]
fn overflow_reencryption_keeps_bmt_root_consistent() {
    // Drive hot blocks through repeated 7-bit counter overflows and check
    // after every write that incremental BMT maintenance (leaf-path and
    // whole-page updates) equals a from-scratch recomputation.
    let cfg = SecureConfig::new(16 * 4096, CounterMode::SplitPi);
    let mut counters = OracleCounters::new(CounterMode::SplitPi);
    let mut bmt = OracleBmt::new(cfg, &counters);
    let ops = ops_from_workload(OverflowHeavyGen::new(71, 4, 2), 2000);
    let mut overflows = 0;
    for op in ops.iter().filter(|op| op.is_write()) {
        let data = BlockAddr::new(op.block());
        match counters.record_write(data) {
            WriteOutcome::PageOverflow { page } => {
                overflows += 1;
                bmt.update_page(&counters, page);
            }
            WriteOutcome::Incremented => {
                bmt.update_counter_block(&counters, spec::counter_block_of(&cfg, data));
            }
        }
        assert_eq!(
            bmt.root(),
            bmt.recompute_root(&counters),
            "incremental BMT root diverged after write to block {}",
            op.block()
        );
    }
    assert!(overflows > 5, "stream must actually overflow ({overflows})");
}

#[test]
fn secure_and_insecure_agree_on_core_visible_stream() {
    // The core-visible stream (LLC demand misses and writebacks, in
    // order) is a pure function of the workload and the data hierarchy;
    // secure-memory machinery must not perturb it. Captured front ends of
    // a secure and an insecure run over identical geometry must match
    // event for event.
    let ops = random_ops(81, 2048, 800, 40);
    let secure_cfg = small_cfg();
    let mut insecure_cfg = small_cfg();
    insecure_cfg.secure = false;
    insecure_cfg.mdc = MdcConfig::disabled();

    let s = CapturedTrace::record(&secure_cfg, OpsWorkload::new(&ops), ops.len() as u64);
    let i = CapturedTrace::record(&insecure_cfg, OpsWorkload::new(&ops), ops.len() as u64);
    assert_eq!(s.hierarchy_stats(), i.hierarchy_stats());
    assert_eq!(s.total_events(), i.total_events());
    assert!(
        s.events().eq(i.events()),
        "secure and insecure front ends emitted different event streams"
    );
}
