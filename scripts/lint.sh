#!/usr/bin/env bash
# Run the workspace invariant linter (maps-lint) over the repository.
#
# Usage: scripts/lint.sh [--json]
#   --json  machine-readable report on stdout
#
# Exit codes: 0 clean, 1 findings, 2 could not run.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p maps-lint --release -- "$@"
