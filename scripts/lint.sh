#!/usr/bin/env bash
# Run the workspace invariant linter (maps-lint) over the repository.
#
# Usage: scripts/lint.sh [--json] [--explain RULE]
#   --json          machine-readable report on stdout (violations carry
#                   their root->sink call chains)
#   --explain RULE  print one rule's rationale + example and exit
#
# Exit codes: 0 clean, 1 findings, 2 could not run (incl. unknown rule).
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p maps-lint --release -- "$@"
