#!/usr/bin/env bash
# Repository verification gate: formatting, lints, build, tests, and the
# figure binaries' --check claims. Fully offline (vendored deps only).
#
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the opt-in heavy property-test suite
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --release -- -D warnings
run cargo build --release --workspace
run cargo run -q -p maps-lint --release
run cargo test -q --workspace
# The debug-profile workspace run above skips #[cfg(not(debug_assertions))]
# regression tests (release-mode partition clamping); run those here.
run cargo test -q -p maps-cache --release release_
if [[ $quick -eq 0 ]]; then
    run cargo test -q --features heavy-tests
    # Farm scheduling properties (fingerprint dedup, capture-cache
    # differential) live behind the same opt-in feature.
    run cargo test -q -p maps-farm --features heavy-tests
fi

# Claim checks on the two headline figures. fig1 is stable from 30k
# accesses; fig2's qualitative claims (E-D^2 crossovers) need at least
# ~100k accesses to emerge from warm-up noise.
run env MAPS_ACCESSES=30000 ./target/release/fig1 --check
run env MAPS_ACCESSES=100000 ./target/release/fig2 --check

# Farm campaign smoke: a deduplicated two-figure campaign through the
# shared queue must emit a fig2 TSV byte-identical to the standalone
# binary's (the full equivalence matrix runs in crates/farm/tests).
farm_dir=$(mktemp -d)
run env MAPS_ACCESSES=20000 MAPS_DETERMINISTIC=1 \
    ./target/release/maps-farm run --figures fig2,fig7 --workers 4 --dir "$farm_dir"
run env MAPS_ACCESSES=20000 MAPS_DETERMINISTIC=1 \
    ./target/release/fig2 "--tsv=$farm_dir/fig2.standalone.tsv"
run cmp "$farm_dir/fig2.tsv" "$farm_dir/fig2.standalone.tsv"
rm -rf "$farm_dir"

# Supervised daemon smoke: the same fig2 campaign submitted to
# maps-farmd over its Unix socket, with every worker slot SIGKILLing
# itself once at a seeded job position. The daemon must respawn the
# workers, finish the campaign, and publish a fig2 TSV byte-identical
# to the standalone binary's (the full fault matrix — stalls, torn
# frames, quarantine, daemon crash/resume, client reattach — runs in
# crates/farm/tests/farmd_e2e.rs).
farmd_dir=$(mktemp -d)
farmd_sock="$farmd_dir/farmd.sock"
echo "==> maps-farmd --socket $farmd_sock (workers SIGKILL at job 7)"
env MAPS_ACCESSES=20000 MAPS_DETERMINISTIC=1 MAPS_FARMD_FAULT_KILL_AT=7 \
    ./target/release/maps-farmd --socket "$farmd_sock" &
farmd_pid=$!
for _ in $(seq 100); do [[ -S "$farmd_sock" ]] && break; sleep 0.1; done
run env MAPS_ACCESSES=20000 MAPS_DETERMINISTIC=1 \
    ./target/release/maps-farm submit --socket "$farmd_sock" \
    --dir "$farmd_dir" --campaign verify-smoke --figures fig2 --workers 4
run env MAPS_ACCESSES=20000 MAPS_DETERMINISTIC=1 \
    ./target/release/fig2 "--tsv=$farmd_dir/fig2.standalone.tsv"
run cmp "$farmd_dir/fig2.tsv" "$farmd_dir/fig2.standalone.tsv"
run ./target/release/maps-farm status --socket "$farmd_sock" \
    --campaign verify-smoke
kill "$farmd_pid" 2>/dev/null || true
wait "$farmd_pid" 2>/dev/null || true
rm -rf "$farmd_dir"

# Occupancy-channel smoke: a fig_occupancy campaign killed after three
# checkpointed points (exit-42 crash hook) and re-invoked must produce
# artifacts byte-identical to an uninterrupted run. JobKind::Occupancy
# synthesizes its tenant mix outside the capture memo, so its farm path
# gets its own gate (the full kill/resume matrix runs in
# crates/farm/tests/farm_resume.rs).
occ_ref=$(mktemp -d)
occ_victim=$(mktemp -d)
run env MAPS_ACCESSES=900 MAPS_DETERMINISTIC=1 \
    ./target/release/maps-farm run --figures fig_occupancy --workers 2 --dir "$occ_ref"
echo "==> crash fig_occupancy after 3 points (expect exit 42)"
rc=0
env MAPS_ACCESSES=900 MAPS_DETERMINISTIC=1 MAPS_CRASH_AFTER_POINTS=3 \
    ./target/release/maps-farm run --figures fig_occupancy --workers 2 --dir "$occ_victim" || rc=$?
[[ $rc -eq 42 ]] || { echo "expected crash-hook exit 42, got $rc"; exit 1; }
run env MAPS_ACCESSES=900 MAPS_DETERMINISTIC=1 \
    ./target/release/maps-farm run --figures fig_occupancy --workers 2 --dir "$occ_victim"
run cmp "$occ_ref/fig_occupancy.tsv" "$occ_victim/fig_occupancy.tsv"
run cmp "$occ_ref/fig_occupancy.manifest.json" "$occ_victim/fig_occupancy.manifest.json"
rm -rf "$occ_ref" "$occ_victim"

# Fault-injection smoke campaign: every seeded model fault (bit flips,
# replays, overflow storms) detected and localized, every seeded
# infrastructure fault (torn/corrupted artifacts, failed writes) turned
# into a typed error. Seed 5 matches the CI job for cross-checking the
# printed fingerprint.
run ./target/release/maps-inject --campaign smoke --seed 5

echo "verify: all checks passed"
