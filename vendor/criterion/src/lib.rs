//! Offline stand-in for the `criterion` crate.
//!
//! The MAPS workspace must build with zero registry access, so this
//! vendored crate implements the slice of the criterion API the workspace's
//! benches use — `Criterion`, `benchmark_group`, `Throughput::Elements`,
//! `sample_size`, `bench_function`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — with real wall-clock timing and
//! plain-text reporting (median and mean ns/iter, plus derived throughput).
//!
//! It does not implement criterion's statistical machinery (outlier
//! classification, regression detection, HTML reports); each benchmark
//! prints one summary line instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for hiding values from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration; used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: Self::default().default_sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().id, None, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing throughput and sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Target wall-clock time for one timed sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: one iteration tells us roughly how many fit in a sample.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "  {name}: median {} / iter, mean {} ({sample_size} samples x {iters_per_sample} iters){thrpt}",
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("policy", 64).id, "policy/64");
        assert_eq!(BenchmarkId::from_parameter("lru").id, "lru");
        assert_eq!(BenchmarkId::from("direct").id, "direct");
    }

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10)).sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
