//! Offline stand-in for the `proptest` crate.
//!
//! The MAPS workspace must build and test with zero registry access, so
//! this vendored crate re-implements exactly the slice of the proptest API
//! the workspace's property tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`, and
//! `any::<bool>()`.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   run is deterministic, so re-running reproduces it exactly.
//! * **Deterministic seeding.** Case `i` of test `t` derives its seed from
//!   `(t, i)`, so failures are stable across runs and machines.
//! * **Tiny strategy algebra.** Only the combinators this workspace uses.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test assertion (returned by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generation source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeds case `case` of the named test deterministically.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(n);
            if (m as u64) >= n.wrapping_neg() % n {
                return lo + (m >> 64) as u64;
            }
        }
    }
}

/// A value generator. Strategies are the expressions on the right of
/// `arg in <strategy>` inside [`proptest!`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;
}

/// Integers usable in range strategies, via an order-preserving `u64` map.
pub trait RangeInt: Copy {
    /// Order-preserving map onto `u64` (signed types are bias-shifted).
    fn to_u64(self) -> u64;
    /// Inverse of [`RangeInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int_unsigned {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

macro_rules! impl_range_int_signed {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            fn from_u64(v: u64) -> Self {
                (v ^ (1 << 63)) as i64 as $t
            }
        }
    )*};
}

impl_range_int_unsigned!(u8, u16, u32, u64, usize);
impl_range_int_signed!(i8, i16, i32, i64, isize);

impl<T: RangeInt + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::from_u64(g.u64_in(self.start.to_u64(), self.end.to_u64() - 1))
    }
}

impl<T: RangeInt + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        assert!(self.start() <= self.end(), "empty range strategy");
        T::from_u64(g.u64_in(self.start().to_u64(), self.end().to_u64()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, g: &mut Gen) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(g),)+)
            }
        }
    };
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53-bit uniform in [0, 1), scaled into the half-open range.
                let u = (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t;
                // Rounding can land exactly on `end`; fall back inside.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(g: &mut Gen) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

/// The whole-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` module namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Gen, Strategy};
        use std::ops::Range;

        /// Length specification for [`vec`]: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        /// Strategy generating `Vec`s of an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, g: &mut Gen) -> Self::Value {
                let len = g.u64_in(self.size.lo as u64, self.size.hi_inclusive as u64) as usize;
                (0..len).map(|_| self.element.generate(g)).collect()
            }
        }

        /// Generates vectors of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Gen, Strategy};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, g: &mut Gen) -> T {
                self.options[g.u64_in(0, self.options.len() as u64 - 1) as usize].clone()
            }
        }

        /// Chooses uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (with its
/// reproducible case number) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config($cfg) $($rest)*);
    };
    (@with_config($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut generator = $crate::Gen::for_case(test_name, case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut generator);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{test_name} failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..100, 1..50);
        let mut a = crate::Gen::for_case("t", 3);
        let mut b = crate::Gen::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn select_and_tuples_generate() {
        let strat = (0u8..4, any::<bool>());
        let sel = prop::sample::select(vec!["a", "b"]);
        let mut g = crate::Gen::for_case("u", 0);
        for _ in 0..100 {
            let (x, _) = strat.generate(&mut g);
            assert!(x < 4);
            assert!(["a", "b"].contains(&sel.generate(&mut g)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(xs in prop::collection::vec(0u32..10, 1..20)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }
}
