//! MAPS facade crate.
pub use maps_analysis as analysis;
pub use maps_cache as cache;
pub use maps_mem as mem;
pub use maps_secure as secure;
pub use maps_sim as sim;
pub use maps_trace as trace;
pub use maps_workloads as workloads;
