//! Design-space exploration: how should an SRAM budget be split between
//! the last-level cache and the metadata cache? (A miniature Figure 2.)
//!
//! Run: `cargo run --release --example design_space [benchmark]`

use maps::analysis::{fmt_bytes, Table};
use maps::sim::{SecureSim, SimConfig};
use maps::workloads::Benchmark;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|n| Benchmark::from_name(&n))
        .unwrap_or(Benchmark::Canneal);
    let accesses = 150_000;

    // Normalize against the insecure 2 MB-LLC reference system.
    let mut baseline_sim = SecureSim::new(SimConfig::insecure_baseline(), bench.build(7));
    let baseline = baseline_sim.run(accesses).ed2();

    let base = SimConfig::paper_default();
    let mut table = Table::new(["llc", "mdc", "budget", "normalized_ed2"]);
    let mut best: Option<(u64, u64, f64)> = None;
    for llc in [512 << 10, 1 << 20, 2 << 20] {
        for mdc in [16 << 10, 256 << 10, 512 << 10u64] {
            let cfg = base.with_llc_bytes(llc).with_mdc(base.mdc.with_size(mdc));
            let mut sim = SecureSim::new(cfg, bench.build(7));
            let ed2 = sim.run(accesses).ed2() / baseline;
            if best.is_none_or(|(_, _, b)| ed2 < b) {
                best = Some((llc, mdc, ed2));
            }
            table.row([
                fmt_bytes(llc),
                fmt_bytes(mdc),
                fmt_bytes(llc + mdc),
                format!("{ed2:.3}"),
            ]);
        }
    }

    println!("# SRAM budget split for '{bench}' (ED^2 vs insecure 2MB-LLC baseline)\n");
    println!("{table}");
    let (llc, mdc, ed2) = best.expect("at least one configuration ran");
    println!(
        "best split for {bench}: {} LLC + {} metadata cache ({ed2:.3}x baseline ED^2)",
        fmt_bytes(llc),
        fmt_bytes(mdc)
    );
}
