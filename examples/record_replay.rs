//! Record/replay: capture a workload's access trace to the portable text
//! format, reload it, and replay it through the secure-memory pipeline —
//! verifying that the replayed run reproduces the original's behaviour
//! exactly. This is how external traces (e.g. from another simulator) can
//! be driven through MAPS.
//!
//! Run: `cargo run --release --example record_replay`

use maps::analysis::LogHistogram;
use maps::sim::{SecureSim, SimConfig};
use maps::trace::{read_trace, write_trace};
use maps::workloads::{Benchmark, ReplayWorkload, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 50_000u64;

    // 1. Record: pull a trace out of a synthetic benchmark.
    let mut source = Benchmark::Fft.build(7);
    let trace: Vec<_> = (0..n).map(|_| source.next_access()).collect();
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &trace)?;
    println!(
        "recorded {} accesses ({} bytes in text format)",
        trace.len(),
        encoded.len()
    );

    // 2. Reload and replay through the full pipeline.
    let decoded = read_trace(&encoded[..])?;
    assert_eq!(decoded, trace, "text round-trip must be lossless");
    let mut cfg = SimConfig::paper_default();
    cfg.warmup_fraction = 0.0;

    let mut original = SecureSim::new(cfg.clone(), ReplayWorkload::new("fft-trace", trace));
    let mut replayed = SecureSim::new(cfg, ReplayWorkload::new("fft-trace", decoded));
    let a = original.run(n);
    let b = replayed.run(n);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.engine.dram_meta.total(), b.engine.dram_meta.total());
    println!(
        "replay reproduced the run exactly: {} cycles, {} metadata transfers",
        b.cycles,
        b.engine.dram_meta.total()
    );

    // 3. Sketch the trace's block-distance profile (a quick locality look).
    let mut hist = LogHistogram::new();
    let mut last = 0u64;
    for access in read_trace(&encoded[..])? {
        let block = access.addr.block().index();
        hist.record(block.abs_diff(last));
        last = block;
    }
    println!("\nblock-stride histogram (log2 buckets, floor | count):");
    print!("{}", hist.render(40));
    Ok(())
}
