//! Tamper detection: drive the functional secure-memory model through the
//! paper's threat scenarios (Section II) and show each attack being
//! caught — data tampering, counter rollback, tree tampering, and a full
//! replay of a stale memory image.
//!
//! Run: `cargo run --release --example tamper_detection`

use maps::secure::{SecureConfig, SecureMemoryModel};
use maps::trace::BlockAddr;

fn main() {
    let mut mem = SecureMemoryModel::new(SecureConfig::poison_ivy(1 << 20));
    let secret = BlockAddr::new(321);

    println!("# Secure-memory tamper detection demo\n");

    // Normal operation.
    mem.write_block(secret, 0xCAFE);
    println!(
        "write 0xCAFE, read back: {:#x}",
        mem.read_block(secret).expect("clean read")
    );

    // 1. Data tampering: flip the ciphertext in memory.
    mem.tamper_data(secret, 0xD00D);
    match mem.read_block(secret) {
        Err(e) => println!("data tampering      -> detected: {e}"),
        Ok(v) => unreachable!("tampered read returned {v:#x}"),
    }
    mem.write_block(secret, 0xCAFE); // repair via legitimate write

    // 2. Counter tampering: rewrite the counter block (e.g. rollback).
    mem.tamper_counter_block(secret, 0x1234_5678);
    match mem.read_block(secret) {
        Err(e) => println!("counter tampering   -> detected: {e}"),
        Ok(v) => unreachable!("tampered read returned {v:#x}"),
    }
    mem.write_block(secret, 0xCAFE);

    // 3. Tree tampering: corrupt an internal integrity-tree node.
    let ctr = mem.layout().counter_block_of(secret);
    let leaf = mem.layout().tree_leaf_of(ctr);
    let (level, offset) = mem.layout().tree_position(leaf);
    mem.tamper_tree_node(level as u8, offset, 0xBAD);
    match mem.read_block(secret) {
        Err(e) => println!("tree tampering      -> detected: {e}"),
        Ok(v) => unreachable!("tampered read returned {v:#x}"),
    }
    mem.write_block(secret, 0xCAFE);

    // 4. Replay attack: capture the full memory image of the block (data,
    //    HMAC, counter block) and restore it after a newer write. All
    //    three pieces are mutually consistent — only the on-chip root
    //    knows the state moved on.
    let stale = mem.snapshot(secret);
    mem.write_block(secret, 0xF00D);
    mem.replay(secret, stale);
    match mem.read_block(secret) {
        Err(e) => println!("replay attack       -> detected: {e}"),
        Ok(v) => unreachable!("replayed read returned {v:#x}"),
    }

    println!(
        "\nverified reads that passed integrity checks: {}",
        mem.verified_reads()
    );
}
