//! Reuse-distance profiling: characterize a workload's metadata access
//! patterns the way Figures 3–5 do — per-type CDFs, the bimodal class
//! breakdown, and request-type transitions.
//!
//! Run: `cargo run --release --example reuse_profile [benchmark]`

use maps::analysis::{fmt_bytes, GroupedReuseProfiler, ReuseClass, Table, Transition};
use maps::sim::{MdcConfig, SecureSim, SimConfig};
use maps::trace::{MetaGroup, BLOCK_BYTES};
use maps::workloads::Benchmark;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|n| Benchmark::from_name(&n))
        .unwrap_or(Benchmark::Fft);

    // Reuse characterization runs without a metadata cache, like the paper.
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::disabled());
    let mut sim = SecureSim::new(cfg, bench.build(7));
    let mut profiler = GroupedReuseProfiler::new();
    sim.run_observed(300_000, &mut profiler);

    println!("# Metadata reuse profile for '{bench}' (no metadata cache)\n");

    let mut cdf_table = Table::new(["type", "p50", "p90", "p99", "samples"]);
    for group in MetaGroup::ALL {
        let cdf = profiler.cdf(group);
        let q = |p: f64| {
            cdf.quantile(p)
                .map_or("-".to_string(), |blocks| fmt_bytes(blocks * BLOCK_BYTES))
        };
        cdf_table.row([
            group.label().to_string(),
            q(0.5),
            q(0.9),
            q(0.99),
            cdf.len().to_string(),
        ]);
    }
    println!("{cdf_table}");

    let classes = profiler.combined().class_counts();
    let mut class_table = Table::new(["class", "fraction"]);
    for class in ReuseClass::ALL {
        class_table.row([
            class.label().to_string(),
            format!("{:.3}", classes.fraction(class)),
        ]);
    }
    println!("{class_table}");
    println!(
        "bimodal: {} (cold misses: {})\n",
        if classes.is_bimodal() { "yes" } else { "no" },
        classes.cold()
    );

    let mut tr_table = Table::new(["type", "transition", "median", "samples"]);
    for group in MetaGroup::ALL {
        for transition in Transition::ALL {
            let cdf = profiler.transition_cdf(group, transition);
            let median = cdf
                .quantile(0.5)
                .map_or("-".to_string(), |blocks| fmt_bytes(blocks * BLOCK_BYTES));
            tr_table.row([
                group.label().to_string(),
                transition.label().to_string(),
                median,
                cdf.len().to_string(),
            ]);
        }
    }
    println!("{tr_table}");
}
