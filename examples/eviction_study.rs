//! Eviction-policy study: compare every replacement policy on the
//! metadata cache for one workload, including the reuse-prediction
//! baselines (SRRIP) the paper points architects toward.
//!
//! Run: `cargo run --release --example eviction_study [benchmark]`

use maps::analysis::Table;
use maps::sim::itermin::{run_iter_min, run_min};
use maps::sim::{MdcConfig, PolicyChoice, SecureSim, SimConfig};
use maps::workloads::Benchmark;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|n| Benchmark::from_name(&n))
        .unwrap_or(Benchmark::Libquantum);
    let accesses = 150_000;

    let mut cfg = SimConfig::paper_default();
    cfg.mdc = MdcConfig::paper_default().with_size(64 << 10);
    cfg.warmup_fraction = 0.0;

    let policies = [
        PolicyChoice::PseudoLru,
        PolicyChoice::TrueLru,
        PolicyChoice::Fifo,
        PolicyChoice::Random(1),
        PolicyChoice::Srrip,
        PolicyChoice::Drrip,
        PolicyChoice::Eva,
        PolicyChoice::EvaPerType,
        PolicyChoice::CostAware(5),
    ];

    let mut table = Table::new(["policy", "metadata_mpki", "hit_ratio"]);
    for policy in policies {
        let name = policy.name();
        let run_cfg = cfg.with_mdc(cfg.mdc.with_policy(policy));
        let mut sim = SecureSim::new(run_cfg, bench.build(7));
        let r = sim.run(accesses);
        table.row([
            name.to_string(),
            format!("{:.2}", r.metadata_mpki()),
            format!("{:.3}", r.metadata_hit_ratio()),
        ]);
    }

    // Oracle policies need a recorded trace (Section V-B).
    let min_report = run_min(&cfg, bench, 7, accesses);
    table.row([
        "min (trace-fed)".to_string(),
        format!("{:.2}", min_report.metadata_mpki()),
        format!("{:.3}", min_report.metadata_hit_ratio()),
    ]);
    let iter = run_iter_min(&cfg, bench, 7, accesses, 4);
    table.row([
        "itermin".to_string(),
        format!("{:.2}", iter.report.metadata_mpki()),
        format!("{:.3}", iter.report.metadata_hit_ratio()),
    ]);

    println!("# Eviction policies on a 64KB metadata cache, workload '{bench}'\n");
    println!("{table}");
    println!(
        "itermin iterations (metadata misses): {:?}{}",
        iter.misses_per_iteration,
        if iter.converged {
            " -> converged"
        } else {
            " (no fixed point reached)"
        }
    );
}
