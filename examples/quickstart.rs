//! Quickstart: simulate a streaming workload through a secure-memory
//! system and print the headline metrics.
//!
//! Run: `cargo run --release --example quickstart`

use maps::sim::{SecureSim, SimConfig};
use maps::workloads::Benchmark;

fn main() {
    // Table I configuration: 2 MB LLC, 64 KB all-types metadata cache,
    // split counters, speculation enabled.
    let cfg = SimConfig::paper_default();

    // A libquantum-like workload: repeated streaming over a 4 MB array.
    let workload = Benchmark::Libquantum.build(42);

    let mut sim = SecureSim::new(cfg, workload);
    let report = sim.run(200_000);

    println!("{report}");
    println!();
    println!(
        "secure memory turned {} LLC misses into {} DRAM transfers \
         ({} data + {} metadata)",
        report.hierarchy.llc_demand_misses,
        report.engine.dram_data.total() + report.engine.dram_meta.total(),
        report.engine.dram_data.total(),
        report.engine.dram_meta.total(),
    );
    println!(
        "the metadata cache absorbed {:.1}% of metadata accesses",
        report.metadata_hit_ratio() * 100.0
    );
}
