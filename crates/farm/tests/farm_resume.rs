//! Kill-and-resume equivalence for the farm, reusing the
//! `MAPS_CRASH_AFTER_POINTS` exit-42 fault-injection hook: a campaign
//! killed mid-run and re-invoked must produce byte-identical artifacts
//! while re-simulating only the missing points.

use std::path::{Path, PathBuf};
use std::process::Command;

const ACCESSES: &str = "900";
const CRASH_AFTER: u64 = 5;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maps-farm-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn farm_run_figure(dir: &Path, figure: &str, crash_after: Option<u64>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_maps-farm"));
    cmd.args(["run", "--figures", figure, "--workers", "2", "--dir"])
        .arg(dir)
        .env("MAPS_ACCESSES", ACCESSES)
        .env("MAPS_DETERMINISTIC", "1");
    match crash_after {
        Some(n) => cmd.env("MAPS_CRASH_AFTER_POINTS", n.to_string()),
        None => cmd.env_remove("MAPS_CRASH_AFTER_POINTS"),
    };
    cmd.output().expect("run maps-farm")
}

fn farm_run(dir: &Path, crash_after: Option<u64>) -> std::process::Output {
    farm_run_figure(dir, "fig2", crash_after)
}

#[test]
fn killed_campaign_resumes_byte_identically() {
    // Reference: one uninterrupted campaign.
    let reference = tmp_dir("reference");
    let clean = farm_run(&reference, None);
    assert!(
        clean.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Victim: crash right after the fifth newly computed point is
    // checkpointed.
    let victim = tmp_dir("victim");
    let crashed = farm_run(&victim, Some(CRASH_AFTER));
    assert_eq!(
        crashed.status.code(),
        Some(42),
        "crash hook exits 42: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(
        victim.join("campaign.ckpt").exists(),
        "checkpoint survives the kill"
    );
    assert!(
        !victim.join("fig2.tsv").exists() && !victim.join("fig2.manifest.json").exists(),
        "no figure artifacts exist before the figure completes"
    );

    // Resume: the re-invocation restores the checkpointed points and
    // simulates only the rest.
    let resumed = farm_run(&victim, None);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains(&format!(
            "resuming from {}",
            victim.join("campaign.ckpt").display()
        )),
        "resume announces the checkpoint: {stderr}"
    );
    assert!(
        stderr.contains(&format!("{CRASH_AFTER} restored")),
        "exactly the checkpointed points are restored, not re-simulated: {stderr}"
    );
    assert!(
        !victim.join("campaign.ckpt").exists(),
        "completed campaign removes its checkpoint"
    );

    for suffix in ["tsv", "manifest.json"] {
        let a = std::fs::read(victim.join(format!("fig2.{suffix}"))).expect("resumed artifact");
        let b =
            std::fs::read(reference.join(format!("fig2.{suffix}"))).expect("reference artifact");
        assert_eq!(
            a, b,
            "fig2.{suffix}: resumed run differs from uninterrupted run"
        );
    }

    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&victim).ok();
}

#[test]
fn killed_occupancy_campaign_resumes_byte_identically() {
    // The occupancy figure runs through JobKind::Occupancy — a synthesized
    // multi-tenant workload outside the capture memo — so its farm path
    // (fingerprinting, checkpointing, resume) deserves its own smoke:
    // crash after three points, resume, byte-compare to a clean run.
    let reference = tmp_dir("occ-reference");
    let clean = farm_run_figure(&reference, "fig_occupancy", None);
    assert!(
        clean.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let victim = tmp_dir("occ-victim");
    let crashed = farm_run_figure(&victim, "fig_occupancy", Some(3));
    assert_eq!(
        crashed.status.code(),
        Some(42),
        "crash hook exits 42: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );

    let resumed = farm_run_figure(&victim, "fig_occupancy", None);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("3 restored"),
        "checkpointed occupancy points are restored, not re-simulated: {stderr}"
    );

    for suffix in ["tsv", "manifest.json"] {
        let a = std::fs::read(victim.join(format!("fig_occupancy.{suffix}")))
            .expect("resumed artifact");
        let b = std::fs::read(reference.join(format!("fig_occupancy.{suffix}")))
            .expect("reference artifact");
        assert_eq!(
            a, b,
            "fig_occupancy.{suffix}: resumed run differs from uninterrupted run"
        );
    }

    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&victim).ok();
}
