//! Wire-protocol properties for the `maps-farmd` frame codec.
//!
//! * Every frame type round-trips bit-exactly through encode → decode →
//!   re-encode (byte equality of the two encodings).
//! * Every strict prefix of a valid frame is a *typed* error (or a clean
//!   end-of-stream at offset 0) — never a panic, never a bogus frame.
//! * Garbage bytes, oversized length prefixes, and trailing garbage after
//!   a valid frame all decode to typed errors.
//!
//! These run ungated (no `heavy-tests` feature): the codec never touches
//! the simulator, so the whole suite is milliseconds.

use maps_bench::{PlanHost, SimJob};
use maps_farm::proto::send;
use maps_farm::{Frame, FrameReader, ProtoError};
use maps_obs::{FrameError, FRAME_MAGIC, MAX_FRAME_BYTES};
use maps_sim::SimConfig;
use maps_workloads::Benchmark;
use proptest::prelude::*;

/// Number of [`Frame`] variants [`frame_of`] can construct. Keep in lock
/// step with the `match` inside `frame_of` and with the codec itself.
const FRAME_VARIANTS: u64 = 12;

fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    send(&mut buf, frame).expect("frame encodes");
    buf
}

fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, ProtoError> {
    FrameReader::new(bytes).next_frame()
}

/// Deterministic printable-ASCII string derived from `seed` — the range
/// 0x20..=0x7e includes `"` and `\`, stressing the JSON string escaping
/// underneath the codec.
fn text(mut seed: u64, len: usize) -> String {
    let mut out = String::with_capacity(len);
    for _ in 0..len {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(char::from(0x20 + ((seed >> 33) % 95) as u8));
    }
    out
}

fn job_of(seed: u64, len: usize) -> SimJob {
    let cfg = SimConfig::paper_default();
    let shift = seed % 3;
    let bench = Benchmark::ALL[(seed >> 8) as usize % Benchmark::ALL.len()];
    SimJob::replay(
        text(seed ^ 0xA5A5, 1 + len % 24),
        cfg.with_llc_bytes(cfg.llc_bytes >> shift),
        bench,
        1 + (seed >> 16) % 10_000,
    )
}

/// Constructs one of the [`FRAME_VARIANTS`] frame shapes, with all string
/// and numeric payloads derived deterministically from `seed`/`len`.
fn frame_of(variant: u64, seed: u64, len: usize) -> Frame {
    match variant % FRAME_VARIANTS {
        0 => Frame::Submit {
            campaign: text(seed, len),
            dir: text(seed ^ 1, len),
            figures: (0..len % 4).map(|i| text(seed ^ (i as u64), 4)).collect(),
            accesses: seed.rotate_left(7),
            workers: seed.rotate_left(13),
        },
        1 => Frame::Attach {
            campaign: text(seed, len),
            since: seed.rotate_left(21),
        },
        2 => Frame::Status {
            campaign: text(seed, len),
        },
        3 => Frame::Accepted {
            campaign: text(seed, len),
            resumed: seed & 1 == 1,
        },
        4 => Frame::Event {
            seq: seed.rotate_left(3),
            what: text(seed ^ 2, len),
            detail: text(seed ^ 3, len),
        },
        5 => Frame::Done {
            ok: seed & 1 == 0,
            message: text(seed, len),
        },
        6 => Frame::Reject {
            message: text(seed, len),
        },
        7 => Frame::Job {
            id: seed,
            job: Box::new(job_of(seed, len)),
        },
        8 => {
            let mut report = PlanHost::placeholder_report();
            report.workload = text(seed, len);
            report.cycles = seed.rotate_left(31);
            Frame::JobResult {
                id: seed,
                report: Box::new(report),
            }
        }
        9 => Frame::JobError {
            id: seed,
            message: text(seed, len),
        },
        10 => Frame::Heartbeat { id: seed },
        _ => Frame::Exit,
    }
}

proptest! {
    #[test]
    fn every_frame_round_trips_bit_exactly(
        spec in (0u64..FRAME_VARIANTS, any::<u64>(), 0usize..32),
    ) {
        let (variant, seed, len) = spec;
        let frame = frame_of(variant, seed, len);
        let first = encode(&frame);
        let decoded = decode_one(&first)
            .expect("valid frame decodes")
            .expect("one frame present");
        prop_assert_eq!(&encode(&decoded), &first, "re-encoding drifted");
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error(
        spec in (0u64..FRAME_VARIANTS, any::<u64>(), 0usize..32, any::<u64>()),
    ) {
        let (variant, seed, len, cut_pick) = spec;
        let full = encode(&frame_of(variant, seed, len));
        // 0..len: always a strict prefix (every frame is at least 8 bytes).
        let cut = (cut_pick % full.len() as u64) as usize;
        match decode_one(&full[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
            Err(ProtoError::Frame(_)) => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_never_decode_to_a_frame(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let starts_with_magic = bytes.len() >= 4 && bytes[..4] == FRAME_MAGIC;
        match decode_one(&bytes) {
            Ok(Some(_)) => prop_assert!(
                starts_with_magic,
                "random bytes without the magic decoded to a frame"
            ),
            Ok(None) => prop_assert!(bytes.is_empty()),
            Err(_) => {}
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation(
        spec in (1u32..=1024, 0u64..FRAME_VARIANTS, any::<u64>()),
    ) {
        let (extra, variant, seed) = spec;
        let declared = MAX_FRAME_BYTES + extra;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.extend_from_slice(&declared.to_le_bytes());
        bytes.extend_from_slice(&encode(&frame_of(variant, seed, 8))); // never reached
        match decode_one(&bytes) {
            Err(ProtoError::Frame(FrameError::Oversized { declared: got })) => {
                prop_assert_eq!(got, declared);
            }
            other => prop_assert!(false, "oversized length gave {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_after_a_valid_frame_is_typed(
        spec in (0u64..FRAME_VARIANTS, any::<u64>(), 0usize..32),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let (variant, seed, len) = spec;
        let mut bytes = encode(&frame_of(variant, seed, len));
        bytes.extend_from_slice(&garbage);
        let mut reader = FrameReader::new(&bytes[..]);
        reader
            .next_frame()
            .expect("leading frame decodes")
            .expect("one frame present");
        if let Ok(Some(_)) = reader.next_frame() {
            prop_assert!(
                garbage.len() >= 4 && garbage[..4] == FRAME_MAGIC,
                "garbage without the magic decoded to a second frame"
            );
        }
    }
}

/// Proptest sampling aside, pin that *each* frame variant round-trips —
/// a new variant missing from [`frame_of`] still gets covered here.
#[test]
fn every_frame_variant_is_covered() {
    let job = SimJob::replay(
        "llc=2097152",
        SimConfig::paper_default(),
        Benchmark::Mcf,
        5_000,
    );
    let frames = vec![
        Frame::Submit {
            campaign: "c".into(),
            dir: "/tmp/c".into(),
            figures: vec!["fig2".into()],
            accesses: 1200,
            workers: 2,
        },
        Frame::Attach {
            campaign: "c".into(),
            since: 9,
        },
        Frame::Status {
            campaign: "c".into(),
        },
        Frame::Accepted {
            campaign: "c".into(),
            resumed: true,
        },
        Frame::Event {
            seq: 1,
            what: "point-done".into(),
            detail: "k".into(),
        },
        Frame::Done {
            ok: true,
            message: "done".into(),
        },
        Frame::Reject {
            message: "no".into(),
        },
        Frame::Job {
            id: 1,
            job: Box::new(job),
        },
        Frame::JobResult {
            id: 1,
            report: Box::new(PlanHost::placeholder_report()),
        },
        Frame::JobError {
            id: 1,
            message: "boom".into(),
        },
        Frame::Heartbeat { id: 1 },
        Frame::Exit,
    ];
    assert_eq!(frames.len() as u64, FRAME_VARIANTS, "variant list drifted");
    for frame in &frames {
        let bytes = encode(frame);
        let decoded = decode_one(&bytes).expect("decodes").expect("frame present");
        assert_eq!(encode(&decoded), bytes, "variant drifted: {frame:?}");
    }
}
