//! End-to-end daemon robustness: campaigns executed through `maps-farmd`
//! with injected worker faults must produce artifacts byte-identical to
//! the standalone figure path, quarantine unrecoverable points in a typed
//! report, resume across a daemon crash from `campaign.ckpt`, and stream
//! a gapless event sequence to clients that detach and re-attach.
//!
//! Each test spawns its own daemon on its own socket in its own temp
//! directory, so the scenarios are independent. The standalone reference
//! runs mutate process environment (`MAPS_ACCESSES`,
//! `MAPS_DETERMINISTIC`), but every test sets the *same* values, so the
//! shared-environment race between parallel tests is harmless.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use maps_bench::figures::figure;
use maps_bench::LocalHost;
use maps_farm::proto::{send, Frame, FrameReader};

const ACCESSES: &str = "800";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maps-farmd-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Runs a figure driver through the standalone path ([`LocalHost`], the
/// exact code the `fig2`/`fig7` binaries run) with artifacts in `dir`.
fn run_standalone(name: &str, dir: &Path) {
    std::env::set_var("MAPS_ACCESSES", ACCESSES);
    std::env::set_var("MAPS_DETERMINISTIC", "1");
    let def = figure(name).expect("figure registered");
    let mut host = LocalHost::with_paths(
        name,
        dir.join(format!("{name}.manifest.json")),
        dir.join(format!("{name}.ckpt")),
        Some(dir.join(format!("{name}.tsv"))),
    );
    (def.drive)(&mut host);
    host.finish();
}

/// A child process that is killed (not leaked) when the test panics.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `maps-farmd` on `socket` with the given extra environment and
/// waits until the socket accepts connections.
fn spawn_daemon(socket: &Path, env: &[(&str, &str)]) -> KillOnDrop {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_maps-farmd"));
    cmd.arg("--socket")
        .arg(socket)
        .env("MAPS_ACCESSES", ACCESSES)
        .env("MAPS_DETERMINISTIC", "1")
        .env_remove("MAPS_CRASH_AFTER_POINTS")
        .env_remove("MAPS_POINT_RETRIES");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let child = KillOnDrop(cmd.spawn().expect("spawn maps-farmd"));
    let deadline = Instant::now() + Duration::from_secs(20);
    while UnixStream::connect(socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
    child
}

/// A `maps-farm` invocation with the campaign environment set.
fn farm_cmd(dir: &Path, args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_maps-farm"));
    cmd.args(args)
        .arg("--dir")
        .arg(dir)
        .env("MAPS_ACCESSES", ACCESSES)
        .env("MAPS_DETERMINISTIC", "1")
        .env_remove("MAPS_CRASH_AFTER_POINTS");
    cmd
}

/// Same, aimed at a daemon socket.
fn client_cmd(socket: &Path, dir: &Path, args: &[&str]) -> Command {
    let mut cmd = farm_cmd(dir, args);
    cmd.arg("--socket").arg(socket);
    cmd
}

fn supervision_of(dir: &Path) -> maps_farm::Supervision {
    maps_farm::load_campaign(&dir.join("campaign.json"))
        .expect("campaign.json readable")
        .supervision
        .expect("supervision block recorded")
}

/// The acceptance scenario: each worker slot is SIGKILLed at one seeded
/// point, wedged (heartbeat silence) at another, and tears a result
/// frame at a third — and the fig2+fig7 campaign must still complete
/// with artifacts byte-identical to the standalone figure path.
#[test]
fn campaign_with_sigkilled_workers_matches_standalone_byte_for_byte() {
    let standalone = tmp_dir("sigkill-standalone");
    run_standalone("fig2", &standalone);
    run_standalone("fig7", &standalone);

    let dir = tmp_dir("sigkill-farm");
    let socket = dir.join("farmd.sock");
    let _daemon = spawn_daemon(
        &socket,
        &[
            ("MAPS_FARMD_FAULT_KILL_AT", "13"),
            ("MAPS_FARMD_FAULT_STALL_AT", "29"),
            ("MAPS_FARMD_FAULT_TORN_AT", "41"),
            ("MAPS_FARMD_HEARTBEAT_MS", "50"),
            ("MAPS_FARMD_HEARTBEAT_TIMEOUT_MS", "1500"),
            ("MAPS_POINT_RETRIES", "6"),
        ],
    );

    let out = client_cmd(
        &socket,
        &dir,
        &[
            "submit",
            "--campaign",
            "sigkill",
            "--figures",
            "fig2,fig7",
            "--workers",
            "2",
        ],
    )
    .output()
    .expect("run maps-farm submit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "submit failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("worker-respawn"),
        "the fault injection respawned workers: {stdout}"
    );
    assert!(stdout.contains("campaign-done"), "{stdout}");

    for name in ["fig2", "fig7"] {
        for suffix in ["tsv", "manifest.json"] {
            assert_eq!(
                read(&dir.join(format!("{name}.{suffix}"))),
                read(&standalone.join(format!("{name}.{suffix}"))),
                "{name}.{suffix}: daemon and standalone artifacts differ"
            );
        }
    }
    assert!(
        !dir.join("campaign.ckpt").exists(),
        "completed campaign removes its checkpoint"
    );
    assert!(
        !dir.join("failures.json").exists(),
        "a recovered campaign leaves no failure report"
    );

    // Two slots, three process-terminal faults each: six worker losses.
    let sup = supervision_of(&dir);
    assert!(sup.respawns >= 3, "respawns recorded: {sup:?}");
    assert!(sup.heartbeat_misses >= 1, "the stall was caught: {sup:?}");
    assert_eq!(sup.quarantined, 0, "{sup:?}");

    // The daemon-side status snapshot renders the supervision counters.
    // (`--socket` status takes no `--dir`: the daemon knows the campaign.)
    let status = Command::new(env!("CARGO_BIN_EXE_maps-farm"))
        .args(["status", "--campaign", "sigkill", "--socket"])
        .arg(&socket)
        .output()
        .expect("run maps-farm status");
    assert!(
        status.status.success(),
        "{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("supervision:"), "{text}");
    assert!(text.contains("figures complete: 2/2"), "{text}");

    std::fs::remove_dir_all(&standalone).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// A point poisoned past its retry budget is quarantined into a typed
/// `failures.json` while every other point completes.
#[test]
fn poisoned_point_is_quarantined_while_the_rest_completes() {
    // Plan once (standalone) to learn the point keys, then poison one
    // that no other key contains, so exactly one point is hit.
    let plan_dir = tmp_dir("poison-plan");
    let out = farm_cmd(&plan_dir, &["plan", "--figures", "fig2"])
        .output()
        .expect("run maps-farm plan");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = maps_farm::load_campaign(&plan_dir.join("campaign.json")).expect("plan written");
    let keys: Vec<&str> = doc.points.iter().map(|(_, _, _, k)| k.as_str()).collect();
    let poison = *keys
        .iter()
        .find(|k| keys.iter().filter(|o| o.contains(**k)).count() == 1)
        .expect("a key no other key contains");
    let total = keys.len();

    let dir = tmp_dir("poison-farm");
    let socket = dir.join("farmd.sock");
    let _daemon = spawn_daemon(
        &socket,
        &[
            ("MAPS_FARMD_FAULT_PANIC_KEY", poison),
            ("MAPS_POINT_RETRIES", "1"),
        ],
    );

    let out = client_cmd(
        &socket,
        &dir,
        &[
            "submit",
            "--campaign",
            "poison",
            "--figures",
            "fig2",
            "--workers",
            "2",
        ],
    )
    .output()
    .expect("run maps-farm submit");
    assert!(
        !out.status.success(),
        "a quarantined point must fail the campaign"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("point-quarantined"), "{stdout}");
    assert!(stdout.contains("failures.json"), "{stdout}");
    assert_eq!(
        stdout.matches("point-done").count(),
        total - 1,
        "every unpoisoned point completes: {stdout}"
    );

    let failures = String::from_utf8(read(&dir.join("failures.json"))).expect("utf8");
    assert!(failures.contains("maps-farm-failures"), "{failures}");
    assert!(failures.contains(poison), "{failures}");
    assert!(failures.contains("injected fault"), "{failures}");

    let sup = supervision_of(&dir);
    assert_eq!(sup.quarantined, 1, "{sup:?}");
    assert!(sup.retries >= 1, "the budget was spent first: {sup:?}");

    std::fs::remove_dir_all(&plan_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon that dies mid-campaign resumes from `campaign.ckpt` on
/// restart instead of recomputing, and still matches the standalone path.
#[test]
fn daemon_crash_resumes_from_checkpoint() {
    let standalone = tmp_dir("resume-standalone");
    run_standalone("fig2", &standalone);

    let dir = tmp_dir("resume-farm");
    let socket = dir.join("farmd.sock");
    // Phase 1: the daemon kills itself right after the 40th point lands
    // in the checkpoint (a deterministic stand-in for `kill -9 farmd`).
    let mut daemon = spawn_daemon(&socket, &[("MAPS_CRASH_AFTER_POINTS", "40")]);
    let mut client = client_cmd(
        &socket,
        &dir,
        &[
            "submit",
            "--campaign",
            "resume",
            "--figures",
            "fig2",
            "--workers",
            "2",
        ],
    )
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn maps-farm submit");
    let status = daemon.0.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(42), "daemon crashed on schedule");
    let _ = client.kill();
    let _ = client.wait();
    assert!(
        dir.join("campaign.ckpt").exists(),
        "the crash left a checkpoint behind"
    );

    // Phase 2: a fresh daemon on the same (now stale) socket; the same
    // submission restores the checkpointed points and finishes.
    let _daemon = spawn_daemon(&socket, &[]);
    let out = client_cmd(
        &socket,
        &dir,
        &[
            "submit",
            "--campaign",
            "resume",
            "--figures",
            "fig2",
            "--workers",
            "2",
        ],
    )
    .output()
    .expect("rerun maps-farm submit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "resumed submit failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let restored: u64 = stdout
        .split(" restored")
        .next()
        .and_then(|t| t.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no restored count in: {stdout}"));
    assert!(
        restored >= 40,
        "checkpoint was restored, not recomputed: {stdout}"
    );

    for suffix in ["tsv", "manifest.json"] {
        assert_eq!(
            read(&dir.join(format!("fig2.{suffix}"))),
            read(&standalone.join(format!("fig2.{suffix}"))),
            "fig2.{suffix}: resumed and standalone artifacts differ"
        );
    }
    assert!(!dir.join("campaign.ckpt").exists());

    std::fs::remove_dir_all(&standalone).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Reads frames off `reader` into `seqs` until `stop` says to detach (or
/// the campaign finishes). Returns the terminal frame if one arrived.
fn drain_events(
    reader: &mut FrameReader<UnixStream>,
    seqs: &mut Vec<u64>,
    mut stop: impl FnMut(&[u64]) -> bool,
) -> Option<Frame> {
    loop {
        match reader.next_frame().expect("event stream stays well-formed") {
            Some(Frame::Event { seq, .. }) => {
                seqs.push(seq);
                if stop(seqs) {
                    return None;
                }
            }
            Some(done @ Frame::Done { .. }) => return Some(done),
            Some(other) => panic!("unexpected frame mid-stream: {other:?}"),
            None => return None,
        }
    }
}

/// A client that detaches mid-campaign and re-attaches with the first
/// sequence number it has not seen observes a gapless, duplicate-free
/// event stream; stalled workers are detected by heartbeat and respawned.
#[test]
fn detached_client_reattaches_without_event_loss() {
    let dir = tmp_dir("reattach-farm");
    let socket = dir.join("farmd.sock");
    let _daemon = spawn_daemon(
        &socket,
        &[
            // Each worker slot wedges silently at its 60th job: the
            // heartbeat deadline, not the pipe, must catch it.
            ("MAPS_FARMD_FAULT_STALL_AT", "60"),
            ("MAPS_FARMD_HEARTBEAT_MS", "50"),
            ("MAPS_FARMD_HEARTBEAT_TIMEOUT_MS", "1200"),
            ("MAPS_POINT_RETRIES", "4"),
        ],
    );

    // Submit over the raw protocol so the disconnect point is ours.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    send(
        &mut stream,
        &Frame::Submit {
            campaign: "reattach".to_string(),
            dir: dir.display().to_string(),
            figures: vec!["fig2".to_string()],
            accesses: 0,
            workers: 2,
        },
    )
    .expect("submit frame");
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    match reader.next_frame().expect("accept frame") {
        Some(Frame::Accepted { resumed, .. }) => assert!(!resumed),
        other => panic!("expected accepted, got {other:?}"),
    }
    let mut seqs = Vec::new();
    drain_events(&mut reader, &mut seqs, |seen| seen.len() >= 5);
    drop(reader);
    drop(stream); // Detach mid-campaign; the daemon keeps running it.

    let last = *seqs.last().expect("saw events before detaching");
    let mut stream = UnixStream::connect(&socket).expect("reconnect");
    send(
        &mut stream,
        &Frame::Attach {
            campaign: "reattach".to_string(),
            since: last + 1,
        },
    )
    .expect("attach frame");
    let mut reader = FrameReader::new(stream);
    match reader.next_frame().expect("accept frame") {
        Some(Frame::Accepted { resumed, .. }) => assert!(resumed, "attach joins the campaign"),
        other => panic!("expected accepted, got {other:?}"),
    }
    let done = drain_events(&mut reader, &mut seqs, |_| false).expect("campaign finishes");
    let Frame::Done { ok, message } = done else {
        unreachable!()
    };
    assert!(ok, "campaign failed: {message}");

    // The two connections together saw exactly 1..=max, no gaps, no dups.
    let max = *seqs.iter().max().expect("events");
    let expected: Vec<u64> = (1..=max).collect();
    assert_eq!(seqs, expected, "event stream has gaps or duplicates");

    let sup = supervision_of(&dir);
    assert!(
        sup.heartbeat_misses >= 1,
        "the stall tripped the deadline: {sup:?}"
    );
    assert!(sup.respawns >= 1, "{sup:?}");
    assert!(
        sup.client_reconnects >= 1,
        "the re-attach was counted: {sup:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
