//! Farm scheduling properties.
//!
//! * However campaign specs overlap, the farm never schedules one
//!   fingerprint twice: executions == unique fingerprints.
//! * Capture-cache hits never change replay output: the shared-capture
//!   execution path ([`maps_bench::exec_job`]) is a differential twin of
//!   a fresh, uncached simulation.

#![cfg(feature = "heavy-tests")]
#![recursion_limit = "256"]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use maps_bench::{exec_job, run_sim, PlanHost, SimJob, SEED};
use maps_farm::{point_fingerprint, Farm};
use maps_sim::{SimConfig, SimReport};
use maps_trace::DetHashSet;
use maps_workloads::Benchmark;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_ckpt() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("maps-farm-prop-{}-{case}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("campaign.ckpt")
}

/// Builds a job from a compact generated tuple.
fn job_of((llc_shift, mdc_shift, bench_idx): (u64, u64, usize)) -> SimJob {
    let bench = Benchmark::ALL[bench_idx % Benchmark::ALL.len()];
    let base = SimConfig::paper_default();
    let cfg = base
        .with_llc_bytes(base.llc_bytes >> llc_shift)
        .with_mdc(base.mdc.with_size(base.mdc.size_bytes >> mdc_shift));
    SimJob::replay(
        format!("llc{llc_shift}/mdc{mdc_shift}/{}", bench.name()),
        cfg,
        bench,
        256,
    )
}

/// Synthetic executor: deterministic in the job, no simulator involved.
fn fake_exec(job: &SimJob) -> SimReport {
    let mut report = PlanHost::placeholder_report();
    report.workload = job.key.clone();
    report.cycles = job.cfg.llc_bytes + job.cfg.mdc.size_bytes;
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Overlapping submissions — any split of any job list, duplicates
    // included — execute every unique fingerprint exactly once, and
    // every submitter receives the right report for every job.
    #[test]
    fn overlapping_specs_never_schedule_a_fingerprint_twice(
        specs in prop::collection::vec((0u64..4, 0u64..4, 0usize..16), 1..24),
        split in 0usize..24,
    ) {
        let jobs: Vec<SimJob> = specs.iter().map(|&s| job_of(s)).collect();
        let split = split % (jobs.len() + 1);
        let unique: DetHashSet<u64> = jobs.iter().map(point_fingerprint).collect();

        let ckpt = tmp_ckpt();
        let farm = Farm::new("prop", 1, ckpt.clone());
        let executions = AtomicUsize::new(0);
        let exec = |j: &SimJob| {
            executions.fetch_add(1, Ordering::Relaxed);
            fake_exec(j)
        };
        let (first, second) = std::thread::scope(|s| {
            let worker = s.spawn(|| farm.worker_loop(&exec));
            let first = farm.run_labeled("first", jobs[..split].to_vec());
            let second = farm.run_labeled("second", jobs[split..].to_vec());
            farm.close();
            worker.join().expect("worker");
            (first, second)
        });
        let reports: Vec<SimReport> = first
            .expect("first half")
            .into_iter()
            .chain(second.expect("second half"))
            .collect();

        prop_assert_eq!(executions.load(Ordering::Relaxed), unique.len());
        prop_assert_eq!(reports.len(), jobs.len());
        for (job, report) in jobs.iter().zip(&reports) {
            // Equal-identity jobs share one report; its payload matches
            // the job's configuration even when the key differs.
            prop_assert_eq!(report.cycles, job.cfg.llc_bytes + job.cfg.mdc.size_bytes);
        }
        std::fs::remove_file(&ckpt).ok();
    }

    // The shared-capture path is a differential twin of a fresh
    // simulation: replaying the memoized front-end capture yields
    // bitwise the same report as simulating from scratch.
    #[test]
    fn capture_cache_hits_never_change_replay_output(
        llc_shift in 0u64..3,
        bench_idx in 0usize..16,
        accesses in 200u64..500,
    ) {
        let bench = Benchmark::ALL[bench_idx % Benchmark::ALL.len()];
        let base = SimConfig::paper_default();
        let cfg = base.with_llc_bytes(base.llc_bytes >> llc_shift);
        let job = SimJob::replay("diff", cfg.clone(), bench, accesses);
        // First call may record the capture; the second is a guaranteed
        // cache hit. Both must equal the uncached direct simulation.
        let fresh = run_sim(&cfg, bench, SEED, accesses);
        prop_assert_eq!(&exec_job(&job), &fresh);
        prop_assert_eq!(&exec_job(&job), &fresh);
    }
}

/// Campaign plans are deterministic and collision-free at the fingerprint
/// level: planning the same figures twice yields the same unique point
/// set, and distinct job identities never collide (over the real planned
/// corpus rather than synthetic jobs).
#[test]
fn planned_fingerprints_are_stable_and_collision_free() {
    use maps_bench::figures::figure;
    let defs = [
        figure("fig2").expect("fig2 registered"),
        figure("fig7").expect("fig7 registered"),
    ];
    let mut identities: Vec<(u64, String)> = Vec::new();
    for def in defs {
        let mut plan = PlanHost::new();
        (def.drive)(&mut plan);
        for (_, jobs) in plan.phases {
            for job in jobs {
                identities.push((point_fingerprint(&job), job.identity()));
            }
        }
    }
    for (fp_a, id_a) in &identities {
        for (fp_b, id_b) in &identities {
            assert_eq!(
                fp_a == fp_b,
                id_a == id_b,
                "fingerprint equality must track identity equality"
            );
        }
    }
}
