//! End-to-end farm equivalence: a two-figure campaign executed by the
//! `maps-farm` binary must produce TSV and manifest artifacts
//! byte-identical to the standalone figure path, under
//! `MAPS_DETERMINISTIC=1`.
//!
//! One `#[test]` function drives the whole scenario because it mutates
//! process environment (`MAPS_ACCESSES`, `MAPS_DETERMINISTIC`) for the
//! in-process standalone reference runs; the farm itself runs as a
//! subprocess with the same environment passed explicitly.

use std::path::{Path, PathBuf};
use std::process::Command;

use maps_bench::figures::figure;
use maps_bench::LocalHost;

const ACCESSES: &str = "1200";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maps-farm-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Runs a figure driver through the standalone path ([`LocalHost`], the
/// exact code the `fig2`/`fig7` binaries run) with artifacts in `dir`.
fn run_standalone(name: &str, dir: &Path) {
    let def = figure(name).expect("figure registered");
    let mut host = LocalHost::with_paths(
        name,
        dir.join(format!("{name}.manifest.json")),
        dir.join(format!("{name}.ckpt")),
        Some(dir.join(format!("{name}.tsv"))),
    );
    (def.drive)(&mut host);
    host.finish();
}

fn farm_cmd(dir: &Path, args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_maps-farm"));
    cmd.args(args)
        .arg("--dir")
        .arg(dir)
        .env("MAPS_ACCESSES", ACCESSES)
        .env("MAPS_DETERMINISTIC", "1")
        .env_remove("MAPS_CRASH_AFTER_POINTS");
    cmd
}

#[test]
fn farm_campaign_matches_standalone_figures_byte_for_byte() {
    // The in-process standalone reference runs read these from the
    // environment, exactly like the real binaries do.
    std::env::set_var("MAPS_ACCESSES", ACCESSES);
    std::env::set_var("MAPS_DETERMINISTIC", "1");

    let standalone = tmp_dir("standalone");
    run_standalone("fig2", &standalone);
    run_standalone("fig7", &standalone);

    // Plan first: the campaign document must enumerate both figures and
    // actually share points between them.
    let farm_dir = tmp_dir("farm");
    let plan = farm_cmd(&farm_dir, &["plan", "--figures", "fig2,fig7"])
        .output()
        .expect("run maps-farm plan");
    assert!(
        plan.status.success(),
        "plan failed: {}",
        String::from_utf8_lossy(&plan.stderr)
    );
    let plan_doc = maps_farm::load_campaign(&farm_dir.join("campaign.json")).expect("plan written");
    assert!(
        (plan_doc.total_jobs as usize) > plan_doc.points.len(),
        "fig2 and fig7 must share sweep points ({} declared, {} unique)",
        plan_doc.total_jobs,
        plan_doc.points.len()
    );

    // Run the campaign in parallel through the farm queue.
    let run = farm_cmd(
        &farm_dir,
        &["run", "--figures", "fig2,fig7", "--workers", "4"],
    )
    .output()
    .expect("run maps-farm run");
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("deduplicated"),
        "run summary reports dedup: {stderr}"
    );
    assert!(
        !farm_dir.join("campaign.ckpt").exists(),
        "completed campaign removes its checkpoint"
    );

    // The farm's artifacts are byte-identical to the standalone path's.
    for name in ["fig2", "fig7"] {
        for suffix in ["tsv", "manifest.json"] {
            let farm_file = farm_dir.join(format!("{name}.{suffix}"));
            let standalone_file = standalone.join(format!("{name}.{suffix}"));
            assert_eq!(
                read(&farm_file),
                read(&standalone_file),
                "{name}.{suffix}: farm and standalone artifacts differ"
            );
        }
    }

    // status on the finished campaign reads progress from the directory.
    let status = farm_cmd(&farm_dir, &["status"])
        .output()
        .expect("run maps-farm status");
    assert!(
        status.status.success(),
        "status failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(
        text.contains("figures complete: 2/2"),
        "status reports completion: {text}"
    );

    std::fs::remove_dir_all(&standalone).ok();
    std::fs::remove_dir_all(&farm_dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_maps-farm"))
        .arg("frobnicate")
        .output()
        .expect("run maps-farm");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_maps-farm"))
        .args(["run", "--dir", "/tmp/x", "--figures", "not-a-figure"])
        .output()
        .expect("run maps-farm");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown figure"));
}
