//! `maps-farm` — plan, run, and watch whole-paper sweep campaigns.
//!
//! ```text
//! USAGE: maps-farm <COMMAND> [OPTIONS]
//!   plan   --dir <path> [--figures a,b,c | --all]
//!          Enumerate + deduplicate the selected figures into
//!          <dir>/campaign.json without simulating anything.
//!   run    --dir <path> [--figures a,b,c | --all] [--workers N] [--check]
//!          Execute the campaign: figure drivers on their own threads,
//!          N workers draining the shared deduplicated queue. Resumes
//!          from <dir>/campaign.ckpt after a kill; per-figure TSV and
//!          manifest artifacts land in <dir>. --check asserts the paper
//!          claims.
//!   status --dir <path> [--watch]
//!          Report progress from the campaign directory; --watch polls
//!          until every figure completes.
//!   submit --socket <path> --dir <path> [--figures a,b,c | --all]
//!          [--campaign name] [--accesses N] [--workers N]
//!          Hand the campaign to a running maps-farmd and follow its
//!          event stream; the campaign keeps running if this client
//!          disconnects.
//!   attach --socket <path> [--campaign name] [--since N]
//!          (Re-)join a detached campaign's event stream from sequence
//!          number N (default: from the start), reconnecting across
//!          connection loss without losing events.
//!   status --socket <path> [--campaign name]
//!          Ask the daemon for a live status snapshot instead of reading
//!          the directory.
//! ```
//!
//! With no `--figures`, both `plan` and `run` cover every registered
//! figure. Exit codes: 0 success, 1 failure, 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;

use maps_bench::figures::{figure, FigureDef, FIGURES};
use maps_farm::{campaign_status, run_campaign, write_plan, FarmError};

const USAGE: &str = "maps-farm <plan|run|status|submit|attach> --dir <path> \
[--figures a,b,c | --all] [--workers N] [--check] [--watch] \
[--socket <path>] [--campaign name] [--accesses N] [--since N]";

/// Default worker count: one per available core, as `parallel_map` uses.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

struct Args(Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, FarmError> {
        let eq = format!("{name}=");
        if let Some(i) = self.0.iter().position(|a| a == name) {
            if i + 1 >= self.0.len() {
                return Err(FarmError::Usage(format!("{name} requires a value")));
            }
            let v = self.0.remove(i + 1);
            self.0.remove(i);
            Ok(Some(v))
        } else if let Some(i) = self.0.iter().position(|a| a.starts_with(&eq)) {
            let v = self.0.remove(i)[eq.len()..].to_string();
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    fn reject_unknown(&self) -> Result<(), FarmError> {
        match self.0.first() {
            Some(unknown) => Err(FarmError::Usage(format!("unknown argument {unknown:?}"))),
            None => Ok(()),
        }
    }
}

/// Resolves `--figures a,b,c` / `--all` (default: every figure).
fn select_figures(args: &mut Args) -> Result<Vec<&'static FigureDef>, FarmError> {
    let all = args.flag("--all");
    let named = args.value("--figures")?;
    match named {
        Some(_) if all => Err(FarmError::Usage(
            "--figures and --all are mutually exclusive".to_string(),
        )),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                figure(name).ok_or_else(|| {
                    FarmError::Usage(format!(
                        "unknown figure {name:?}; known: {}",
                        FIGURES
                            .iter()
                            .map(|f| f.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
            })
            .collect(),
        None => Ok(FIGURES.iter().collect()),
    }
}

fn campaign_dir(args: &mut Args) -> Result<PathBuf, FarmError> {
    args.value("--dir")?
        .map(PathBuf::from)
        .ok_or_else(|| FarmError::Usage("--dir <path> is required".to_string()))
}

fn daemon_socket(args: &mut Args) -> Result<PathBuf, FarmError> {
    args.value("--socket")?
        .map(PathBuf::from)
        .ok_or_else(|| FarmError::Usage("--socket <path> is required".to_string()))
}

fn default_campaign() -> String {
    "campaign".to_string()
}

fn run() -> Result<(), FarmError> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(FarmError::Usage("missing command".to_string()));
    }
    let command = raw.remove(0);
    let mut args = Args(raw);

    match command.as_str() {
        "plan" => {
            let dir = campaign_dir(&mut args)?;
            let figures = select_figures(&mut args)?;
            args.reject_unknown()?;
            let plan = write_plan("campaign", &figures, &dir)?;
            println!(
                "planned {} figures: {} unique points ({} declared jobs, {} shared, {} capture keys)",
                figures.len(),
                plan.points.len(),
                plan.total_jobs,
                plan.deduplicated(),
                plan.capture_keys,
            );
            println!("wrote {}", dir.join("campaign.json").display());
            Ok(())
        }
        "run" => {
            let dir = campaign_dir(&mut args)?;
            let figures = select_figures(&mut args)?;
            let workers = match args.value("--workers")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| FarmError::Usage(format!("bad --workers {v}")))?,
                None => default_workers(),
            };
            // Read by maps_bench::check_mode() inside the claim path.
            let _ = args.flag("--check");
            args.reject_unknown()?;
            let summary = run_campaign("campaign", &figures, &dir, workers)?;
            println!(
                "campaign complete: {} figures, {} computed, {} restored, {} deduplicated",
                summary.figures.len(),
                summary.stats.computed,
                summary.stats.restored,
                summary.stats.deduplicated,
            );
            Ok(())
        }
        "status" => {
            if let Some(socket) = args.value("--socket")? {
                let campaign = args.value("--campaign")?.unwrap_or_else(default_campaign);
                args.reject_unknown()?;
                let outcome = maps_farm::client::status(&PathBuf::from(socket), &campaign)?;
                print!("{}", outcome.message);
                return if outcome.ok {
                    Ok(())
                } else {
                    Err(FarmError::Figure(outcome.message))
                };
            }
            let dir = campaign_dir(&mut args)?;
            let watch = args.flag("--watch");
            args.reject_unknown()?;
            loop {
                let status = campaign_status(&dir)?;
                print!("{}", status.render());
                if !watch || status.complete() {
                    return Ok(());
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
        }
        "submit" => {
            let socket = daemon_socket(&mut args)?;
            let dir = campaign_dir(&mut args)?;
            let campaign = args.value("--campaign")?.unwrap_or_else(default_campaign);
            // Figure selection is validated daemon-side too; resolving
            // here gives bad names a usage error before any connection.
            let figures: Vec<String> = select_figures(&mut args)?
                .iter()
                .map(|def| def.name.to_string())
                .collect();
            let accesses = match args.value("--accesses")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| FarmError::Usage(format!("bad --accesses {v}")))?,
                None => 0,
            };
            let workers = match args.value("--workers")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| FarmError::Usage(format!("bad --workers {v}")))?,
                None => 0,
            };
            args.reject_unknown()?;
            let outcome =
                maps_farm::client::submit(&socket, &campaign, &dir, &figures, accesses, workers)?;
            println!("{}", outcome.message);
            if outcome.ok {
                Ok(())
            } else {
                Err(FarmError::Figure(outcome.message))
            }
        }
        "attach" => {
            let socket = daemon_socket(&mut args)?;
            let campaign = args.value("--campaign")?.unwrap_or_else(default_campaign);
            let since = match args.value("--since")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| FarmError::Usage(format!("bad --since {v}")))?,
                None => 0,
            };
            args.reject_unknown()?;
            let outcome = maps_farm::client::attach(&socket, &campaign, since)?;
            println!("{}", outcome.message);
            if outcome.ok {
                Ok(())
            } else {
                Err(FarmError::Figure(outcome.message))
            }
        }
        other => Err(FarmError::Usage(format!("unknown command {other:?}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(FarmError::Usage(msg)) => {
            eprintln!("maps-farm: {msg}");
            eprintln!("USAGE: {USAGE}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("maps-farm: {err}");
            ExitCode::FAILURE
        }
    }
}
