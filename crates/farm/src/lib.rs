//! `maps-farm` — a resumable, deduplicated sweep-campaign orchestrator.
//!
//! The ten figure binaries each sweep their own grid of simulation
//! points, and many of those points coincide: fig2 and fig7 replay the
//! same front-end captures, the ablations share baselines, and every
//! figure re-simulates its paper-default corner. The farm runs any subset
//! of figures as one *campaign* over a shared job queue:
//!
//! * **Identity.** Every sweep point is a [`maps_bench::SimJob`]; its
//!   farm-wide identity is a 64-bit fingerprint of the full configuration,
//!   workload, seed, access count, execution kind, and the git revision
//!   ([`point_fingerprint`]). Two figures that declare the same physical
//!   point — whatever they call it locally — map to one fingerprint and
//!   one simulation.
//! * **Queue.** [`Farm`] is a fingerprint-keyed job queue drained by a
//!   worker pool built on [`maps_bench::parallel_map_with`]. Figure
//!   drivers run on their own threads and block per phase; workers pull
//!   points in submission order, so independent figures interleave.
//! * **Resume.** Each finished point is written to a schema-versioned
//!   [`maps_obs::Checkpoint`] under its fingerprint (atomic temp-file +
//!   rename). A killed campaign re-invoked with the same parameters
//!   restores finished points bit-exactly and re-simulates only the rest;
//!   the checkpoint is removed when the campaign completes.
//! * **Capture sharing.** Jobs funnel through [`maps_bench::exec_job`],
//!   so the process-wide front-end capture memo deduplicates trace
//!   recording across figures: fig2 and fig7 replay one recorded trace
//!   per shared (workload, front-end config, seed, accesses) key.
//!
//! The per-figure artifacts (TSV tables, run manifests) are written by
//! [`FarmHost`] through the same [`maps_bench::RunContext`] the
//! standalone binaries use, and are byte-identical to theirs under
//! `MAPS_DETERMINISTIC=1` — pinned by the farm e2e suite.

pub mod campaign;
pub mod client;
pub mod daemon;
pub mod fingerprint;
pub mod host;
pub mod proto;
pub mod queue;
pub mod run;
pub mod status;
pub mod supervision;
pub mod worker;

pub use campaign::{
    load_campaign, plan_campaign, CampaignDoc, CampaignPlan, PlannedFigure, PlannedPoint,
    CAMPAIGN_SCHEMA_VERSION,
};
pub use client::StreamOutcome;
pub use daemon::{serve, DaemonConfig};
pub use fingerprint::{git_rev, point_fingerprint};
pub use host::FarmHost;
pub use proto::{Frame, FrameReader, ProtoError, PROTO_VERSION};
pub use queue::{Farm, FarmStats};
pub use run::{run_campaign, write_plan, RunSummary};
pub use status::{campaign_status, CampaignStatus};
pub use supervision::Supervision;
pub use worker::run_worker;

/// Why a farm operation failed. Every fallible path in the crate returns
/// this instead of panicking (PANIC-001): bad CLI usage, unreadable or
/// malformed campaign documents, and figure/point failures all surface as
/// typed errors the CLI maps to exit codes.
#[derive(Debug)]
pub enum FarmError {
    /// The command line is malformed (CLI exit code 2).
    Usage(String),
    /// Reading or writing a campaign artifact failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A campaign document exists but cannot be understood.
    Parse {
        /// The file involved.
        path: String,
        /// What was wrong with it.
        what: String,
    },
    /// A figure driver or one of its sweep points failed.
    Figure(String),
}

impl FarmError {
    /// Convenience constructor for [`FarmError::Io`].
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        FarmError::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`FarmError::Parse`].
    pub fn parse(path: impl Into<String>, what: impl Into<String>) -> Self {
        FarmError::Parse {
            path: path.into(),
            what: what.into(),
        }
    }
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Usage(msg) => write!(f, "usage: {msg}"),
            FarmError::Io { path, source } => write!(f, "{path}: {source}"),
            FarmError::Parse { path, what } => write!(f, "{path}: {what}"),
            FarmError::Figure(msg) => write!(f, "figure failed: {msg}"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
