//! Campaign planning and the schema-versioned campaign manifest.
//!
//! `maps-farm plan` enumerates every sweep point of the selected figures
//! through [`PlanHost`] — the drivers run their real declaration logic,
//! nothing is simulated — then deduplicates the points by
//! [`point_fingerprint`](crate::point_fingerprint) into a
//! `campaign.json` document: which figures, which phases, every unique
//! point with its fingerprint, and how much work deduplication saves.
//! `maps-farm run` re-plans in-process (the document on disk is advisory;
//! execution never trusts a stale plan) and `maps-farm status` reads the
//! document back to report progress against the checkpoint.
//!
//! Figures marked `dynamic` derive later phases from earlier *results*
//! (fig7's average-best split); their planned point lists are estimates
//! made with placeholder reports and are labelled as such.

use std::path::Path;

use maps_bench::figures::FigureDef;
use maps_bench::{PlanHost, SimJob};
use maps_obs::{fingerprint64, Json};
use maps_trace::DetHashSet;

use crate::fingerprint::{git_rev, point_fingerprint};
use crate::supervision::Supervision;
use crate::FarmError;

/// Current campaign document schema version. Bump on any breaking field
/// change.
pub const CAMPAIGN_SCHEMA_VERSION: u64 = 1;

/// Value of the `kind` field marking a file as a campaign manifest.
const CAMPAIGN_KIND: &str = "maps-campaign";

/// One unique sweep point of the campaign, attributed to the first
/// figure/phase that declared it.
#[derive(Debug, Clone)]
pub struct PlannedPoint {
    /// Farm-wide identity (config + workload + seed + kind + git).
    pub fingerprint: u64,
    /// First figure that declared the point.
    pub figure: String,
    /// Phase within that figure.
    pub phase: String,
    /// The point itself.
    pub job: SimJob,
}

/// One figure's contribution to the campaign.
#[derive(Debug, Clone)]
pub struct PlannedFigure {
    /// Artifact stem.
    pub name: String,
    /// Whether later phases depend on earlier results (plan is an
    /// estimate).
    pub dynamic: bool,
    /// Core accesses per point (the figure's `MAPS_ACCESSES` resolution
    /// at plan time).
    pub accesses: u64,
    /// `(phase, declared points)` in driver order, duplicates included.
    pub phases: Vec<(String, usize)>,
}

/// A fully enumerated, deduplicated campaign.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Campaign name (checkpoint identity and status header).
    pub name: String,
    /// Git revision the plan was made at.
    pub git: String,
    /// Per-figure summaries in selection order.
    pub figures: Vec<PlannedFigure>,
    /// Unique points in first-declaration order.
    pub points: Vec<PlannedPoint>,
    /// Total declared jobs, duplicates included.
    pub total_jobs: usize,
    /// Distinct front-end capture keys across the unique points — the
    /// number of trace recordings a full run performs.
    pub capture_keys: usize,
}

impl CampaignPlan {
    /// Canonical identity string: what a checkpoint must match to be
    /// resumed. Deliberately excludes the point list — dynamic figures
    /// re-derive theirs at run time — but includes everything that
    /// parameterizes it (figure set, access counts, git revision).
    pub fn identity(&self) -> String {
        let figures: Vec<String> = self
            .figures
            .iter()
            .map(|f| format!("{}:{}", f.name, f.accesses))
            .collect();
        format!(
            "campaign={};git={};figures=[{}]",
            self.name,
            self.git,
            figures.join(",")
        )
    }

    /// 64-bit fingerprint of [`CampaignPlan::identity`].
    pub fn identity_fingerprint(&self) -> u64 {
        fingerprint64(&self.identity())
    }

    /// Declared jobs that collapse onto an already-declared fingerprint.
    pub fn deduplicated(&self) -> usize {
        self.total_jobs - self.points.len()
    }

    /// Assembles the campaign document.
    pub fn to_json(&self) -> Json {
        let figures = self
            .figures
            .iter()
            .map(|f| {
                let phases = f
                    .phases
                    .iter()
                    .map(|(phase, points)| {
                        Json::Obj(vec![
                            ("phase".to_string(), Json::Str(phase.clone())),
                            ("points".to_string(), Json::UInt(*points as u64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(f.name.clone())),
                    ("dynamic".to_string(), Json::Bool(f.dynamic)),
                    ("accesses".to_string(), Json::UInt(f.accesses)),
                    ("phases".to_string(), Json::Arr(phases)),
                ])
            })
            .collect();
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    (
                        "fingerprint".to_string(),
                        Json::Str(format!("{:016x}", p.fingerprint)),
                    ),
                    ("figure".to_string(), Json::Str(p.figure.clone())),
                    ("phase".to_string(), Json::Str(p.phase.clone())),
                    ("key".to_string(), Json::Str(p.job.key.clone())),
                    (
                        "bench".to_string(),
                        Json::Str(p.job.bench.name().to_string()),
                    ),
                    ("seed".to_string(), Json::UInt(p.job.seed)),
                    ("accesses".to_string(), Json::UInt(p.job.accesses)),
                    ("kind".to_string(), Json::Str(p.job.kind.tag())),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::UInt(CAMPAIGN_SCHEMA_VERSION),
            ),
            ("kind".to_string(), Json::Str(CAMPAIGN_KIND.to_string())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("git".to_string(), Json::Str(self.git.clone())),
            (
                "identity_fingerprint".to_string(),
                Json::UInt(self.identity_fingerprint()),
            ),
            ("figures".to_string(), Json::Arr(figures)),
            ("points".to_string(), Json::Arr(points)),
            (
                "stats".to_string(),
                Json::Obj(vec![
                    ("total_jobs".to_string(), Json::UInt(self.total_jobs as u64)),
                    (
                        "unique_points".to_string(),
                        Json::UInt(self.points.len() as u64),
                    ),
                    (
                        "deduplicated".to_string(),
                        Json::UInt(self.deduplicated() as u64),
                    ),
                    (
                        "capture_keys".to_string(),
                        Json::UInt(self.capture_keys as u64),
                    ),
                ]),
            ),
        ])
    }
}

/// Enumerates and deduplicates the selected figures into a campaign.
pub fn plan_campaign(name: &str, figures: &[&'static FigureDef]) -> CampaignPlan {
    let mut planned_figures = Vec::new();
    let mut points: Vec<PlannedPoint> = Vec::new();
    let mut seen: DetHashSet<u64> = DetHashSet::default();
    let mut captures = DetHashSet::default();
    let mut total_jobs = 0usize;

    for def in figures {
        let mut plan = PlanHost::new();
        (def.drive)(&mut plan);
        let accesses = plan
            .params
            .iter()
            .find(|(k, _)| k == "accesses")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut phases = Vec::new();
        for (phase, jobs) in plan.phases {
            phases.push((phase.clone(), jobs.len()));
            total_jobs += jobs.len();
            for job in jobs {
                let fingerprint = point_fingerprint(&job);
                if !seen.insert(fingerprint) {
                    continue;
                }
                captures.insert(job.capture_key());
                points.push(PlannedPoint {
                    fingerprint,
                    figure: def.name.to_string(),
                    phase: phase.clone(),
                    job,
                });
            }
        }
        planned_figures.push(PlannedFigure {
            name: def.name.to_string(),
            dynamic: def.dynamic,
            accesses,
            phases,
        });
    }

    CampaignPlan {
        name: name.to_string(),
        git: git_rev().to_string(),
        figures: planned_figures,
        points,
        total_jobs,
        capture_keys: captures.len(),
    }
}

/// A campaign document read back from disk (`maps-farm status`). Holds
/// the summary fields; the job configurations themselves are not decoded
/// — status only correlates fingerprints against the checkpoint.
#[derive(Debug, Clone)]
pub struct CampaignDoc {
    /// Campaign name.
    pub name: String,
    /// Git revision the plan was made at.
    pub git: String,
    /// Identity fingerprint the checkpoint must match.
    pub identity_fingerprint: u64,
    /// Per-figure summaries.
    pub figures: Vec<PlannedFigure>,
    /// `(fingerprint, figure, phase, key)` of every unique point.
    pub points: Vec<(u64, String, String, String)>,
    /// Declared jobs, duplicates included.
    pub total_jobs: u64,
    /// Distinct front-end capture keys.
    pub capture_keys: u64,
    /// Daemon supervision counters, when a `maps-farmd` run wrote them.
    pub supervision: Option<Supervision>,
}

/// Loads and validates a campaign document.
///
/// # Errors
///
/// [`FarmError::Io`] when the file cannot be read and [`FarmError::Parse`]
/// when it is not a campaign document this code understands.
pub fn load_campaign(path: &Path) -> Result<CampaignDoc, FarmError> {
    let shown = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| FarmError::io(&shown, e))?;
    let doc = Json::parse(&text).map_err(|e| FarmError::parse(&shown, e.to_string()))?;
    let field = |what: &str| FarmError::parse(&shown, format!("missing or mistyped {what}"));

    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == CAMPAIGN_SCHEMA_VERSION => {}
        Some(v) => {
            return Err(FarmError::parse(
                &shown,
                format!("unsupported schema_version {v} (expected {CAMPAIGN_SCHEMA_VERSION})"),
            ))
        }
        None => return Err(field("schema_version")),
    }
    if doc.get("kind").and_then(Json::as_str) != Some(CAMPAIGN_KIND) {
        return Err(field("kind marker"));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| field("name"))?
        .to_string();
    let git = doc
        .get("git")
        .and_then(Json::as_str)
        .ok_or_else(|| field("git"))?
        .to_string();
    let identity_fingerprint = doc
        .get("identity_fingerprint")
        .and_then(Json::as_u64)
        .ok_or_else(|| field("identity_fingerprint"))?;

    let mut figures = Vec::new();
    let Some(Json::Arr(figure_docs)) = doc.get("figures") else {
        return Err(field("figures"));
    };
    for f in figure_docs {
        let fig_name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| field("figure name"))?
            .to_string();
        let dynamic = matches!(f.get("dynamic"), Some(Json::Bool(true)));
        let accesses = f
            .get("accesses")
            .and_then(Json::as_u64)
            .ok_or_else(|| field("figure accesses"))?;
        let mut phases = Vec::new();
        let Some(Json::Arr(phase_docs)) = f.get("phases") else {
            return Err(field("figure phases"));
        };
        for p in phase_docs {
            let phase = p
                .get("phase")
                .and_then(Json::as_str)
                .ok_or_else(|| field("phase name"))?
                .to_string();
            let n = p
                .get("points")
                .and_then(Json::as_u64)
                .ok_or_else(|| field("phase points"))?;
            phases.push((phase, n as usize));
        }
        figures.push(PlannedFigure {
            name: fig_name,
            dynamic,
            accesses,
            phases,
        });
    }

    let mut points = Vec::new();
    let Some(Json::Arr(point_docs)) = doc.get("points") else {
        return Err(field("points"));
    };
    for p in point_docs {
        let hex = p
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| field("point fingerprint"))?;
        let fingerprint = u64::from_str_radix(hex, 16)
            .map_err(|_| FarmError::parse(&shown, format!("bad point fingerprint {hex:?}")))?;
        let figure = p
            .get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| field("point figure"))?
            .to_string();
        let phase = p
            .get("phase")
            .and_then(Json::as_str)
            .ok_or_else(|| field("point phase"))?
            .to_string();
        let key = p
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| field("point key"))?
            .to_string();
        points.push((fingerprint, figure, phase, key));
    }

    let stats = doc.get("stats").ok_or_else(|| field("stats"))?;
    let total_jobs = stats
        .get("total_jobs")
        .and_then(Json::as_u64)
        .ok_or_else(|| field("stats total_jobs"))?;
    let capture_keys = stats
        .get("capture_keys")
        .and_then(Json::as_u64)
        .ok_or_else(|| field("stats capture_keys"))?;

    Ok(CampaignDoc {
        name,
        git,
        identity_fingerprint,
        figures,
        points,
        total_jobs,
        capture_keys,
        supervision: doc.get("supervision").and_then(Supervision::from_json),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_bench::figures::figure;

    #[test]
    fn plan_round_trips_through_json() {
        let defs = [
            figure("fig2").expect("fig2 registered"),
            figure("fig7").expect("fig7 registered"),
        ];
        let plan = plan_campaign("campaign", &defs);
        assert!(plan.total_jobs > plan.points.len(), "figures share points");
        assert!(plan.capture_keys <= plan.points.len());

        let dir = std::env::temp_dir().join(format!("maps-farm-plan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.json");
        maps_obs::write_atomic(&path, plan.to_json().to_pretty().as_bytes()).expect("write plan");

        let doc = load_campaign(&path).expect("load plan");
        assert_eq!(doc.name, plan.name);
        assert_eq!(doc.git, plan.git);
        assert_eq!(doc.identity_fingerprint, plan.identity_fingerprint());
        assert_eq!(doc.points.len(), plan.points.len());
        assert_eq!(doc.total_jobs as usize, plan.total_jobs);
        assert_eq!(doc.figures.len(), 2);
        assert_eq!(doc.figures[0].name, "fig2");
        assert!(doc.figures[1].dynamic, "fig7 plans are estimates");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identity_tracks_figure_set_and_accesses() {
        let fig2 = [figure("fig2").expect("fig2 registered")];
        let both = [
            figure("fig2").expect("fig2 registered"),
            figure("fig7").expect("fig7 registered"),
        ];
        let a = plan_campaign("campaign", &fig2);
        let b = plan_campaign("campaign", &both);
        assert_ne!(a.identity_fingerprint(), b.identity_fingerprint());
        assert_eq!(
            a.identity_fingerprint(),
            plan_campaign("campaign", &fig2).identity_fingerprint(),
            "planning is deterministic"
        );
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("maps-farm-badplan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.json");
        for (body, expect) in [
            ("{", "parse"),
            ("{}", "schema_version"),
            ("{\"schema_version\": 99}", "unsupported schema_version"),
            (
                "{\"schema_version\": 1, \"kind\": \"other\"}",
                "kind marker",
            ),
        ] {
            std::fs::write(&path, body).expect("write");
            let err = load_campaign(&path).expect_err("must reject");
            let msg = err.to_string();
            assert!(
                msg.contains(expect) || matches!(err, FarmError::Parse { .. }),
                "{msg:?} should mention {expect:?}"
            );
        }
        assert!(matches!(
            load_campaign(&dir.join("absent.json")),
            Err(FarmError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
