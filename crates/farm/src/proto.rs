//! Typed frames of the `maps-farmd` wire protocol.
//!
//! Three parties speak it: **clients** (`maps-farm submit/attach/status`)
//! over the daemon's Unix socket, and **workers** (`maps-farmd --worker`)
//! over their stdin/stdout pipes. Every message is one length-prefixed
//! [`maps_obs::frame`] whose payload is a `{"proto": 1, "type": …}`
//! object; [`Frame::from_json`] is total — any unknown type, wrong
//! version, or mistyped field decodes to a typed [`ProtoError`], never a
//! panic — because both ends feed it bytes from a peer that may have been
//! SIGKILLed mid-write or replaced by a fault injector.
//!
//! The protocol is deliberately small:
//!
//! * client → daemon: [`Frame::Submit`], [`Frame::Attach`],
//!   [`Frame::Status`] (one request per connection);
//! * daemon → client: [`Frame::Accepted`], a stream of sequence-numbered
//!   [`Frame::Event`]s, and a final [`Frame::Done`] (or an immediate
//!   [`Frame::Reject`]);
//! * daemon → worker: [`Frame::Job`] / [`Frame::Exit`];
//! * worker → daemon: [`Frame::Heartbeat`] while a job runs, then
//!   [`Frame::JobResult`] or [`Frame::JobError`].
//!
//! Events carry a per-campaign sequence number so a client that loses its
//! connection can [`Frame::Attach`] with `since` and resume the stream
//! without gaps or duplicates.

use maps_bench::{job_from_json, job_to_json, SimJob, WireError};
use maps_obs::{FrameError, Json};
use maps_sim::SimReport;

/// Semantic protocol version carried in every frame payload.
pub const PROTO_VERSION: u64 = 1;

/// Why a protocol message could not be read or built.
#[derive(Debug)]
pub enum ProtoError {
    /// The byte-level frame was torn, oversized, or unparseable.
    Frame(FrameError),
    /// The peer speaks a different protocol version.
    Version {
        /// The version the peer sent.
        got: u64,
    },
    /// The frame type is not one this end understands.
    UnknownType(String),
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed.
    Invalid {
        /// Dotted path of the offending field.
        field: &'static str,
        /// What was wrong with it.
        why: String,
    },
    /// An embedded job failed the [`maps_bench::wire`] codec.
    Wire(WireError),
    /// An embedded report failed the `SimReport` codec.
    Report(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Frame(e) => write!(f, "{e}"),
            ProtoError::Version { got } => {
                write!(
                    f,
                    "peer speaks proto {got}, this end speaks {PROTO_VERSION}"
                )
            }
            ProtoError::UnknownType(t) => write!(f, "unknown frame type '{t}'"),
            ProtoError::Missing(field) => write!(f, "frame is missing '{field}'"),
            ProtoError::Invalid { field, why } => write!(f, "frame field '{field}' invalid: {why}"),
            ProtoError::Wire(e) => write!(f, "embedded job: {e}"),
            ProtoError::Report(why) => write!(f, "embedded report: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Frame(e) => Some(e),
            ProtoError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

/// One protocol message.
#[derive(Debug)]
pub enum Frame {
    /// Client asks the daemon to run (or resume) a campaign.
    Submit {
        /// Campaign name.
        campaign: String,
        /// Campaign directory (plan, checkpoint, artifacts).
        dir: String,
        /// Figure names to include (empty = all).
        figures: Vec<String>,
        /// Accesses per point (0 = figure default).
        accesses: u64,
        /// Worker processes to spawn (0 = daemon default).
        workers: u64,
    },
    /// Client (re)subscribes to a campaign's event stream from `since`.
    Attach {
        /// Campaign name.
        campaign: String,
        /// First sequence number the client has *not* seen.
        since: u64,
    },
    /// Client asks for a one-shot status snapshot.
    Status {
        /// Campaign name.
        campaign: String,
    },
    /// Daemon accepted a request and will stream events.
    Accepted {
        /// Campaign name.
        campaign: String,
        /// Whether the campaign was already running (attach-like submit).
        resumed: bool,
    },
    /// One sequence-numbered progress event.
    Event {
        /// Position in the campaign's event log.
        seq: u64,
        /// Machine-readable kind (`point-done`, `worker-respawn`, …).
        what: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Terminal frame of a client stream.
    Done {
        /// Whether the campaign completed without quarantined points.
        ok: bool,
        /// Summary or failure-report pointer.
        message: String,
    },
    /// The daemon refused the request (typed, connection closes after).
    Reject {
        /// Why.
        message: String,
    },
    /// Daemon ships one sweep point to a worker.
    Job {
        /// Daemon-side job id (echoed back in the result).
        id: u64,
        /// The point to simulate.
        job: Box<SimJob>,
    },
    /// Worker finished a job.
    JobResult {
        /// Echo of [`Frame::Job`]'s id.
        id: u64,
        /// The bit-exact report.
        report: Box<SimReport>,
    },
    /// Worker caught a panic (or rejected the job) — the point failed but
    /// the worker is still healthy.
    JobError {
        /// Echo of [`Frame::Job`]'s id.
        id: u64,
        /// Panic or decode message.
        message: String,
    },
    /// Worker liveness signal while a job runs.
    Heartbeat {
        /// The job being worked on.
        id: u64,
    },
    /// Daemon tells a worker to exit cleanly.
    Exit,
}

fn get<'a>(doc: &'a Json, field: &'static str) -> Result<&'a Json, ProtoError> {
    doc.get(field).ok_or(ProtoError::Missing(field))
}

fn get_u64(doc: &Json, field: &'static str) -> Result<u64, ProtoError> {
    get(doc, field)?.as_u64().ok_or(ProtoError::Invalid {
        field,
        why: "expected an unsigned integer".into(),
    })
}

fn get_str<'a>(doc: &'a Json, field: &'static str) -> Result<&'a str, ProtoError> {
    get(doc, field)?.as_str().ok_or(ProtoError::Invalid {
        field,
        why: "expected a string".into(),
    })
}

fn get_bool(doc: &Json, field: &'static str) -> Result<bool, ProtoError> {
    match get(doc, field)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(ProtoError::Invalid {
            field,
            why: "expected a boolean".into(),
        }),
    }
}

fn obj(ty: &str, mut fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![
        ("proto".to_string(), Json::UInt(PROTO_VERSION)),
        ("type".to_string(), Json::Str(ty.to_string())),
    ];
    all.append(&mut fields);
    Json::Obj(all)
}

impl Frame {
    /// Encodes the frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Wire`] when a [`Frame::Job`] embeds a job the wire
    /// codec refuses (oracle-bearing policies).
    pub fn to_json(&self) -> Result<Json, ProtoError> {
        Ok(match self {
            Frame::Submit {
                campaign,
                dir,
                figures,
                accesses,
                workers,
            } => obj(
                "submit",
                vec![
                    ("campaign".into(), Json::Str(campaign.clone())),
                    ("dir".into(), Json::Str(dir.clone())),
                    (
                        "figures".into(),
                        Json::Arr(figures.iter().map(|f| Json::Str(f.clone())).collect()),
                    ),
                    ("accesses".into(), Json::UInt(*accesses)),
                    ("workers".into(), Json::UInt(*workers)),
                ],
            ),
            Frame::Attach { campaign, since } => obj(
                "attach",
                vec![
                    ("campaign".into(), Json::Str(campaign.clone())),
                    ("since".into(), Json::UInt(*since)),
                ],
            ),
            Frame::Status { campaign } => obj(
                "status",
                vec![("campaign".into(), Json::Str(campaign.clone()))],
            ),
            Frame::Accepted { campaign, resumed } => obj(
                "accepted",
                vec![
                    ("campaign".into(), Json::Str(campaign.clone())),
                    ("resumed".into(), Json::Bool(*resumed)),
                ],
            ),
            Frame::Event { seq, what, detail } => obj(
                "event",
                vec![
                    ("seq".into(), Json::UInt(*seq)),
                    ("what".into(), Json::Str(what.clone())),
                    ("detail".into(), Json::Str(detail.clone())),
                ],
            ),
            Frame::Done { ok, message } => obj(
                "done",
                vec![
                    ("ok".into(), Json::Bool(*ok)),
                    ("message".into(), Json::Str(message.clone())),
                ],
            ),
            Frame::Reject { message } => obj(
                "reject",
                vec![("message".into(), Json::Str(message.clone()))],
            ),
            Frame::Job { id, job } => obj(
                "job",
                vec![
                    ("id".into(), Json::UInt(*id)),
                    ("job".into(), job_to_json(job).map_err(ProtoError::Wire)?),
                ],
            ),
            Frame::JobResult { id, report } => obj(
                "job-result",
                vec![
                    ("id".into(), Json::UInt(*id)),
                    ("report".into(), report.to_json()),
                ],
            ),
            Frame::JobError { id, message } => obj(
                "job-error",
                vec![
                    ("id".into(), Json::UInt(*id)),
                    ("message".into(), Json::Str(message.clone())),
                ],
            ),
            Frame::Heartbeat { id } => obj("heartbeat", vec![("id".into(), Json::UInt(*id))]),
            Frame::Exit => obj("exit", Vec::new()),
        })
    }

    /// Decodes a frame payload. Total: every malformed document is a
    /// typed [`ProtoError`].
    ///
    /// # Errors
    ///
    /// See [`ProtoError`].
    pub fn from_json(doc: &Json) -> Result<Self, ProtoError> {
        let got = get_u64(doc, "proto")?;
        if got != PROTO_VERSION {
            return Err(ProtoError::Version { got });
        }
        Ok(match get_str(doc, "type")? {
            "submit" => {
                let figures_doc = get(doc, "figures")?;
                let figures = match figures_doc {
                    Json::Arr(items) => {
                        let mut names = Vec::with_capacity(items.len());
                        for item in items {
                            names.push(
                                item.as_str()
                                    .ok_or(ProtoError::Invalid {
                                        field: "figures",
                                        why: "expected an array of strings".into(),
                                    })?
                                    .to_string(),
                            );
                        }
                        names
                    }
                    _ => {
                        return Err(ProtoError::Invalid {
                            field: "figures",
                            why: "expected an array".into(),
                        })
                    }
                };
                Frame::Submit {
                    campaign: get_str(doc, "campaign")?.to_string(),
                    dir: get_str(doc, "dir")?.to_string(),
                    figures,
                    accesses: get_u64(doc, "accesses")?,
                    workers: get_u64(doc, "workers")?,
                }
            }
            "attach" => Frame::Attach {
                campaign: get_str(doc, "campaign")?.to_string(),
                since: get_u64(doc, "since")?,
            },
            "status" => Frame::Status {
                campaign: get_str(doc, "campaign")?.to_string(),
            },
            "accepted" => Frame::Accepted {
                campaign: get_str(doc, "campaign")?.to_string(),
                resumed: get_bool(doc, "resumed")?,
            },
            "event" => Frame::Event {
                seq: get_u64(doc, "seq")?,
                what: get_str(doc, "what")?.to_string(),
                detail: get_str(doc, "detail")?.to_string(),
            },
            "done" => Frame::Done {
                ok: get_bool(doc, "ok")?,
                message: get_str(doc, "message")?.to_string(),
            },
            "reject" => Frame::Reject {
                message: get_str(doc, "message")?.to_string(),
            },
            "job" => Frame::Job {
                id: get_u64(doc, "id")?,
                job: Box::new(job_from_json(get(doc, "job")?).map_err(ProtoError::Wire)?),
            },
            "job-result" => Frame::JobResult {
                id: get_u64(doc, "id")?,
                report: Box::new(
                    SimReport::from_json(get(doc, "report")?)
                        .map_err(|e| ProtoError::Report(e.to_string()))?,
                ),
            },
            "job-error" => Frame::JobError {
                id: get_u64(doc, "id")?,
                message: get_str(doc, "message")?.to_string(),
            },
            "heartbeat" => Frame::Heartbeat {
                id: get_u64(doc, "id")?,
            },
            "exit" => Frame::Exit,
            other => return Err(ProtoError::UnknownType(other.to_string())),
        })
    }
}

/// Reads typed frames off a byte stream. This is the protocol's hardened
/// entry point (a PANIC-002 root): nothing reachable from
/// [`FrameReader::next_frame`] may panic, because the bytes come from a
/// socket whose peer may be torn, stalled, malicious, or a fault
/// injector.
pub struct FrameReader<R> {
    inner: R,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Reads the next frame; `Ok(None)` is a clean end-of-stream at a
    /// frame boundary.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for every torn, corrupt, unversioned, or
    /// unknown-typed input.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        match maps_obs::read_frame(&mut self.inner) {
            Ok(None) => Ok(None),
            Ok(Some(doc)) => Frame::from_json(&doc).map(Some),
            Err(e) => Err(ProtoError::Frame(e)),
        }
    }
}

/// Writes one typed frame (and flushes).
///
/// # Errors
///
/// [`ProtoError::Wire`] for unencodable jobs, [`ProtoError::Frame`] for
/// I/O failures.
pub fn send<W: std::io::Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    let doc = frame.to_json()?;
    maps_obs::write_frame(w, &doc).map_err(|e| ProtoError::Frame(FrameError::Io(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_sim::SimConfig;
    use maps_workloads::Benchmark;

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        send(&mut buf, frame).expect("send");
        FrameReader::new(&buf[..])
            .next_frame()
            .expect("read")
            .expect("one frame")
    }

    #[test]
    fn control_frames_round_trip() {
        match round_trip(&Frame::Submit {
            campaign: "smoke".into(),
            dir: "/tmp/c".into(),
            figures: vec!["fig2".into(), "fig7".into()],
            accesses: 1200,
            workers: 3,
        }) {
            Frame::Submit {
                campaign,
                dir,
                figures,
                accesses,
                workers,
            } => {
                assert_eq!(campaign, "smoke");
                assert_eq!(dir, "/tmp/c");
                assert_eq!(figures, vec!["fig2".to_string(), "fig7".to_string()]);
                assert_eq!((accesses, workers), (1200, 3));
            }
            other => panic!("wrong frame: {other:?}"),
        }
        match round_trip(&Frame::Event {
            seq: 17,
            what: "point-done".into(),
            detail: "fig2/llc=2097152".into(),
        }) {
            Frame::Event { seq, what, .. } => {
                assert_eq!(seq, 17);
                assert_eq!(what, "point-done");
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(matches!(round_trip(&Frame::Exit), Frame::Exit));
    }

    #[test]
    fn job_frames_preserve_point_identity() {
        let job = maps_bench::SimJob::replay(
            "llc=2097152",
            SimConfig::paper_default(),
            Benchmark::Mcf,
            5_000,
        );
        let identity = job.identity();
        match round_trip(&Frame::Job {
            id: 9,
            job: Box::new(job),
        }) {
            Frame::Job { id, job } => {
                assert_eq!(id, 9);
                assert_eq!(job.identity(), identity);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn version_and_type_mismatches_are_typed() {
        let doc = Json::Obj(vec![
            ("proto".into(), Json::UInt(99)),
            ("type".into(), Json::Str("exit".into())),
        ]);
        assert!(matches!(
            Frame::from_json(&doc),
            Err(ProtoError::Version { got: 99 })
        ));
        let doc = Json::Obj(vec![
            ("proto".into(), Json::UInt(PROTO_VERSION)),
            ("type".into(), Json::Str("teleport".into())),
        ]);
        assert!(matches!(
            Frame::from_json(&doc),
            Err(ProtoError::UnknownType(t)) if t == "teleport"
        ));
        assert!(matches!(
            Frame::from_json(&Json::Null),
            Err(ProtoError::Missing("proto"))
        ));
    }

    #[test]
    fn torn_stream_is_a_typed_error() {
        let mut buf = Vec::new();
        send(&mut buf, &Frame::Exit).expect("send");
        buf.truncate(buf.len() - 2);
        let err = FrameReader::new(&buf[..])
            .next_frame()
            .expect_err("torn frame");
        assert!(matches!(
            err,
            ProtoError::Frame(FrameError::Truncated { .. })
        ));
    }
}
