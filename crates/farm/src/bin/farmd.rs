//! `maps-farmd` — the supervised sweep-campaign daemon.
//!
//! ```text
//! USAGE: maps-farmd --socket <path> [--workers N] [--respawn-limit N]
//!        maps-farmd --worker
//! ```
//!
//! The first form binds a Unix-domain socket and serves `maps-farm
//! submit/attach/status` clients, executing campaign points in a pool of
//! crash-isolated worker processes (see `maps_farm::daemon`). The second
//! form is the self-exec worker mode the daemon spawns — it speaks
//! length-prefixed frames on stdin/stdout and is not meant to be run by
//! hand.
//!
//! Exit codes: 0 clean shutdown, 1 failure, 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;

use maps_farm::{serve, DaemonConfig, FarmError};

const USAGE: &str = "maps-farmd --socket <path> [--workers N] [--respawn-limit N] | --worker";

fn parsed<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, FarmError> {
    value
        .parse()
        .map_err(|_| FarmError::Usage(format!("bad {name} value {value:?}")))
}

fn run() -> Result<(), FarmError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        // The worker loop reports its own exit code; exit directly so a
        // protocol failure is visible to the supervising daemon.
        std::process::exit(i32::from(maps_farm::run_worker()));
    }

    let mut socket: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut respawn_limit: Option<u32> = None;
    while !args.is_empty() {
        let flag = args.remove(0);
        let mut value = |name: &str| -> Result<String, FarmError> {
            if args.is_empty() {
                Err(FarmError::Usage(format!("{name} requires a value")))
            } else {
                Ok(args.remove(0))
            }
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--workers" => workers = Some(parsed("--workers", &value("--workers")?)?),
            "--respawn-limit" => {
                respawn_limit = Some(parsed("--respawn-limit", &value("--respawn-limit")?)?)
            }
            other => return Err(FarmError::Usage(format!("unknown argument {other:?}"))),
        }
    }
    let socket = socket.ok_or_else(|| FarmError::Usage("--socket <path> is required".into()))?;
    let mut cfg = DaemonConfig::new(socket);
    if let Some(workers) = workers {
        cfg.workers = workers.max(1);
    }
    if let Some(limit) = respawn_limit {
        cfg.respawn_limit = limit;
    }
    serve(cfg)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(FarmError::Usage(msg)) => {
            eprintln!("maps-farmd: {msg}");
            eprintln!("USAGE: {USAGE}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("maps-farmd: {err}");
            ExitCode::FAILURE
        }
    }
}
