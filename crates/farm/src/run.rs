//! Campaign execution: figure drivers on their own threads, a shared
//! worker pool draining the farm queue.
//!
//! The run always re-plans in-process and rewrites `campaign.json` — the
//! document on disk is advisory, execution never trusts a stale plan —
//! then opens the campaign checkpoint keyed by the plan's identity
//! fingerprint. One thread per selected figure drives its
//! [`FarmHost`]; `--workers N` threads (each running
//! [`Farm::worker_loop`]) execute the deduplicated points through
//! [`maps_bench::exec_job`], sharing the process-wide front-end capture
//! memo. A figure that fails (a point past its retry budget, a violated
//! `--check` claim) is reported without killing the others; the
//! checkpoint is removed only when every figure completed.

use std::path::Path;

use maps_bench::figures::FigureDef;
use maps_bench::SimJob;

use crate::campaign::{plan_campaign, CampaignPlan};
use crate::host::FarmHost;
use crate::queue::{panic_text, Farm, FarmStats};
use crate::FarmError;

/// What a completed campaign did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The figures that ran, in selection order.
    pub figures: Vec<String>,
    /// Work accounting: computed vs. restored vs. deduplicated points.
    pub stats: FarmStats,
    /// Front-end traces recorded by this process (capture-memo misses).
    pub capture_recordings: u64,
}

/// Plans and writes `campaign.json` without running anything.
///
/// # Errors
///
/// [`FarmError::Io`] when the campaign directory or document cannot be
/// written.
pub fn write_plan(
    name: &str,
    figures: &[&'static FigureDef],
    dir: &Path,
) -> Result<CampaignPlan, FarmError> {
    std::fs::create_dir_all(dir).map_err(|e| FarmError::io(dir.display().to_string(), e))?;
    let plan = plan_campaign(name, figures);
    let path = dir.join("campaign.json");
    maps_obs::write_atomic(&path, plan.to_json().to_pretty().as_bytes())
        .map_err(|e| FarmError::io(path.display().to_string(), e))?;
    Ok(plan)
}

/// Runs a campaign to completion. See the module docs for the thread
/// topology.
///
/// # Errors
///
/// [`FarmError::Io`] when campaign artifacts cannot be written and
/// [`FarmError::Figure`] when any figure failed (every failure is
/// collected and named; surviving figures still complete).
pub fn run_campaign(
    name: &str,
    figures: &[&'static FigureDef],
    dir: &Path,
    workers: usize,
) -> Result<RunSummary, FarmError> {
    let plan = write_plan(name, figures, dir)?;
    eprintln!(
        "[farm] campaign '{name}': {} figures, {} unique points ({} declared, {} shared), {} capture keys",
        figures.len(),
        plan.points.len(),
        plan.total_jobs,
        plan.deduplicated(),
        plan.capture_keys,
    );

    let farm = Farm::new(name, plan.identity_fingerprint(), dir.join("campaign.ckpt"));
    let worker_count = workers.max(1);
    let result: Result<(), FarmError> = std::thread::scope(|s| {
        let farm_ref = &farm;
        // The pool blocks until the farm closes, so it gets a thread of
        // its own; parallel_map_with supplies the lock-free fan-out.
        let pool = s.spawn(move || {
            maps_bench::parallel_map_with((0..worker_count).collect(), worker_count, |_| {
                farm_ref.worker_loop(&|job: &SimJob| maps_bench::exec_job(job))
            });
        });
        let drivers: Vec<_> = figures
            .iter()
            .map(|def| {
                s.spawn(move || {
                    let mut host = FarmHost::new(def.name, farm_ref, dir);
                    (def.drive)(&mut host);
                    host.finish();
                })
            })
            .collect();
        let mut failures = Vec::new();
        for (def, driver) in figures.iter().zip(drivers) {
            if let Err(payload) = driver.join() {
                failures.push(format!("{}: {}", def.name, panic_text(payload)));
            }
        }
        farm_ref.close();
        if pool.join().is_err() {
            failures.push("worker pool panicked".to_string());
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(FarmError::Figure(failures.join("; ")))
        }
    });
    result?;

    farm.remove_checkpoint()
        .map_err(|e| FarmError::io(dir.join("campaign.ckpt").display().to_string(), e))?;
    let stats = farm.stats();
    let summary = RunSummary {
        figures: figures.iter().map(|f| f.name.to_string()).collect(),
        stats,
        capture_recordings: maps_bench::capture_recordings(),
    };
    eprintln!(
        "[farm] campaign complete: {} computed, {} restored, {} deduplicated, {} captures recorded",
        stats.computed, stats.restored, stats.deduplicated, summary.capture_recordings,
    );
    Ok(summary)
}
