//! The shared campaign job queue.
//!
//! [`Farm`] owns every sweep point of a campaign, keyed by
//! [`point_fingerprint`](crate::point_fingerprint). Figure drivers submit
//! their phases from their own threads and block until the points
//! resolve; a worker pool drains the queue. Submitting a fingerprint the
//! farm already knows — queued, running, or done — never schedules a
//! second simulation: the submitter simply waits on (or immediately
//! receives) the one result.
//!
//! Every newly computed point is inserted into a schema-versioned
//! [`Checkpoint`] under `pt/<fingerprint>` and saved atomically *before*
//! waiters are woken, so a kill at any instant loses at most the points
//! still in flight. Re-creating the farm with the same campaign identity
//! restores finished points bit-exactly ([`maps_sim::SimReport`]'s JSON
//! codec stores floats as raw IEEE-754 bits) and re-simulates only the
//! rest. The fault-injection and watchdog knobs of
//! [`maps_bench::RunContext::sweep`] apply here too:
//! `MAPS_CRASH_AFTER_POINTS` exits 42 right after the n-th new point is
//! checkpointed, and `MAPS_POINT_RETRIES` bounds per-point panic retries.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

use maps_bench::{RetryPolicy, SimJob};
use maps_obs::Checkpoint;
use maps_sim::SimReport;
use maps_trace::DetHashMap;

use crate::point_fingerprint;
use crate::FarmError;

/// Where one fingerprint stands in the campaign.
#[derive(Debug, Clone)]
enum PointState {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished; the report is shared with every submitter.
    Done(Box<SimReport>),
    /// Panicked past its retry budget.
    Failed(String),
}

/// Campaign-level work accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Points simulated by this process.
    pub computed: u64,
    /// Points restored bit-exactly from the checkpoint.
    pub restored: u64,
    /// Submissions that mapped onto an already-known fingerprint.
    pub deduplicated: u64,
    /// Points that failed past their retry budget (quarantined).
    pub failed: u64,
    /// Failed attempts that were retried under the backoff policy.
    pub retries: u64,
}

struct FarmInner {
    states: DetHashMap<u64, PointState>,
    queue: VecDeque<(u64, SimJob)>,
    attempts: DetHashMap<u64, u32>,
    ckpt: Checkpoint,
    stats: FarmStats,
    new_points: u64,
    closed: bool,
}

/// The shared, checkpointed campaign queue.
pub struct Farm {
    inner: Mutex<FarmInner>,
    /// Signalled when work is queued or the farm closes (workers wait).
    work: Condvar,
    /// Signalled when a point resolves (submitters wait).
    done: Condvar,
    ckpt_path: PathBuf,
    crash_after: Option<u64>,
    policy: RetryPolicy,
}

/// `MAPS_CRASH_AFTER_POINTS`: exit(42) after this many newly computed
/// points have been checkpointed (fault-injection hook).
fn crash_after_points() -> Option<u64> {
    std::env::var("MAPS_CRASH_AFTER_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Checkpoint slot for a fingerprint.
fn ckpt_key(fingerprint: u64) -> String {
    format!("pt/{fingerprint:016x}")
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Farm {
    /// Opens the campaign queue, resuming from `ckpt_path` when a
    /// checkpoint with the same campaign name and identity fingerprint
    /// exists there (a mismatched or unreadable one is discarded — never
    /// partially reused).
    pub fn new(name: &str, identity_fingerprint: u64, ckpt_path: PathBuf) -> Self {
        let ckpt = match Checkpoint::load(&ckpt_path) {
            Ok(Some(c)) if c.name() == name && c.fingerprint() == identity_fingerprint => {
                eprintln!(
                    "[farm] resuming from {} ({} points)",
                    ckpt_path.display(),
                    c.len()
                );
                c
            }
            Ok(Some(c)) => {
                eprintln!(
                    "[farm] {} is for a different campaign (name '{}', fingerprint {:016x} != {identity_fingerprint:016x}); starting fresh",
                    ckpt_path.display(),
                    c.name(),
                    c.fingerprint()
                );
                Checkpoint::new(name, identity_fingerprint)
            }
            Ok(None) => Checkpoint::new(name, identity_fingerprint),
            Err(e) => {
                eprintln!(
                    "[farm] {} unreadable ({e}); starting fresh",
                    ckpt_path.display()
                );
                Checkpoint::new(name, identity_fingerprint)
            }
        };
        Farm {
            inner: Mutex::new(FarmInner {
                states: DetHashMap::default(),
                queue: VecDeque::new(),
                attempts: DetHashMap::default(),
                ckpt,
                stats: FarmStats::default(),
                new_points: 0,
                closed: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            ckpt_path,
            crash_after: crash_after_points(),
            policy: RetryPolicy::from_env(maps_bench::SEED),
        }
    }

    /// The retry schedule governing this farm's points (shared with the
    /// daemon's requeue path).
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Submits jobs for execution, returning their fingerprints in job
    /// order. Fingerprints already known to the farm (from an earlier
    /// submission or the checkpoint) are not scheduled again.
    pub fn submit(&self, jobs: &[SimJob]) -> Vec<u64> {
        let mut inner = self.lock();
        let mut queued = 0usize;
        let fps: Vec<u64> = jobs
            .iter()
            .map(|job| {
                let fp = point_fingerprint(job);
                if inner.states.contains_key(&fp) {
                    inner.stats.deduplicated += 1;
                    return fp;
                }
                let restored = inner
                    .ckpt
                    .get(&ckpt_key(fp))
                    .and_then(|doc| SimReport::from_json(doc).ok());
                match restored {
                    Some(report) => {
                        inner.states.insert(fp, PointState::Done(Box::new(report)));
                        inner.stats.restored += 1;
                    }
                    None => {
                        inner.states.insert(fp, PointState::Queued);
                        inner.queue.push_back((fp, job.clone()));
                        queued += 1;
                    }
                }
                fp
            })
            .collect();
        if queued > 0 {
            self.work.notify_all();
        }
        // Submitters whose whole phase was restored/deduplicated must not
        // block forever on a queue that never moves again.
        self.done.notify_all();
        fps
    }

    /// Blocks until every fingerprint resolves, returning the reports in
    /// the given order.
    ///
    /// # Errors
    ///
    /// [`FarmError::Figure`] when any of the points failed past its retry
    /// budget; the message names every failed point.
    pub fn wait(&self, fingerprints: &[u64]) -> Result<Vec<SimReport>, FarmError> {
        let mut inner = self.lock();
        loop {
            let pending = fingerprints.iter().any(|fp| {
                matches!(
                    inner.states.get(fp),
                    Some(PointState::Queued | PointState::Running)
                )
            });
            if !pending {
                break;
            }
            inner = self.done.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        let mut failures = Vec::new();
        let reports: Vec<SimReport> = fingerprints
            .iter()
            .filter_map(|fp| match inner.states.get(fp) {
                Some(PointState::Done(report)) => Some((**report).clone()),
                Some(PointState::Failed(msg)) => {
                    failures.push(format!("point {fp:016x}: {msg}"));
                    None
                }
                _ => {
                    failures.push(format!("point {fp:016x}: never submitted"));
                    None
                }
            })
            .collect();
        if failures.is_empty() {
            Ok(reports)
        } else {
            Err(FarmError::Figure(failures.join("; ")))
        }
    }

    /// Submits a labelled batch and waits for it — the figure hosts'
    /// one-call path, with a per-phase scheduling summary on stderr.
    pub fn run_labeled(&self, label: &str, jobs: Vec<SimJob>) -> Result<Vec<SimReport>, FarmError> {
        let before = self.stats();
        let fps = self.submit(&jobs);
        let after = self.stats();
        eprintln!(
            "[farm] {label}: {} points ({} restored, {} shared)",
            jobs.len(),
            after.restored - before.restored,
            after.deduplicated - before.deduplicated,
        );
        self.wait(&fps)
    }

    /// Blocks until a point is available (returning it claimed as
    /// `Running`) or the farm is closed and drained (`None`). This is the
    /// claim half of the external-executor interface: `maps-farmd` pulls
    /// jobs here and resolves them with [`Farm::complete`] /
    /// [`Farm::fail_attempt`] / [`Farm::requeue`] after running them in a
    /// worker *process*; the in-process [`Farm::worker_loop`] composes the
    /// same four primitives.
    pub fn next_job(&self) -> Option<(u64, SimJob)> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                inner.states.insert(item.0, PointState::Running);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Resolves a claimed point: checkpoints the report atomically, *then*
    /// publishes it and wakes waiters — a kill between the two re-runs
    /// nothing on resume.
    pub fn complete(&self, fingerprint: u64, key: &str, report: SimReport) {
        let mut inner = self.lock();
        inner.ckpt.insert(&ckpt_key(fingerprint), report.to_json());
        if let Err(e) = inner.ckpt.save(&self.ckpt_path) {
            eprintln!(
                "[farm] checkpoint write failed ({}): {e}",
                self.ckpt_path.display()
            );
        }
        inner.stats.computed += 1;
        inner.new_points += 1;
        if self.crash_after == Some(inner.new_points) {
            // Fault-injection hook: die right after the checkpoint hit
            // disk, the worst moment short of mid-write (covered by the
            // atomic rename).
            eprintln!(
                "[farm] MAPS_CRASH_AFTER_POINTS={} reached; crashing",
                inner.new_points
            );
            std::process::exit(42);
        }
        let done = inner.stats.computed + inner.stats.restored;
        let known = inner.states.len();
        eprintln!("[farm] {done}/{known} {key}");
        inner
            .states
            .insert(fingerprint, PointState::Done(Box::new(report)));
        drop(inner);
        self.done.notify_all();
    }

    /// Records a failed attempt on a claimed point. Within the retry
    /// budget the point stays claimed and the attempt number is returned —
    /// the caller backs off ([`RetryPolicy::back_off`]) and then
    /// [`Farm::requeue`]s it. Past the budget the point is quarantined as
    /// `Failed` (waiters get a typed error, the campaign continues) and
    /// `None` is returned.
    pub fn fail_attempt(&self, fingerprint: u64, key: &str, msg: &str) -> Option<u32> {
        let mut inner = self.lock();
        let attempts = inner.attempts.entry(fingerprint).or_insert(0);
        *attempts += 1;
        let attempt = *attempts;
        if self.policy.allows(attempt) {
            inner.stats.retries += 1;
            eprintln!(
                "[farm] point '{key}' failed (attempt {attempt}/{}); will retry: {msg}",
                self.policy.budget() + 1
            );
            Some(attempt)
        } else {
            eprintln!("[farm] point '{key}' quarantined after {attempt} attempts: {msg}");
            inner.stats.failed += 1;
            inner
                .states
                .insert(fingerprint, PointState::Failed(msg.to_string()));
            drop(inner);
            self.done.notify_all();
            None
        }
    }

    /// Returns a claimed point to the queue (after a retryable failure).
    pub fn requeue(&self, fingerprint: u64, job: SimJob) {
        let mut inner = self.lock();
        inner.states.insert(fingerprint, PointState::Queued);
        inner.queue.push_back((fingerprint, job));
        drop(inner);
        self.work.notify_all();
    }

    /// Quarantines every still-queued point with `msg` and wakes waiters.
    /// The daemon's last resort when its whole worker pool has degraded
    /// away: figure drivers get a typed failure instead of a deadlock.
    pub fn fail_pending(&self, msg: &str) {
        let mut inner = self.lock();
        while let Some((fp, job)) = inner.queue.pop_front() {
            eprintln!("[farm] point '{}' abandoned: {msg}", job.key);
            inner.stats.failed += 1;
            inner.states.insert(fp, PointState::Failed(msg.to_string()));
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Every quarantined point as `(fingerprint, attempts, error)`, sorted
    /// by fingerprint — the daemon's failure report reads this after the
    /// campaign settles.
    pub fn failures(&self) -> Vec<(u64, u32, String)> {
        let inner = self.lock();
        let mut out: Vec<(u64, u32, String)> = inner
            .states
            .iter()
            .filter_map(|(fp, state)| match state {
                PointState::Failed(msg) => Some((
                    *fp,
                    inner.attempts.get(fp).copied().unwrap_or(0),
                    msg.clone(),
                )),
                _ => None,
            })
            .collect();
        out.sort_by_key(|(fp, _, _)| *fp);
        out
    }

    /// Drains the queue until the farm is closed and empty. Run this from
    /// each worker thread; `exec` does the actual simulation (injectable
    /// so the scheduler is testable without a simulator). Panicking points
    /// retry under the shared seeded-backoff [`RetryPolicy`] and are
    /// quarantined when the budget runs out.
    pub fn worker_loop<F>(&self, exec: &F)
    where
        F: Fn(&SimJob) -> SimReport,
    {
        while let Some((fp, job)) = self.next_job() {
            match catch_unwind(AssertUnwindSafe(|| exec(&job))) {
                Ok(report) => self.complete(fp, &job.key, report),
                Err(payload) => {
                    let msg = panic_text(payload);
                    if let Some(attempt) = self.fail_attempt(fp, &job.key, &msg) {
                        self.policy.back_off(&job.key, attempt);
                        self.requeue(fp, job);
                    }
                }
            }
        }
    }

    /// Closes the queue: workers drain what is left and exit. Call after
    /// every figure driver has finished submitting.
    pub fn close(&self) {
        self.lock().closed = true;
        self.work.notify_all();
    }

    /// A snapshot of the campaign accounting.
    pub fn stats(&self) -> FarmStats {
        self.lock().stats
    }

    /// Removes the checkpoint — the campaign completed, nothing to
    /// resume.
    ///
    /// # Errors
    ///
    /// Any I/O failure other than the file already being gone.
    pub fn remove_checkpoint(&self) -> std::io::Result<()> {
        match std::fs::remove_file(&self.ckpt_path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Locks the shared state, recovering from poisoning: state mutation
    /// under the lock is total (no partial updates), so a panicking
    /// worker leaves the structures consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, FarmInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use maps_sim::SimConfig;
    use maps_workloads::Benchmark;

    fn tmp_ckpt(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("maps-farm-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("campaign.ckpt")
    }

    fn job(llc_shift: u64, bench: Benchmark) -> SimJob {
        let cfg = SimConfig::paper_default();
        let cfg = cfg.with_llc_bytes(cfg.llc_bytes << llc_shift);
        SimJob::replay(format!("llc{llc_shift}/{}", bench.name()), cfg, bench, 64)
    }

    /// Cheap injected executor: a synthetic report derived from the job.
    fn fake_exec(job: &SimJob) -> SimReport {
        let mut report = maps_bench::PlanHost::placeholder_report();
        report.workload = job.key.clone();
        report.cycles = job.cfg.llc_bytes;
        report
    }

    fn drain<R>(
        farm: &Farm,
        body: impl FnOnce() -> R + Send,
        exec: &(dyn Fn(&SimJob) -> SimReport + Sync),
    ) -> R
    where
        R: Send,
    {
        std::thread::scope(|s| {
            let worker = s.spawn(move || farm.worker_loop(&|j: &SimJob| exec(j)));
            let out = body();
            farm.close();
            worker.join().expect("worker");
            out
        })
    }

    #[test]
    fn overlapping_submissions_execute_once() {
        let ckpt = tmp_ckpt("dedup");
        let farm = Farm::new("test", 1, ckpt.clone());
        let executions = AtomicUsize::new(0);
        let exec = |j: &SimJob| {
            executions.fetch_add(1, Ordering::Relaxed);
            fake_exec(j)
        };
        let jobs = vec![job(0, Benchmark::Gups), job(1, Benchmark::Gups)];
        let overlap = vec![job(1, Benchmark::Gups), job(0, Benchmark::Lbm)];
        let (a, b) = drain(
            &farm,
            || {
                let a = farm
                    .run_labeled("first", jobs.clone())
                    .expect("first batch");
                let b = farm
                    .run_labeled("second", overlap.clone())
                    .expect("second batch");
                (a, b)
            },
            &exec,
        );
        // Four submissions, three unique fingerprints.
        assert_eq!(executions.load(Ordering::Relaxed), 3);
        assert_eq!(a[1], b[0], "shared point yields the shared report");
        let stats = farm.stats();
        assert_eq!(stats.computed, 3);
        assert_eq!(stats.deduplicated, 1);
        farm.remove_checkpoint().expect("cleanup");
    }

    #[test]
    fn checkpoint_restores_points_across_farms() {
        let ckpt = tmp_ckpt("restore");
        let jobs = vec![job(0, Benchmark::Gups), job(1, Benchmark::Lbm)];
        let first = {
            let farm = Farm::new("test", 7, ckpt.clone());
            drain(
                &farm,
                || farm.run_labeled("batch", jobs.clone()).expect("batch"),
                &fake_exec,
            )
        };
        // Same identity: everything restores, nothing executes.
        let farm = Farm::new("test", 7, ckpt.clone());
        let executions = AtomicUsize::new(0);
        let exec = |j: &SimJob| {
            executions.fetch_add(1, Ordering::Relaxed);
            fake_exec(j)
        };
        let second = drain(
            &farm,
            || farm.run_labeled("batch", jobs.clone()).expect("batch"),
            &exec,
        );
        assert_eq!(executions.load(Ordering::Relaxed), 0);
        assert_eq!(first, second, "restored reports are bit-identical");
        assert_eq!(farm.stats().restored, 2);
        // Different identity: the stale checkpoint is discarded.
        let fresh = Farm::new("test", 8, ckpt.clone());
        drain(
            &fresh,
            || fresh.run_labeled("batch", jobs.clone()).expect("batch"),
            &exec,
        );
        assert_eq!(executions.load(Ordering::Relaxed), 2);
        fresh.remove_checkpoint().expect("cleanup");
    }

    #[test]
    fn failed_points_surface_as_errors_not_hangs() {
        let ckpt = tmp_ckpt("fail");
        let farm = Farm::new("test", 3, ckpt.clone());
        let exec = |j: &SimJob| -> SimReport {
            if j.bench == Benchmark::Gups {
                panic!("injected failure");
            }
            fake_exec(j)
        };
        let jobs = vec![job(0, Benchmark::Gups), job(0, Benchmark::Lbm)];
        let result = drain(&farm, || farm.run_labeled("batch", jobs), &exec);
        let err = result.expect_err("panicking point must fail the batch");
        assert!(err.to_string().contains("injected failure"), "{err}");
        assert_eq!(farm.stats().failed, 1);
        assert_eq!(farm.stats().computed, 1, "healthy point still completes");
        farm.remove_checkpoint().expect("cleanup");
    }
}
