//! `maps-farmd` — the supervised multi-process campaign daemon.
//!
//! The daemon listens on a Unix-domain socket for [`Frame::Submit`] /
//! [`Frame::Attach`] / [`Frame::Status`] requests and runs each accepted
//! campaign with the same thread topology as [`crate::run_campaign`] —
//! one [`FarmHost`] driver thread per figure over a shared, checkpointed
//! [`Farm`] queue — but executes the points in **spawned worker
//! processes** (`maps-farmd --worker`) instead of in-process threads:
//!
//! * **Supervision.** One [`Supervisor`] per worker slot claims points
//!   with [`Farm::next_job`], ships them over a stdin pipe as
//!   [`Frame::Job`]s, and watches the worker's stdout for heartbeats. A
//!   worker that dies (SIGKILL, torn frame, nonzero exit) or misses its
//!   heartbeat deadline is killed and respawned, and the point re-enters
//!   the queue under the shared seeded-backoff [`RetryPolicy`] — or is
//!   quarantined once the budget runs out. When a slot cannot even
//!   respawn its worker, the pool degrades to the surviving slots; when
//!   the last slot retires, pending points fail typed instead of hanging.
//! * **Events.** Every campaign keeps a sequence-numbered in-memory event
//!   log. Clients stream it live; a disconnected client re-attaches with
//!   the first sequence number it has not seen and loses nothing.
//! * **Artifacts.** Figure drivers run in the daemon process, so the
//!   per-figure TSVs and manifests are the same [`FarmHost`] artifacts —
//!   byte-identical to a standalone run under `MAPS_DETERMINISTIC=1`.
//!   Quarantined points additionally land in a typed `failures.json`, and
//!   the supervision counters are appended to `campaign.json`.
//!
//! [`RetryPolicy`]: maps_bench::RetryPolicy

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use maps_bench::figures::{figure, FigureDef};
use maps_bench::SimJob;
use maps_obs::Json;
use maps_sim::SimReport;

use crate::host::FarmHost;
use crate::proto::{send, Frame, FrameReader, ProtoError};
use crate::queue::{panic_text, Farm};
use crate::run::write_plan;
use crate::supervision::Supervision;
use crate::FarmError;

/// How the daemon supervises its workers.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The Unix-domain socket to listen on.
    pub socket: PathBuf,
    /// Default worker-process count for submissions that leave it 0.
    pub workers: usize,
    /// Silence budget per claimed point before a worker is declared
    /// wedged and killed.
    pub heartbeat_timeout: Duration,
    /// Consecutive spawn failures before a worker slot retires.
    pub respawn_limit: u32,
}

impl DaemonConfig {
    /// A config with the given socket and environment-tunable defaults
    /// (`MAPS_FARMD_HEARTBEAT_TIMEOUT_MS`, default 5000).
    pub fn new(socket: PathBuf) -> Self {
        let timeout_ms = std::env::var("MAPS_FARMD_HEARTBEAT_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5_000);
        DaemonConfig {
            socket,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            heartbeat_timeout: Duration::from_millis(timeout_ms),
            respawn_limit: 3,
        }
    }
}

/// One campaign's terminal state.
#[derive(Debug, Clone)]
struct Finished {
    ok: bool,
    message: String,
}

/// The sequence-numbered event log one campaign accumulates. Events are
/// kept for the daemon's lifetime so a client can attach at any `since`.
struct EventLogInner {
    events: Vec<(String, String)>,
    finished: Option<Finished>,
}

struct EventLog {
    inner: Mutex<EventLogInner>,
    grew: Condvar,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            inner: Mutex::new(EventLogInner {
                events: Vec::new(),
                finished: None,
            }),
            grew: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EventLogInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push(&self, what: &str, detail: &str) {
        let mut inner = self.lock();
        inner.events.push((what.to_string(), detail.to_string()));
        drop(inner);
        self.grew.notify_all();
    }

    fn finish(&self, ok: bool, message: String) {
        let mut inner = self.lock();
        inner.finished = Some(Finished { ok, message });
        drop(inner);
        self.grew.notify_all();
    }

    /// Blocks until there is something past `seen`: new events (returned
    /// with their 1-based sequence numbers) and/or the terminal state.
    fn wait_past(&self, seen: u64) -> (Vec<(u64, String, String)>, Option<Finished>) {
        let mut inner = self.lock();
        loop {
            if inner.events.len() as u64 > seen || inner.finished.is_some() {
                let fresh = inner
                    .events
                    .iter()
                    .enumerate()
                    .skip(seen as usize)
                    .map(|(i, (what, detail))| (i as u64 + 1, what.clone(), detail.clone()))
                    .collect();
                return (fresh, inner.finished.clone());
            }
            inner = self.grew.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// One campaign the daemon knows about.
struct CampaignHandle {
    name: String,
    dir: PathBuf,
    log: EventLog,
    respawns: AtomicU64,
    heartbeat_misses: AtomicU64,
    client_reconnects: AtomicU64,
}

impl CampaignHandle {
    fn new(name: &str, dir: PathBuf) -> Self {
        CampaignHandle {
            name: name.to_string(),
            dir,
            log: EventLog::new(),
            respawns: AtomicU64::new(0),
            heartbeat_misses: AtomicU64::new(0),
            client_reconnects: AtomicU64::new(0),
        }
    }

    fn running(&self) -> bool {
        self.log.lock().finished.is_none()
    }
}

/// Daemon-wide shared state: the campaign registry and the supervision
/// config.
struct DaemonState {
    cfg: DaemonConfig,
    campaigns: Mutex<Vec<Arc<CampaignHandle>>>,
}

impl DaemonState {
    fn find(&self, name: &str) -> Option<Arc<CampaignHandle>> {
        self.campaigns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .find(|c| c.name == name)
            .cloned()
    }
}

/// Binds the socket and serves requests until `accept` fails. Each
/// connection gets a handler thread; each submitted campaign gets a
/// runner thread plus its supervisor/driver pool.
///
/// # Errors
///
/// [`FarmError::Io`] when the socket cannot be bound.
pub fn serve(cfg: DaemonConfig) -> Result<(), FarmError> {
    let shown = cfg.socket.display().to_string();
    // A dead daemon leaves its socket file behind; a bind would fail on
    // it forever. Connectable means live — refuse to fight it.
    if cfg.socket.exists() {
        if UnixStream::connect(&cfg.socket).is_ok() {
            return Err(FarmError::Usage(format!(
                "a daemon is already listening on {shown}"
            )));
        }
        std::fs::remove_file(&cfg.socket).map_err(|e| FarmError::io(&shown, e))?;
    }
    let listener = UnixListener::bind(&cfg.socket).map_err(|e| FarmError::io(&shown, e))?;
    eprintln!("[farmd] listening on {shown} ({} workers)", cfg.workers);

    let state = Arc::new(DaemonState {
        cfg,
        campaigns: Mutex::new(Vec::new()),
    });
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(&state);
                std::thread::spawn(move || handle_connection(&state, stream));
            }
            Err(e) => {
                eprintln!("[farmd] accept failed: {e}");
                return Ok(());
            }
        }
    }
}

/// Best-effort typed refusal; the connection closes after.
fn reject(stream: &mut UnixStream, message: String) {
    eprintln!("[farmd] rejecting request: {message}");
    let _ = send(stream, &Frame::Reject { message });
}

fn handle_connection(state: &DaemonState, mut stream: UnixStream) {
    // A client that connects and then stalls must not pin this handler
    // forever; streaming resets the deadline per frame sent.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match FrameReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[farmd] cannot clone connection: {e}");
            return;
        }
    })
    .next_frame()
    {
        Ok(Some(frame)) => frame,
        Ok(None) => return,
        Err(e) => return reject(&mut stream, format!("bad request: {e}")),
    };

    match request {
        Frame::Submit {
            campaign,
            dir,
            figures,
            accesses,
            workers,
        } => handle_submit(state, stream, &campaign, &dir, &figures, accesses, workers),
        Frame::Attach { campaign, since } => {
            let Some(handle) = state.find(&campaign) else {
                return reject(&mut stream, format!("unknown campaign '{campaign}'"));
            };
            if since > 0 {
                handle.client_reconnects.fetch_add(1, Ordering::Relaxed);
                handle
                    .log
                    .push("client-reconnect", &format!("resuming from seq {since}"));
            }
            let accepted = Frame::Accepted {
                campaign,
                resumed: true,
            };
            if send(&mut stream, &accepted).is_ok() {
                stream_events(&handle, stream, since.saturating_sub(1));
            }
        }
        Frame::Status { campaign } => {
            let Some(handle) = state.find(&campaign) else {
                return reject(&mut stream, format!("unknown campaign '{campaign}'"));
            };
            let (ok, message) = match crate::campaign_status(&handle.dir) {
                Ok(status) => (true, status.render()),
                Err(e) => (false, format!("status unavailable: {e}")),
            };
            let _ = send(&mut stream, &Frame::Done { ok, message });
        }
        other => reject(&mut stream, format!("unexpected request frame {other:?}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    state: &DaemonState,
    mut stream: UnixStream,
    campaign: &str,
    dir: &str,
    figure_names: &[String],
    accesses: u64,
    workers: u64,
) {
    let defs: Vec<&'static FigureDef> = if figure_names.is_empty() {
        maps_bench::figures::FIGURES.iter().collect()
    } else {
        let mut defs = Vec::with_capacity(figure_names.len());
        for name in figure_names {
            match figure(name) {
                Some(def) => defs.push(def),
                None => return reject(&mut stream, format!("unknown figure '{name}'")),
            }
        }
        defs
    };

    let (handle, resumed) = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|p| p.into_inner());
        match campaigns.iter().position(|c| c.name == campaign) {
            Some(i) if campaigns[i].running() => (Arc::clone(&campaigns[i]), true),
            found => {
                let fresh = Arc::new(CampaignHandle::new(campaign, PathBuf::from(dir)));
                match found {
                    Some(i) => campaigns[i] = Arc::clone(&fresh),
                    None => campaigns.push(Arc::clone(&fresh)),
                }
                (fresh, false)
            }
        }
    };

    if !resumed {
        if accesses > 0 {
            // Campaign-wide point sizing, as the standalone CLI reads it.
            // Process-global: concurrent campaigns share the last value.
            std::env::set_var("MAPS_ACCESSES", accesses.to_string());
        }
        let cfg = state.cfg.clone();
        let worker_count = if workers > 0 {
            workers as usize
        } else {
            cfg.workers
        };
        let runner = Arc::clone(&handle);
        std::thread::spawn(move || {
            let outcome = run_supervised(&runner, &defs, worker_count, &cfg);
            match outcome {
                Ok(message) => runner.log.finish(true, message),
                Err(e) => runner.log.finish(false, e.to_string()),
            }
        });
    }

    let accepted = Frame::Accepted {
        campaign: campaign.to_string(),
        resumed,
    };
    if send(&mut stream, &accepted).is_ok() {
        stream_events(&handle, stream, 0);
    }
}

/// Streams events past `seen` until the campaign finishes or the client
/// goes away (which detaches the client, never the campaign).
fn stream_events(handle: &CampaignHandle, mut stream: UnixStream, mut seen: u64) {
    loop {
        let (fresh, finished) = handle.log.wait_past(seen);
        for (seq, what, detail) in fresh {
            seen = seq;
            if send(&mut stream, &Frame::Event { seq, what, detail }).is_err() {
                return;
            }
        }
        if let Some(done) = finished {
            let _ = send(
                &mut stream,
                &Frame::Done {
                    ok: done.ok,
                    message: done.message,
                },
            );
            return;
        }
    }
}

/// Runs one campaign with supervised worker processes. Returns the
/// summary line for the terminal [`Frame::Done`].
fn run_supervised(
    handle: &Arc<CampaignHandle>,
    figures: &[&'static FigureDef],
    workers: usize,
    cfg: &DaemonConfig,
) -> Result<String, FarmError> {
    let dir = handle.dir.clone();
    let plan = write_plan(&handle.name, figures, &dir)?;
    handle.log.push(
        "campaign-start",
        &format!(
            "{} figures, {} unique points, {} workers",
            figures.len(),
            plan.points.len(),
            workers.max(1)
        ),
    );

    let farm = Farm::new(
        &handle.name,
        plan.identity_fingerprint(),
        dir.join("campaign.ckpt"),
    );
    let worker_count = workers.max(1);
    let active = AtomicUsize::new(worker_count);
    let mut failures: Vec<String> = Vec::new();

    std::thread::scope(|s| {
        let farm_ref = &farm;
        let active_ref = &active;
        let supervisors: Vec<_> = (0..worker_count)
            .map(|slot| {
                let sup = Supervisor {
                    farm: farm_ref,
                    handle,
                    cfg,
                    active: active_ref,
                    slot,
                };
                s.spawn(move || sup.supervise())
            })
            .collect();
        let drivers: Vec<_> = figures
            .iter()
            .map(|def| {
                let dir = &dir;
                s.spawn(move || {
                    let mut host = FarmHost::new(def.name, farm_ref, dir);
                    (def.drive)(&mut host);
                    host.finish();
                })
            })
            .collect();
        for (def, driver) in figures.iter().zip(drivers) {
            match driver.join() {
                Ok(()) => handle.log.push("figure-done", def.name),
                Err(payload) => {
                    let msg = format!("{}: {}", def.name, panic_text(payload));
                    handle.log.push("figure-failed", &msg);
                    failures.push(msg);
                }
            }
        }
        farm_ref.close();
        for sup in supervisors {
            if sup.join().is_err() {
                failures.push("supervisor panicked".to_string());
            }
        }
    });

    let stats = farm.stats();
    let quarantined = farm.failures();
    write_failure_report(handle, &plan, &quarantined)?;
    let supervision = Supervision {
        respawns: handle.respawns.load(Ordering::Relaxed),
        retries: stats.retries,
        quarantined: quarantined.len() as u64,
        heartbeat_misses: handle.heartbeat_misses.load(Ordering::Relaxed),
        client_reconnects: handle.client_reconnects.load(Ordering::Relaxed),
    };
    write_supervision(&dir, &supervision)?;

    if failures.is_empty() {
        farm.remove_checkpoint()
            .map_err(|e| FarmError::io(dir.join("campaign.ckpt").display().to_string(), e))?;
        let message = format!(
            "campaign '{}' complete: {} computed, {} restored, {} deduplicated; \
             {} respawns, {} retries, {} heartbeat misses",
            handle.name,
            stats.computed,
            stats.restored,
            stats.deduplicated,
            supervision.respawns,
            supervision.retries,
            supervision.heartbeat_misses,
        );
        handle.log.push("campaign-done", &message);
        Ok(message)
    } else {
        let message = format!(
            "campaign '{}' failed ({} point(s) quarantined — see failures.json): {}",
            handle.name,
            quarantined.len(),
            failures.join("; ")
        );
        handle.log.push("campaign-failed", &message);
        Err(FarmError::Figure(message))
    }
}

/// Writes the typed per-figure failure report for quarantined points
/// (removing a stale one when the campaign is clean).
fn write_failure_report(
    handle: &CampaignHandle,
    plan: &crate::CampaignPlan,
    quarantined: &[(u64, u32, String)],
) -> Result<(), FarmError> {
    let path = handle.dir.join("failures.json");
    let shown = path.display().to_string();
    if quarantined.is_empty() {
        return match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(FarmError::io(&shown, e)),
        };
    }
    let entries: Vec<Json> = quarantined
        .iter()
        .map(|(fp, attempts, error)| {
            let planned = plan.points.iter().find(|p| p.fingerprint == *fp);
            Json::Obj(vec![
                ("fingerprint".to_string(), Json::Str(format!("{fp:016x}"))),
                (
                    "figure".to_string(),
                    Json::Str(planned.map_or(String::new(), |p| p.figure.clone())),
                ),
                (
                    "phase".to_string(),
                    Json::Str(planned.map_or(String::new(), |p| p.phase.clone())),
                ),
                (
                    "key".to_string(),
                    Json::Str(planned.map_or(String::new(), |p| p.job.key.clone())),
                ),
                ("attempts".to_string(), Json::UInt(u64::from(*attempts))),
                ("error".to_string(), Json::Str(error.clone())),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema_version".to_string(), Json::UInt(1)),
        (
            "kind".to_string(),
            Json::Str("maps-farm-failures".to_string()),
        ),
        ("campaign".to_string(), Json::Str(handle.name.clone())),
        ("failures".to_string(), Json::Arr(entries)),
    ]);
    maps_obs::write_atomic(&path, doc.to_pretty().as_bytes()).map_err(|e| FarmError::io(&shown, e))
}

/// Appends (or replaces) the supervision block in `campaign.json`.
fn write_supervision(dir: &Path, sup: &Supervision) -> Result<(), FarmError> {
    let path = dir.join("campaign.json");
    let shown = path.display().to_string();
    let text = std::fs::read_to_string(&path).map_err(|e| FarmError::io(&shown, e))?;
    let doc = Json::parse(&text).map_err(|e| FarmError::parse(&shown, e.to_string()))?;
    let Json::Obj(mut fields) = doc else {
        return Err(FarmError::parse(&shown, "not an object".to_string()));
    };
    fields.retain(|(k, _)| k != "supervision");
    fields.push(("supervision".to_string(), sup.to_json()));
    maps_obs::write_atomic(&path, Json::Obj(fields).to_pretty().as_bytes())
        .map_err(|e| FarmError::io(&shown, e))
}

/// What one worker pass over a claimed point produced.
enum Outcome {
    /// A result frame: the point is done.
    Done(Box<SimReport>),
    /// A `JobError` frame: the point failed but the worker is healthy.
    JobFailed(String),
    /// The worker is gone or wedged; `heartbeat_miss` marks a deadline
    /// expiry (vs. death detected by the pipe).
    WorkerLost { why: String, heartbeat_miss: bool },
}

/// What the reader thread forwards off a worker's stdout.
enum WorkerMsg {
    Frame(Frame),
    Malformed(ProtoError),
    Eof,
}

/// One live worker process.
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<WorkerMsg>,
}

impl WorkerProc {
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One worker slot's supervision loop: claim a point, keep a worker
/// alive, run the point, resolve it. [`Supervisor::supervise`] is a
/// PANIC-002 root — nothing reachable from it may panic, because it keeps
/// running across worker deaths, torn frames, and checkpoint writes.
struct Supervisor<'a> {
    farm: &'a Farm,
    handle: &'a CampaignHandle,
    cfg: &'a DaemonConfig,
    active: &'a AtomicUsize,
    slot: usize,
}

impl Supervisor<'_> {
    /// Drains the farm queue through this slot's worker process until the
    /// farm closes or the slot retires.
    fn supervise(&self) {
        let mut worker: Option<WorkerProc> = None;
        let mut spawn_failures: u32 = 0;
        let mut job_ids = (self.slot as u64) << 32;
        while let Some((fp, job)) = self.farm.next_job() {
            job_ids += 1;
            let id = job_ids;
            if worker.is_none() {
                match self.respawn(&mut spawn_failures) {
                    Some(proc_) => worker = Some(proc_),
                    None => {
                        // Slot retired: hand the claim back and, if this
                        // was the last slot, fail what remains typed.
                        self.farm.requeue(fp, job);
                        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
                            let msg = "worker pool fully degraded: no slot can spawn a worker";
                            self.handle.log.push("campaign-degraded", msg);
                            self.farm.fail_pending(msg);
                        }
                        return;
                    }
                }
            }
            let outcome = match worker.as_mut() {
                Some(proc_) => run_job_on(proc_, id, &job, self.cfg.heartbeat_timeout),
                None => Outcome::WorkerLost {
                    why: "no worker".to_string(),
                    heartbeat_miss: false,
                },
            };
            match outcome {
                Outcome::Done(report) => {
                    self.farm.complete(fp, &job.key, *report);
                    self.handle.log.push("point-done", &job.key);
                }
                Outcome::JobFailed(msg) => self.retry_or_quarantine(fp, job, &msg),
                Outcome::WorkerLost {
                    why,
                    heartbeat_miss,
                } => {
                    if heartbeat_miss {
                        self.handle.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
                        self.handle.log.push("heartbeat-miss", &job.key);
                    }
                    if let Some(proc_) = worker.take() {
                        proc_.kill();
                    }
                    self.handle.respawns.fetch_add(1, Ordering::Relaxed);
                    self.handle
                        .log
                        .push("worker-respawn", &format!("slot {}: {why}", self.slot));
                    self.retry_or_quarantine(fp, job, &why);
                }
            }
        }
        if let Some(mut proc_) = worker.take() {
            let _ = send(&mut proc_.stdin, &Frame::Exit);
            let _ = proc_.child.wait();
        }
    }

    /// Spawns a worker, backing off between attempts; `None` when the
    /// slot has exhausted its respawn budget.
    fn respawn(&self, spawn_failures: &mut u32) -> Option<WorkerProc> {
        loop {
            match spawn_worker() {
                Ok(proc_) => {
                    *spawn_failures = 0;
                    return Some(proc_);
                }
                Err(why) => {
                    *spawn_failures += 1;
                    self.handle
                        .log
                        .push("worker-spawn-failed", &format!("slot {}: {why}", self.slot));
                    if *spawn_failures > self.cfg.respawn_limit {
                        self.handle.log.push(
                            "worker-degraded",
                            &format!(
                                "slot {} retired after {} spawn failures",
                                self.slot, spawn_failures
                            ),
                        );
                        return None;
                    }
                    self.farm.policy().back_off("farmd-spawn", *spawn_failures);
                }
            }
        }
    }

    /// Counts a failed attempt against the point's retry budget: requeue
    /// after a seeded backoff, or quarantine.
    fn retry_or_quarantine(&self, fp: u64, job: SimJob, msg: &str) {
        match self.farm.fail_attempt(fp, &job.key, msg) {
            Some(attempt) => {
                self.handle
                    .log
                    .push("point-retry", &format!("{} (attempt {attempt})", job.key));
                self.farm.policy().back_off(&job.key, attempt);
                self.farm.requeue(fp, job);
            }
            None => {
                self.handle.log.push("point-quarantined", &job.key);
            }
        }
    }
}

/// Spawns one `maps-farmd --worker` child with piped stdin/stdout and a
/// reader thread forwarding its frames.
fn spawn_worker() -> Result<WorkerProc, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut child = Command::new(exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn failed: {e}"))?;
    let stdin = match child.stdin.take() {
        Some(stdin) => stdin,
        None => {
            let _ = child.kill();
            return Err("worker has no stdin pipe".to_string());
        }
    };
    let stdout = match child.stdout.take() {
        Some(stdout) => stdout,
        None => {
            let _ = child.kill();
            return Err("worker has no stdout pipe".to_string());
        }
    };
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(stdout);
        loop {
            let msg = match reader.next_frame() {
                Ok(Some(frame)) => WorkerMsg::Frame(frame),
                Ok(None) => {
                    let _ = tx.send(WorkerMsg::Eof);
                    return;
                }
                Err(e) => {
                    let _ = tx.send(WorkerMsg::Malformed(e));
                    return;
                }
            };
            if tx.send(msg).is_err() {
                return;
            }
        }
    });
    Ok(WorkerProc { child, stdin, rx })
}

/// Ships one job to a worker and waits for its resolution, treating
/// heartbeat silence past the deadline as a wedged worker.
fn run_job_on(proc_: &mut WorkerProc, id: u64, job: &SimJob, deadline: Duration) -> Outcome {
    let frame = Frame::Job {
        id,
        job: Box::new(job.clone()),
    };
    if let Err(e) = send(&mut proc_.stdin, &frame) {
        return Outcome::WorkerLost {
            why: format!("job write failed: {e}"),
            heartbeat_miss: false,
        };
    }
    let _ = proc_.stdin.flush();
    loop {
        match proc_.rx.recv_timeout(deadline) {
            Ok(WorkerMsg::Frame(Frame::Heartbeat { .. })) => {}
            Ok(WorkerMsg::Frame(Frame::JobResult { id: got, report })) if got == id => {
                return Outcome::Done(report);
            }
            Ok(WorkerMsg::Frame(Frame::JobError { id: got, message })) if got == id => {
                return Outcome::JobFailed(message);
            }
            Ok(WorkerMsg::Frame(other)) => {
                return Outcome::WorkerLost {
                    why: format!("worker sent an out-of-protocol frame: {other:?}"),
                    heartbeat_miss: false,
                };
            }
            Ok(WorkerMsg::Malformed(e)) => {
                return Outcome::WorkerLost {
                    why: format!("worker stream corrupt: {e}"),
                    heartbeat_miss: false,
                };
            }
            Ok(WorkerMsg::Eof) | Err(RecvTimeoutError::Disconnected) => {
                return Outcome::WorkerLost {
                    why: "worker died mid-point".to_string(),
                    heartbeat_miss: false,
                };
            }
            Err(RecvTimeoutError::Timeout) => {
                return Outcome::WorkerLost {
                    why: format!("heartbeat deadline ({deadline:?}) missed"),
                    heartbeat_miss: true,
                };
            }
        }
    }
}
