//! Farm-wide sweep-point identity.
//!
//! A point's fingerprint hashes everything that can change its simulated
//! numbers: the full [`maps_sim::SimConfig`], workload, seed, access
//! count, execution kind (replay / MIN / iterative MIN), and the git
//! revision of the simulator itself. Figures naming the same physical
//! point therefore collide onto one fingerprint — the farm's
//! deduplication key — while any change to the code or the configuration
//! separates them, so a stale checkpoint can never be resumed into wrong
//! results.

use std::sync::OnceLock;

use maps_bench::SimJob;
use maps_obs::fingerprint64;

/// The git revision baked into every fingerprint, memoized so a campaign
/// spawns one `git describe` process instead of one per point.
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(maps_obs::git_describe)
}

/// The farm-wide identity of one sweep point.
pub fn point_fingerprint(job: &SimJob) -> u64 {
    fingerprint64(&format!("{}|git={}", job.identity(), git_rev()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_sim::SimConfig;
    use maps_workloads::Benchmark;

    #[test]
    fn fingerprint_ignores_presentation_but_not_identity() {
        let cfg = SimConfig::paper_default();
        let a = SimJob::replay("fig2-name", cfg.clone(), Benchmark::Gups, 1000);
        let mut renamed = a.clone();
        renamed.key = "fig7-name".to_string();
        assert_eq!(point_fingerprint(&a), point_fingerprint(&renamed));

        let mut other_cfg = a.clone();
        other_cfg.cfg = cfg.with_llc_bytes(cfg.llc_bytes * 2);
        assert_ne!(point_fingerprint(&a), point_fingerprint(&other_cfg));

        let mut other_seed = a.clone();
        other_seed.seed += 1;
        assert_ne!(point_fingerprint(&a), point_fingerprint(&other_seed));
    }
}
