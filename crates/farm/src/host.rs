//! The farm's [`SweepHost`]: figure drivers run unchanged, their sweep
//! points detour through the shared campaign queue.
//!
//! Artifact handling reuses [`RunContext`] wholesale — parameters,
//! config, phase timings, TSV buffering, and the manifest writer are the
//! exact code path of the standalone binaries — so under
//! `MAPS_DETERMINISTIC=1` the farm's per-figure TSV and manifest files
//! are byte-identical to theirs. Only execution differs: phases go
//! through [`RunContext::sweep_via`] (timed, but not checkpointed — the
//! farm queue owns crash-safety), tables are buffered without printing
//! (ten figures share one stdout), and narrative notes are dropped.

use std::path::Path;

use maps_bench::{RunContext, SimJob, SweepHost};
use maps_sim::{SimConfig, SimReport};

use crate::queue::Farm;

/// Drives one figure against the shared farm queue.
pub struct FarmHost<'a> {
    ctx: RunContext,
    farm: &'a Farm,
    figure: String,
}

impl<'a> FarmHost<'a> {
    /// Opens the host for one figure, placing `<figure>.tsv` and
    /// `<figure>.manifest.json` in the campaign directory.
    pub fn new(figure: &str, farm: &'a Farm, dir: &Path) -> Self {
        let ctx = RunContext::with_paths(
            figure,
            dir.join(format!("{figure}.manifest.json")),
            // Never created: the farm checkpoint owns point persistence.
            dir.join(format!("{figure}.ckpt")),
            Some(dir.join(format!("{figure}.tsv"))),
        );
        FarmHost {
            ctx,
            farm,
            figure: figure.to_string(),
        }
    }

    /// Writes the figure's TSV and manifest artifacts.
    pub fn finish(self) {
        self.ctx.finish();
    }
}

impl SweepHost for FarmHost<'_> {
    fn param_u64(&mut self, key: &str, value: u64) {
        self.ctx.param_u64(key, value);
    }

    fn param_str(&mut self, key: &str, value: &str) {
        self.ctx.param_str(key, value);
    }

    fn set_config(&mut self, cfg: &SimConfig) {
        self.ctx.set_config(cfg);
    }

    fn sweep(&mut self, phase: &str, jobs: Vec<SimJob>) -> Vec<SimReport> {
        let farm = self.farm;
        let label = format!("{}/{phase}", self.figure);
        self.ctx.sweep_via(phase, jobs, |jobs| {
            match farm.run_labeled(&label, jobs) {
                Ok(reports) => reports,
                // Panic the figure thread; run_campaign catches it and
                // reports the figure as failed without killing the rest.
                Err(e) => panic!("{label}: {e}"),
            }
        })
    }

    fn record_report(&mut self, label: &str, report: &SimReport) {
        self.ctx.record_report(label, report);
    }

    fn emit(&mut self, table: &maps_analysis::Table) {
        self.ctx.emit_quiet(table);
    }

    fn note(&mut self, _text: &str) {}

    fn claim(&mut self, ok: bool, description: &str) {
        maps_bench::claim(ok, &format!("{}: {description}", self.figure));
    }
}
