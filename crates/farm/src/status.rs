//! Campaign progress, read entirely from the artifact directory.
//!
//! `maps-farm status` correlates three sources, none of which require the
//! running campaign's cooperation: `campaign.json` (what was planned),
//! `campaign.ckpt` (which fingerprints have finished — written atomically
//! after every point), and the per-figure `<name>.manifest.json` files
//! (which figures completed and wrote their artifacts). It can therefore
//! watch a live run, inspect a crashed one, or confirm a finished one.

use std::path::Path;

use maps_obs::Checkpoint;
use maps_trace::DetHashSet;

use crate::campaign::{load_campaign, CampaignDoc};
use crate::FarmError;

/// A point-in-time view of a campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// The planned campaign.
    pub doc: CampaignDoc,
    /// Unique points finished so far (from the checkpoint; equals the
    /// plan size once every figure completed and 0 after the checkpoint
    /// is cleaned up — see [`CampaignStatus::complete`]).
    pub finished_points: usize,
    /// Figures whose manifest exists (completed figures).
    pub finished_figures: Vec<String>,
    /// `(figure, phase, done, planned)` per planned phase, attributing
    /// each shared point to the first figure that declared it.
    pub phase_progress: Vec<(String, String, usize, usize)>,
}

impl CampaignStatus {
    /// Whether every selected figure wrote its manifest.
    pub fn complete(&self) -> bool {
        self.finished_figures.len() == self.doc.figures.len()
    }

    /// Renders the human-readable status block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign '{}' at {}: {} unique points ({} declared jobs, {} capture keys)\n",
            self.doc.name,
            self.doc.git,
            self.doc.points.len(),
            self.doc.total_jobs,
            self.doc.capture_keys,
        ));
        out.push_str(&format!(
            "checkpointed: {}/{} points; figures complete: {}/{}\n",
            self.finished_points,
            self.doc.points.len(),
            self.finished_figures.len(),
            self.doc.figures.len(),
        ));
        for fig in &self.doc.figures {
            let done = if self.finished_figures.contains(&fig.name) {
                " [complete]"
            } else {
                ""
            };
            let estimate = if fig.dynamic {
                " (plan is an estimate)"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {} @ {} accesses{estimate}{done}\n",
                fig.name, fig.accesses
            ));
            for (figure, phase, finished, planned) in &self.phase_progress {
                if figure == &fig.name {
                    out.push_str(&format!("    {phase}: {finished}/{planned}\n"));
                }
            }
        }
        if let Some(sup) = &self.doc.supervision {
            out.push_str(&format!(
                "supervision: {} worker respawns, {} retries, {} quarantined, \
                 {} heartbeat misses, {} client reconnects\n",
                sup.respawns,
                sup.retries,
                sup.quarantined,
                sup.heartbeat_misses,
                sup.client_reconnects,
            ));
        }
        out
    }
}

/// Reads the status of the campaign in `dir`.
///
/// # Errors
///
/// [`FarmError::Io`] / [`FarmError::Parse`] when `campaign.json` is
/// missing or malformed. A missing or mismatched checkpoint is *not* an
/// error — it simply means no resumable progress exists.
pub fn campaign_status(dir: &Path) -> Result<CampaignStatus, FarmError> {
    let doc = load_campaign(&dir.join("campaign.json"))?;

    // The checkpoint is only trusted when it belongs to this exact plan.
    let finished: DetHashSet<u64> = match Checkpoint::load(&dir.join("campaign.ckpt")) {
        Ok(Some(ckpt))
            if ckpt.name() == doc.name && ckpt.fingerprint() == doc.identity_fingerprint =>
        {
            doc.points
                .iter()
                .filter(|(fp, _, _, _)| ckpt.get(&format!("pt/{fp:016x}")).is_some())
                .map(|(fp, _, _, _)| *fp)
                .collect()
        }
        _ => DetHashSet::default(),
    };

    let finished_figures: Vec<String> = doc
        .figures
        .iter()
        .map(|f| f.name.clone())
        .filter(|name| dir.join(format!("{name}.manifest.json")).exists())
        .collect();

    // Per-phase progress over the planned unique points (shared points
    // count toward their first declarer).
    let mut phase_progress: Vec<(String, String, usize, usize)> = Vec::new();
    for (fp, figure, phase, _key) in &doc.points {
        let done = finished.contains(fp) as usize;
        match phase_progress
            .iter_mut()
            .find(|(f, p, _, _)| f == figure && p == phase)
        {
            Some((_, _, finished, planned)) => {
                *finished += done;
                *planned += 1;
            }
            None => phase_progress.push((figure.clone(), phase.clone(), done, 1)),
        }
    }

    Ok(CampaignStatus {
        finished_points: finished.len(),
        finished_figures,
        phase_progress,
        doc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_bench::figures::figure;

    #[test]
    fn status_tracks_checkpoint_and_manifests() {
        let dir = std::env::temp_dir().join(format!("maps-farm-status-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");

        let defs = [figure("fig2").expect("fig2 registered")];
        let plan = crate::run::write_plan("campaign", &defs, &dir).expect("plan");

        // No checkpoint, no manifests: nothing finished.
        let status = campaign_status(&dir).expect("status");
        assert_eq!(status.finished_points, 0);
        assert!(!status.complete());

        // Checkpoint two points under the plan's identity.
        let mut ckpt = Checkpoint::new("campaign", plan.identity_fingerprint());
        for p in plan.points.iter().take(2) {
            ckpt.insert(&format!("pt/{:016x}", p.fingerprint), maps_obs::Json::Null);
        }
        ckpt.save(&dir.join("campaign.ckpt")).expect("save ckpt");
        let status = campaign_status(&dir).expect("status");
        assert_eq!(status.finished_points, 2);
        let fig2_done: usize = status
            .phase_progress
            .iter()
            .filter(|(f, _, _, _)| f == "fig2")
            .map(|(_, _, done, _)| done)
            .sum();
        assert_eq!(fig2_done, 2);
        assert!(status.render().contains("checkpointed: 2/"));

        // A checkpoint for a different identity is ignored, not trusted.
        Checkpoint::new("campaign", plan.identity_fingerprint() ^ 1)
            .save(&dir.join("campaign.ckpt"))
            .expect("save stale ckpt");
        assert_eq!(campaign_status(&dir).expect("status").finished_points, 0);

        // A manifest marks the figure complete.
        std::fs::write(dir.join("fig2.manifest.json"), "{}").expect("manifest");
        assert!(campaign_status(&dir).expect("status").complete());
        std::fs::remove_dir_all(&dir).ok();
    }
}
