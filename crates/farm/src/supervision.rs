//! Supervision counters: how much crash-isolation machinery fired.
//!
//! A `maps-farmd` campaign appends this block to `campaign.json` when it
//! settles, and `maps-farm status` renders it. The block is advisory —
//! absent for in-process (`maps-farm run`) campaigns and ignored when
//! malformed — but its field set is drift-guarded by SCHEMA-001.

use maps_obs::Json;

/// Counters a daemon run exports into `campaign.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Supervision {
    /// Worker processes killed and replaced (death, torn frame, stall).
    pub respawns: u64,
    /// Failed point attempts retried under the backoff policy.
    pub retries: u64,
    /// Points quarantined past their retry budget (see `failures.json`).
    pub quarantined: u64,
    /// Heartbeat deadlines that expired on a claimed point.
    pub heartbeat_misses: u64,
    /// Clients that re-attached to the live event stream.
    pub client_reconnects: u64,
}

impl Supervision {
    /// Encodes the counter block.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("respawns".to_string(), Json::UInt(self.respawns)),
            ("retries".to_string(), Json::UInt(self.retries)),
            ("quarantined".to_string(), Json::UInt(self.quarantined)),
            (
                "heartbeat_misses".to_string(),
                Json::UInt(self.heartbeat_misses),
            ),
            (
                "client_reconnects".to_string(),
                Json::UInt(self.client_reconnects),
            ),
        ])
    }

    /// Decodes a counter block; `None` for anything mistyped (the block
    /// is advisory — a malformed one is ignored, not fatal).
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(Supervision {
            respawns: doc.get("respawns")?.as_u64()?,
            retries: doc.get("retries")?.as_u64()?,
            quarantined: doc.get("quarantined")?.as_u64()?,
            heartbeat_misses: doc.get("heartbeat_misses")?.as_u64()?,
            client_reconnects: doc.get("client_reconnects")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_and_reject_mistyped_blocks() {
        let sup = Supervision {
            respawns: 3,
            retries: 7,
            quarantined: 1,
            heartbeat_misses: 2,
            client_reconnects: 4,
        };
        assert_eq!(Supervision::from_json(&sup.to_json()), Some(sup));
        assert_eq!(Supervision::from_json(&Json::Null), None);
        let Json::Obj(mut fields) = sup.to_json() else {
            panic!("supervision encodes as an object");
        };
        fields.retain(|(k, _)| k != "retries");
        assert_eq!(
            Supervision::from_json(&Json::Obj(fields)),
            None,
            "a dropped counter is a decode miss, not a default"
        );
    }
}
