//! Client side of the `maps-farmd` protocol: submit, attach, status.
//!
//! Campaigns outlive their clients. `submit` starts (or joins) a
//! campaign and follows its event stream; if the connection drops — the
//! daemon restarted, the terminal went away and came back — the client
//! reconnects with [`Frame::Attach`] carrying the first sequence number
//! it has *not* seen, so the resumed stream has no gaps and no
//! duplicates. Losing the daemon entirely is a typed error after a
//! bounded, seeded-backoff reconnect budget — never a hang.

use std::os::unix::net::UnixStream;
use std::path::Path;

use maps_bench::RetryPolicy;

use crate::proto::{send, Frame, FrameReader};
use crate::FarmError;

/// How a finished client interaction ended.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Whether the campaign completed without quarantined points.
    pub ok: bool,
    /// The daemon's summary (or failure) line.
    pub message: String,
}

/// Reconnect attempts before the client gives up on the daemon.
const RECONNECT_BUDGET: u32 = 10;

fn connect(socket: &Path) -> Result<UnixStream, FarmError> {
    UnixStream::connect(socket).map_err(|e| FarmError::io(socket.display().to_string(), e))
}

/// One request/stream exchange. Returns `Ok(None)` when the connection
/// died mid-stream (the caller reconnects) and the last seq seen via
/// `seen`.
fn stream_once(
    socket: &Path,
    request: &Frame,
    seen: &mut u64,
) -> Result<Option<StreamOutcome>, FarmError> {
    let mut stream = connect(socket)?;
    send(&mut stream, request)
        .map_err(|e| FarmError::parse(socket.display().to_string(), e.to_string()))?;
    let mut reader = FrameReader::new(stream);
    // The first frame decides whether the request was accepted at all.
    match reader.next_frame() {
        Ok(Some(Frame::Accepted { campaign, resumed })) => {
            if resumed && *seen == 0 {
                eprintln!("[farm] attached to running campaign '{campaign}'");
            }
        }
        Ok(Some(Frame::Reject { message })) => {
            return Err(FarmError::Usage(format!(
                "daemon rejected request: {message}"
            )))
        }
        Ok(Some(other)) => {
            return Err(FarmError::parse(
                socket.display().to_string(),
                format!("expected accepted/reject, got {other:?}"),
            ))
        }
        Ok(None) | Err(_) => return Ok(None),
    }
    loop {
        match reader.next_frame() {
            Ok(Some(Frame::Event { seq, what, detail })) => {
                if seq > *seen {
                    *seen = seq;
                    println!("[{seq}] {what}: {detail}");
                }
            }
            Ok(Some(Frame::Done { ok, message })) => {
                return Ok(Some(StreamOutcome { ok, message }))
            }
            Ok(Some(other)) => {
                eprintln!("[farm] ignoring unexpected frame {other:?}");
            }
            // Mid-stream loss: reconnect from *seen.
            Ok(None) | Err(_) => return Ok(None),
        }
    }
}

/// Follows a campaign's event stream to its terminal frame, reconnecting
/// across connection loss.
///
/// # Errors
///
/// [`FarmError::Io`] when the daemon stays unreachable past the
/// reconnect budget, [`FarmError::Usage`] when it rejects the request.
fn follow(
    socket: &Path,
    campaign: &str,
    first_request: Frame,
    mut seen: u64,
) -> Result<StreamOutcome, FarmError> {
    let policy = RetryPolicy::from_env(maps_bench::SEED);
    let mut request = first_request;
    let mut drops: u32 = 0;
    loop {
        match stream_once(socket, &request, &mut seen) {
            Ok(Some(outcome)) => return Ok(outcome),
            Ok(None) => {
                drops += 1;
                if drops > RECONNECT_BUDGET {
                    return Err(FarmError::Figure(format!(
                        "lost the daemon at {} after {drops} attempts (last seq {seen})",
                        socket.display()
                    )));
                }
                eprintln!(
                    "[farm] connection lost (seq {seen}); reconnecting (attempt {drops}/{RECONNECT_BUDGET})"
                );
                policy.back_off("farmd-reconnect", drops);
                request = Frame::Attach {
                    campaign: campaign.to_string(),
                    since: seen + 1,
                };
            }
            Err(e) => {
                // Connection refused right after a daemon restart is a
                // reconnectable condition too.
                if matches!(e, FarmError::Io { .. }) && drops > 0 && drops <= RECONNECT_BUDGET {
                    drops += 1;
                    policy.back_off("farmd-reconnect", drops);
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// Submits a campaign to the daemon and follows it to completion.
/// Returns the terminal outcome.
///
/// # Errors
///
/// See [`follow`]'s error contract; plus every rejection the daemon
/// issues for unknown figures.
pub fn submit(
    socket: &Path,
    campaign: &str,
    dir: &Path,
    figures: &[String],
    accesses: u64,
    workers: u64,
) -> Result<StreamOutcome, FarmError> {
    let request = Frame::Submit {
        campaign: campaign.to_string(),
        dir: dir.display().to_string(),
        figures: figures.to_vec(),
        accesses,
        workers,
    };
    follow(socket, campaign, request, 0)
}

/// (Re-)attaches to a running campaign's event stream from `since` and
/// follows it to completion.
///
/// # Errors
///
/// See [`follow`].
pub fn attach(socket: &Path, campaign: &str, since: u64) -> Result<StreamOutcome, FarmError> {
    let request = Frame::Attach {
        campaign: campaign.to_string(),
        since,
    };
    follow(socket, campaign, request, since.saturating_sub(1))
}

/// Asks the daemon for a one-shot status snapshot of a campaign.
///
/// # Errors
///
/// [`FarmError::Io`] when the daemon is unreachable, [`FarmError::Usage`]
/// when it does not know the campaign.
pub fn status(socket: &Path, campaign: &str) -> Result<StreamOutcome, FarmError> {
    let mut stream = connect(socket)?;
    let request = Frame::Status {
        campaign: campaign.to_string(),
    };
    send(&mut stream, &request)
        .map_err(|e| FarmError::parse(socket.display().to_string(), e.to_string()))?;
    let mut reader = FrameReader::new(stream);
    match reader.next_frame() {
        Ok(Some(Frame::Done { ok, message })) => Ok(StreamOutcome { ok, message }),
        Ok(Some(Frame::Reject { message })) => Err(FarmError::Usage(format!(
            "daemon rejected request: {message}"
        ))),
        Ok(Some(other)) => Err(FarmError::parse(
            socket.display().to_string(),
            format!("expected done/reject, got {other:?}"),
        )),
        Ok(None) => Err(FarmError::parse(
            socket.display().to_string(),
            "daemon closed the connection without answering".to_string(),
        )),
        Err(e) => Err(FarmError::parse(
            socket.display().to_string(),
            e.to_string(),
        )),
    }
}
