//! The `maps-farmd --worker` process loop.
//!
//! A worker is one crash-isolated executor: it reads [`Frame::Job`]s off
//! stdin, runs them through [`maps_bench::exec_job`], and answers with
//! [`Frame::JobResult`] (or [`Frame::JobError`] when the simulation
//! panicked — the point failed but the process is still healthy). While a
//! job runs, a background thread shares the stdout lock to emit
//! [`Frame::Heartbeat`]s, so the supervising daemon can tell a slow
//! simulation from a wedged process and SIGKILL only the latter.
//!
//! Fault hooks (for the inject plane and the e2e suite; all read once at
//! startup). Positions are matched against the supervisor-assigned
//! per-slot job sequence (the low 32 bits of the job id), which is
//! monotonic *across* respawns — every fault is process-terminal, so a
//! per-process count could only ever reach the smallest threshold. With
//! sequence positions, one campaign can be made to hit several distinct
//! fault classes per worker slot, each exactly once:
//!
//! * `MAPS_FARMD_FAULT_KILL_AT=k` — SIGKILL itself before the job with
//!   slot sequence k (an uncatchable death mid-protocol; the daemon sees
//!   a dead pipe).
//! * `MAPS_FARMD_FAULT_STALL_AT=k` — stop heartbeating and sleep forever
//!   at slot sequence k (the daemon's heartbeat deadline must fire).
//! * `MAPS_FARMD_FAULT_TORN_AT=k` — write half a frame instead of the
//!   result for slot sequence k, then die (the daemon's frame decoder
//!   must return a typed error, never tear its own state).
//! * `MAPS_FARMD_FAULT_PANIC_KEY=s` — answer `JobError` for every job
//!   whose key contains `s` (drives a point past its retry budget into
//!   quarantine while the rest of the campaign completes).

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::proto::{send, Frame, FrameReader};
use crate::queue::panic_text;

/// How often a busy worker proves it is alive.
fn heartbeat_interval() -> Duration {
    let ms = std::env::var("MAPS_FARMD_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn fault_at(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Locks shared stdout and writes one frame; `false` means the daemon is
/// gone and the worker should exit.
fn send_locked(out: &Mutex<std::io::Stdout>, frame: &Frame) -> bool {
    let mut stdout = out.lock().unwrap_or_else(|p| p.into_inner());
    send(&mut *stdout, frame).is_ok()
}

/// Runs the worker loop over stdin/stdout until the daemon closes the
/// pipe or sends [`Frame::Exit`]. Returns the process exit code.
pub fn run_worker() -> u8 {
    let kill_at = fault_at("MAPS_FARMD_FAULT_KILL_AT");
    let stall_at = fault_at("MAPS_FARMD_FAULT_STALL_AT");
    let torn_at = fault_at("MAPS_FARMD_FAULT_TORN_AT");
    let panic_key = std::env::var("MAPS_FARMD_FAULT_PANIC_KEY").ok();

    let out = Arc::new(Mutex::new(std::io::stdout()));
    let mut reader = FrameReader::new(std::io::stdin());

    loop {
        let frame = match reader.next_frame() {
            Ok(Some(frame)) => frame,
            // Clean EOF: the daemon exited or dropped this worker.
            Ok(None) => return 0,
            Err(e) => {
                eprintln!(
                    "[worker {}] protocol error on stdin: {e}",
                    std::process::id()
                );
                return 3;
            }
        };
        let (id, job) = match frame {
            Frame::Job { id, job } => (id, job),
            Frame::Exit => return 0,
            other => {
                eprintln!(
                    "[worker {}] ignoring unexpected frame {other:?}",
                    std::process::id()
                );
                continue;
            }
        };
        // The supervisor's per-slot job sequence: survives respawns, so
        // distinct fault positions land in distinct worker lives.
        let seq = id & 0xffff_ffff;

        if kill_at == Some(seq) {
            kill_self_hard();
        }
        if stall_at == Some(seq) {
            // Wedge silently: no heartbeats, no result, no exit.
            eprintln!("[worker {}] injected stall", std::process::id());
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        if let Some(key) = panic_key.as_deref() {
            if job.key.contains(key) {
                let sent = send_locked(
                    &out,
                    &Frame::JobError {
                        id,
                        message: format!("injected fault: poisoned point '{}'", job.key),
                    },
                );
                if !sent {
                    return 0;
                }
                continue;
            }
        }

        let outcome = with_heartbeats(&out, id, || {
            catch_unwind(AssertUnwindSafe(|| maps_bench::exec_job(&job)))
        });

        if torn_at == Some(seq) {
            // Half a frame: magic plus a length that promises far more
            // payload than follows, then death mid-write.
            let mut stdout = out.lock().unwrap_or_else(|p| p.into_inner());
            let _ = stdout.write_all(&maps_obs::FRAME_MAGIC);
            let _ = stdout.write_all(&4096u32.to_le_bytes());
            let _ = stdout.write_all(b"{\"to");
            let _ = stdout.flush();
            eprintln!("[worker {}] injected torn frame", std::process::id());
            return 7;
        }

        let reply = match outcome {
            Ok(report) => Frame::JobResult {
                id,
                report: Box::new(report),
            },
            Err(payload) => Frame::JobError {
                id,
                message: panic_text(payload),
            },
        };
        if !send_locked(&out, &reply) {
            return 0;
        }
    }
}

/// Runs `body` while a background thread heartbeats `id` on the shared
/// stdout, stopping the heartbeats before returning.
fn with_heartbeats<R>(out: &Arc<Mutex<std::io::Stdout>>, id: u64, body: impl FnOnce() -> R) -> R {
    let (stop_tx, stop_rx) = channel::<()>();
    let beat_out = Arc::clone(out);
    let interval = heartbeat_interval();
    let beats = std::thread::spawn(move || loop {
        match stop_rx.recv_timeout(interval) {
            // The job finished (or the sender was dropped): stop beating.
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {
                if !send_locked(&beat_out, &Frame::Heartbeat { id }) {
                    return;
                }
            }
        }
    });
    let result = body();
    let _ = stop_tx.send(());
    let _ = beats.join();
    result
}

/// Delivers a real SIGKILL to this process (uncatchable, mid-anything),
/// falling back to an abort if no `kill` binary exists.
fn kill_self_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // SIGKILL delivery can race past the status() return; make sure we
    // never continue into the protocol half-dead.
    std::process::abort();
}
