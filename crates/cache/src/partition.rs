//! Way partitioning between counters and hashes, and the set-dueling
//! dynamic partition controller (Section V-C).

use maps_trace::BlockKind;

use crate::psel::PselCounter;

/// A partition split that would starve one side at a given associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionError {
    /// Requested counter ways.
    pub counter_ways: usize,
    /// Total associativity the split was checked against.
    pub ways: usize,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition {}:{} must leave at least one way per side",
            self.counter_ways,
            self.ways.saturating_sub(self.counter_ways)
        )
    }
}

impl std::error::Error for PartitionError {}

/// A static way partition for the metadata cache.
///
/// Counters are restricted to the first `counter_ways` ways and hashes to
/// the rest. Tree nodes (and data, in mixed caches) may use any way — the
/// paper explicitly excludes tree nodes from partitioning because their
/// reuse distances are either too short to be evicted or too long to cache.
///
/// # Examples
///
/// ```
/// use maps_cache::Partition;
/// use maps_trace::BlockKind;
/// let p = Partition::counter_ways(3);
/// assert_eq!(p.ways_for(BlockKind::Counter, 8), (0, 3));
/// assert_eq!(p.ways_for(BlockKind::Hash, 8), (3, 8));
/// assert_eq!(p.ways_for(BlockKind::Tree(0), 8), (0, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    counter_ways: usize,
}

impl Partition {
    /// Creates a partition validated against the associativity it will be
    /// used with: both sides keep at least one way. Prefer this over
    /// [`counter_ways`](Self::counter_ways) whenever the associativity is
    /// known at construction time.
    pub fn new(counter_ways: usize, ways: usize) -> Result<Self, PartitionError> {
        if counter_ways >= 1 && counter_ways < ways {
            Ok(Self { counter_ways })
        } else {
            Err(PartitionError { counter_ways, ways })
        }
    }

    /// Creates a partition granting `counter_ways` ways to counters; the
    /// remainder go to hashes.
    ///
    /// The split is unchecked here because the associativity is not known
    /// yet; every consumer validates before use ([`new`](Self::new),
    /// [`validate`](Self::validate), `SetAssocCache::set_partition`,
    /// [`DuelingController::new`]) and [`ways_for`](Self::ways_for)
    /// debug-asserts as a backstop.
    pub const fn counter_ways(counter_ways: usize) -> Self {
        Self { counter_ways }
    }

    /// Number of ways granted to counters.
    pub const fn counter_way_count(&self) -> usize {
        self.counter_ways
    }

    /// Validates the partition against an associativity.
    ///
    /// # Panics
    ///
    /// Panics if the split leaves either side without at least one way.
    pub fn validate(&self, ways: usize) {
        if let Err(e) = Partition::new(self.counter_ways, ways) {
            panic!("{e}");
        }
    }

    /// Checked form of [`validate`](Self::validate).
    pub fn try_validate(&self, ways: usize) -> Result<(), PartitionError> {
        Partition::new(self.counter_ways, ways).map(|_| ())
    }

    /// Half-open way range `[lo, hi)` allowed for `kind` at associativity
    /// `ways`.
    ///
    /// In debug builds an invalid split (either side empty) asserts;
    /// release builds clamp, which for `counter_ways ≥ ways` hands hashes
    /// the empty range `[ways, ways)` — a cache that can never fill — so
    /// construction-time validation is not optional.
    pub fn ways_for(&self, kind: BlockKind, ways: usize) -> (usize, usize) {
        debug_assert!(
            self.counter_ways >= 1 && self.counter_ways < ways,
            "unvalidated partition: {} counter ways of {ways}",
            self.counter_ways
        );
        match kind {
            BlockKind::Counter => (0, self.counter_ways.min(ways)),
            BlockKind::Hash => (self.counter_ways.min(ways), ways),
            BlockKind::Data | BlockKind::Tree(_) => (0, ways),
        }
    }

    /// All valid splits for an associativity, for best-static sweeps.
    pub fn all_splits(ways: usize) -> impl Iterator<Item = Partition> {
        (1..ways).map(Partition::counter_ways)
    }
}

/// Role a set plays under set dueling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// Always uses partition A; its misses vote for B.
    LeaderA,
    /// Always uses partition B; its misses vote for A.
    LeaderB,
    /// Uses whichever partition is currently winning.
    Follower,
}

/// Set-dueling controller choosing between two partitions at run time
/// (Qureshi et al.-style dynamic insertion adapted to partitioning, as the
/// paper's Section V-C describes).
///
/// Two small collections of leader sets are distributed uniformly across
/// the index space; a saturating [`PselCounter`] accumulates miss votes
/// and follower sets adopt the partition of the currently-winning leader
/// (the sign/tie convention is documented once, on
/// [`psel`](crate::psel)).
#[derive(Debug, Clone)]
pub struct DuelingController {
    partition_a: Partition,
    partition_b: Partition,
    roles: Vec<SetRole>,
    psel: PselCounter,
}

impl DuelingController {
    /// Creates a controller over `sets` cache sets of associativity
    /// `ways`, with `leaders_per_side` leader sets for each competing
    /// partition. Both partitions are validated here: the controller's
    /// choices flow into `SetAssocCache::access_with` as per-access
    /// overrides, bypassing `set_partition`'s validation, so this is the
    /// last construction-time gate before `ways_for`.
    ///
    /// # Panics
    ///
    /// Panics if either partition is invalid at `ways` or there are not
    /// enough sets for the requested leaders.
    pub fn new(
        sets: usize,
        ways: usize,
        leaders_per_side: usize,
        partition_a: Partition,
        partition_b: Partition,
    ) -> Self {
        partition_a.validate(ways);
        partition_b.validate(ways);
        assert!(
            2 * leaders_per_side <= sets,
            "cannot place {leaders_per_side} leader sets per side in {sets} sets"
        );
        let mut roles = vec![SetRole::Follower; sets];
        if leaders_per_side > 0 {
            // Distribute leaders uniformly: interleave A and B leaders at a
            // fixed stride so both samples span the whole index space.
            let stride = sets / (2 * leaders_per_side);
            for i in 0..leaders_per_side {
                roles[2 * i * stride] = SetRole::LeaderA;
                roles[(2 * i + 1) * stride] = SetRole::LeaderB;
            }
        }
        Self {
            partition_a,
            partition_b,
            roles,
            psel: PselCounter::new(),
        }
    }

    /// Role of a set.
    pub fn role(&self, set: usize) -> SetRole {
        self.roles[set]
    }

    /// Partition a given set should use right now.
    pub fn partition_for(&self, set: usize) -> Partition {
        match self.roles[set] {
            SetRole::LeaderA => self.partition_a,
            SetRole::LeaderB => self.partition_b,
            SetRole::Follower => {
                if self.psel.prefers_b() {
                    self.partition_b
                } else {
                    self.partition_a
                }
            }
        }
    }

    /// Records a miss in `set`; leader misses move the selector toward the
    /// other leader's partition.
    pub fn record_miss(&mut self, set: usize) {
        match self.roles[set] {
            SetRole::LeaderA => self.psel.record_a_miss(),
            SetRole::LeaderB => self.psel.record_b_miss(),
            SetRole::Follower => {}
        }
    }

    /// Current selector value (negative favours partition A).
    pub fn selector(&self) -> i32 {
        self.psel.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ranges() {
        let p = Partition::counter_ways(2);
        p.validate(8);
        assert_eq!(p.ways_for(BlockKind::Counter, 8), (0, 2));
        assert_eq!(p.ways_for(BlockKind::Hash, 8), (2, 8));
        assert_eq!(p.ways_for(BlockKind::Data, 8), (0, 8));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn degenerate_partition_rejected() {
        Partition::counter_ways(8).validate(8);
    }

    #[test]
    fn checked_constructor_rejects_degenerate_splits() {
        assert!(Partition::new(3, 8).is_ok());
        assert_eq!(
            Partition::new(8, 8),
            Err(PartitionError {
                counter_ways: 8,
                ways: 8
            })
        );
        assert!(Partition::new(9, 8).is_err());
        assert!(Partition::new(0, 8).is_err());
        assert!(Partition::counter_ways(2).try_validate(8).is_ok());
        assert!(Partition::counter_ways(0).try_validate(8).is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unvalidated partition")]
    fn ways_for_asserts_on_unvalidated_split() {
        // Regression: this used to silently hand hashes the empty range
        // (ways, ways), starving them of every way.
        Partition::counter_ways(8).ways_for(BlockKind::Hash, 8);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_ways_for_stays_in_bounds_for_unvalidated_splits() {
        // Release builds have no debug_assert; the clamp is the last
        // line of defence. An unchecked degenerate split must still
        // yield an in-bounds (possibly empty) range — never an
        // out-of-bounds or inverted one — while the checked
        // constructors (`Partition::new`, `try_validate`) keep every
        // user-reachable path (mdcsim --partition, oracle artifact
        // parsing) from constructing such a split in the first place.
        for cw in [0usize, 8, 9, 1000] {
            let p = Partition::counter_ways(cw);
            for kind in [
                BlockKind::Counter,
                BlockKind::Hash,
                BlockKind::Data,
                BlockKind::Tree(0),
            ] {
                let (lo, hi) = p.ways_for(kind, 8);
                assert!(lo <= hi && hi <= 8, "({lo},{hi}) escapes 8 ways");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn dueling_controller_validates_partitions() {
        DuelingController::new(
            16,
            8,
            1,
            Partition::counter_ways(2),
            Partition::counter_ways(8), // would starve hashes
        );
    }

    #[test]
    fn all_splits_enumerates() {
        let splits: Vec<_> = Partition::all_splits(4).collect();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].counter_way_count(), 1);
        assert_eq!(splits[2].counter_way_count(), 3);
    }

    #[test]
    fn leaders_distributed_and_balanced() {
        let d = DuelingController::new(
            64,
            8,
            4,
            Partition::counter_ways(2),
            Partition::counter_ways(6),
        );
        let a = (0..64).filter(|&s| d.role(s) == SetRole::LeaderA).count();
        let b = (0..64).filter(|&s| d.role(s) == SetRole::LeaderB).count();
        assert_eq!((a, b), (4, 4));
    }

    #[test]
    fn follower_tracks_winning_leader() {
        let mut d = DuelingController::new(
            64,
            8,
            2,
            Partition::counter_ways(2),
            Partition::counter_ways(6),
        );
        let follower = (0..64).find(|&s| d.role(s) == SetRole::Follower).unwrap();
        // Misses in A's leaders vote for B.
        let leader_a = (0..64).find(|&s| d.role(s) == SetRole::LeaderA).unwrap();
        for _ in 0..10 {
            d.record_miss(leader_a);
        }
        assert_eq!(d.partition_for(follower), Partition::counter_ways(6));
        // Misses in B's leaders vote back toward A.
        let leader_b = (0..64).find(|&s| d.role(s) == SetRole::LeaderB).unwrap();
        for _ in 0..20 {
            d.record_miss(leader_b);
        }
        assert_eq!(d.partition_for(follower), Partition::counter_ways(2));
    }

    #[test]
    fn leaders_keep_their_partition_regardless_of_psel() {
        let mut d = DuelingController::new(
            32,
            8,
            1,
            Partition::counter_ways(1),
            Partition::counter_ways(7),
        );
        let leader_a = (0..32).find(|&s| d.role(s) == SetRole::LeaderA).unwrap();
        for _ in 0..100 {
            d.record_miss(leader_a);
        }
        assert_eq!(d.partition_for(leader_a), Partition::counter_ways(1));
    }

    #[test]
    fn selector_saturates() {
        let mut d = DuelingController::new(
            16,
            8,
            1,
            Partition::counter_ways(1),
            Partition::counter_ways(7),
        );
        let leader_a = (0..16).find(|&s| d.role(s) == SetRole::LeaderA).unwrap();
        for _ in 0..5000 {
            d.record_miss(leader_a);
        }
        assert_eq!(d.selector(), crate::PSEL_MAX);
        // Symmetric: B-leader misses saturate at the negative bound.
        let leader_b = (0..16).find(|&s| d.role(s) == SetRole::LeaderB).unwrap();
        for _ in 0..5000 {
            d.record_miss(leader_b);
        }
        assert_eq!(d.selector(), -crate::PSEL_MAX);
    }

    #[test]
    fn followers_use_partition_a_at_zero_selector() {
        // Pins the tie-break convention: psel == 0 (including the initial
        // state and any return to balance) resolves to partition A.
        let mut d = DuelingController::new(
            64,
            8,
            2,
            Partition::counter_ways(2),
            Partition::counter_ways(6),
        );
        let follower = (0..64).find(|&s| d.role(s) == SetRole::Follower).unwrap();
        assert_eq!(d.selector(), 0);
        assert_eq!(d.partition_for(follower), Partition::counter_ways(2));
        // One A-vote then one B-vote returns to exactly zero: still A.
        let leader_a = (0..64).find(|&s| d.role(s) == SetRole::LeaderA).unwrap();
        let leader_b = (0..64).find(|&s| d.role(s) == SetRole::LeaderB).unwrap();
        d.record_miss(leader_a);
        assert_eq!(d.partition_for(follower), Partition::counter_ways(6));
        d.record_miss(leader_b);
        assert_eq!(d.selector(), 0);
        assert_eq!(d.partition_for(follower), Partition::counter_ways(2));
    }
}
