//! The shared set-dueling policy selector (PSEL).
//!
//! Two users duel with a saturating counter: the way-partitioning
//! [`DuelingController`](crate::DuelingController) (partition A vs. B) and
//! DRRIP (SRRIP vs. BRRIP insertion). Both previously carried private
//! copies with the sign convention written down in neither place; this
//! type is the single definition.
//!
//! # Convention
//!
//! * The counter starts at 0 and saturates symmetrically at
//!   ±[`PSEL_MAX`].
//! * A miss in an **A-leader** set is a vote *against* A, moving the
//!   counter **up** (toward B). A miss in a **B-leader** moves it
//!   **down** (toward A).
//! * Followers choose B iff the counter is **strictly positive**
//!   ([`PselCounter::prefers_b`]); zero — including the initial state —
//!   ties **to A**. For DRRIP, "A" is SRRIP insertion and "B" is BRRIP,
//!   so a fresh cache duels from the SRRIP side.

/// Symmetric saturation bound (a 10-bit selector, as in Qureshi et al.'s
/// set-dueling papers and Jaleel et al.'s DRRIP).
pub const PSEL_MAX: i32 = 1024;

/// Saturating policy-selection counter; see the module docs for the sign
/// convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PselCounter {
    value: i32,
}

impl PselCounter {
    /// Starts balanced at zero (preferring A).
    pub const fn new() -> Self {
        Self { value: 0 }
    }

    /// A miss in an A-leader set: votes toward B.
    pub fn record_a_miss(&mut self) {
        self.value = (self.value + 1).min(PSEL_MAX);
    }

    /// A miss in a B-leader set: votes toward A.
    pub fn record_b_miss(&mut self) {
        self.value = (self.value - 1).max(-PSEL_MAX);
    }

    /// Whether followers should use policy/partition B right now
    /// (strictly positive counter; zero ties to A).
    pub fn prefers_b(&self) -> bool {
        self.value > 0
    }

    /// Raw counter value in `[-PSEL_MAX, PSEL_MAX]` (negative favours A).
    pub fn value(&self) -> i32 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_preferring_a() {
        let p = PselCounter::new();
        assert_eq!(p.value(), 0);
        assert!(!p.prefers_b());
    }

    #[test]
    fn tie_at_zero_resolves_to_a() {
        let mut p = PselCounter::new();
        // Walk away and back to exactly zero: still A.
        p.record_a_miss();
        assert!(p.prefers_b());
        p.record_b_miss();
        assert_eq!(p.value(), 0);
        assert!(!p.prefers_b());
    }

    #[test]
    fn saturates_symmetrically() {
        let mut p = PselCounter::new();
        for _ in 0..3 * PSEL_MAX {
            p.record_a_miss();
        }
        assert_eq!(p.value(), PSEL_MAX);
        for _ in 0..6 * PSEL_MAX {
            p.record_b_miss();
        }
        assert_eq!(p.value(), -PSEL_MAX);
    }

    #[test]
    fn preference_flips_exactly_at_one() {
        let mut p = PselCounter::new();
        p.record_a_miss();
        assert_eq!(p.value(), 1);
        assert!(p.prefers_b());
        p.record_b_miss();
        assert!(!p.prefers_b());
        p.record_b_miss();
        assert_eq!(p.value(), -1);
        assert!(!p.prefers_b());
    }
}
