//! Offline optimal replacement: Belady's MIN and the Jeong–Dubois
//! cost-sensitive optimal (CSOPT) search.
//!
//! Section V-B of the paper evaluates CSOPT — a breadth-first search over
//! all eviction choices with cost-based pruning — to find cost-aware
//! optimal replacement for a fixed trace, and reports that it is
//! prohibitively expensive for memory-intensive workloads (minutes to days
//! per trace). This module implements the search with the same dominance
//! pruning (identical cache states keep only the cheapest path) plus an
//! optional beam width for tractable approximation, and a uniform-cost
//! Belady reference for validation.

use maps_trace::det::DetHashMap;

/// One access in a costed trace: the block key and the cost incurred if
/// this access misses.
///
/// Costs are expressed in abstract units (e.g. number of DRAM transfers);
/// for metadata traces the cost of a counter miss depends on how much of
/// the tree must be walked, which the trace producer bakes into each
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostedAccess {
    /// Block key.
    pub key: u64,
    /// Cost charged when this access misses.
    pub miss_cost: u64,
}

impl CostedAccess {
    /// Creates a costed access.
    pub const fn new(key: u64, miss_cost: u64) -> Self {
        Self { key, miss_cost }
    }

    /// Uniform-cost convenience constructor.
    pub const fn unit(key: u64) -> Self {
        Self { key, miss_cost: 1 }
    }
}

/// Result of a CSOPT search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsoptOutcome {
    /// Minimum total miss cost over the trace.
    pub min_cost: u64,
    /// Number of misses along the cheapest path.
    pub misses: u64,
    /// Peak number of simultaneously-tracked states (search effort).
    pub peak_states: usize,
    /// Whether the beam width truncated the search (result may be
    /// suboptimal when `true`).
    pub truncated: bool,
}

/// Exact misses for Belady's MIN on a fully-associative cache of
/// `capacity` blocks over a fixed, uniform-cost trace.
///
/// Used as the validation reference: with uniform costs, CSOPT and MIN
/// must agree.
///
/// # Examples
///
/// ```
/// use maps_cache::belady_misses;
/// let trace = [1u64, 2, 3, 1, 2, 3];
/// assert_eq!(belady_misses(&trace, 2), 4);
/// ```
pub fn belady_misses(trace: &[u64], capacity: usize) -> u64 {
    assert!(capacity > 0, "capacity must be positive");
    // Precompute next-use indices.
    let mut next_use = vec![usize::MAX; trace.len()];
    let mut last_pos: DetHashMap<u64, usize> = DetHashMap::default();
    for (i, &k) in trace.iter().enumerate() {
        if let Some(&p) = last_pos.get(&k) {
            next_use[p] = i;
        }
        last_pos.insert(k, i);
    }
    let mut cache: Vec<(u64, usize)> = Vec::with_capacity(capacity); // (key, next_use)
    let mut misses = 0;
    for (i, &k) in trace.iter().enumerate() {
        if let Some(pos) = cache.iter().position(|&(ck, _)| ck == k) {
            cache[pos].1 = next_use[i];
            continue;
        }
        misses += 1;
        if cache.len() < capacity {
            cache.push((k, next_use[i]));
        } else {
            let victim = cache
                .iter()
                .enumerate()
                .max_by_key(|(_, &(_, nu))| nu)
                .map(|(idx, _)| idx)
                .expect("cache is non-empty");
            cache[victim] = (k, next_use[i]);
        }
    }
    misses
}

/// Cost-sensitive optimal replacement for a fully-associative cache of
/// `capacity` blocks over a fixed trace with per-access miss costs.
///
/// The search explores every eviction decision breadth-first, one trace
/// position at a time, merging paths that reach the same cache state and
/// keeping the cheaper (the paper's "eliminating the ones that have higher
/// costs to reach the same state"). `beam` bounds the number of surviving
/// states per step: `None` for the exact search, `Some(k)` to keep only
/// the `k` cheapest (a tractable approximation for long traces; the
/// outcome reports `truncated = true` if the bound ever bit).
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn csopt_min_cost(
    trace: &[CostedAccess],
    capacity: usize,
    beam: Option<usize>,
) -> CsoptOutcome {
    assert!(capacity > 0, "capacity must be positive");
    // State: sorted vector of resident keys -> (cost, misses).
    let mut states: DetHashMap<Vec<u64>, (u64, u64)> = DetHashMap::default();
    states.insert(Vec::new(), (0, 0));
    let mut peak = 1usize;
    let mut truncated = false;

    for access in trace {
        let mut next: DetHashMap<Vec<u64>, (u64, u64)> =
            DetHashMap::with_capacity_and_hasher(states.len() * 2, Default::default());
        let consider =
            |state: Vec<u64>, cost: (u64, u64), map: &mut DetHashMap<Vec<u64>, (u64, u64)>| {
                map.entry(state)
                    .and_modify(|c| {
                        if cost.0 < c.0 {
                            *c = cost;
                        }
                    })
                    .or_insert(cost);
            };
        for (state, (cost, misses)) in &states {
            if state.binary_search(&access.key).is_ok() {
                // Hit: state unchanged.
                consider(state.clone(), (*cost, *misses), &mut next);
                continue;
            }
            let new_cost = (cost + access.miss_cost, misses + 1);
            if state.len() < capacity {
                let mut s = state.clone();
                let pos = s.binary_search(&access.key).unwrap_err();
                s.insert(pos, access.key);
                consider(s, new_cost, &mut next);
            } else {
                for victim_idx in 0..state.len() {
                    let mut s = state.clone();
                    s.remove(victim_idx);
                    let pos = s.binary_search(&access.key).unwrap_err();
                    s.insert(pos, access.key);
                    consider(s, new_cost, &mut next);
                }
            }
        }
        if let Some(width) = beam {
            if next.len() > width {
                truncated = true;
                let mut entries: Vec<_> = next.into_iter().collect();
                // Total order (cost, then state): equal-cost survivors must
                // not depend on map iteration order or the truncation would
                // be nondeterministic across processes.
                entries.sort_by(|(sa, (ca, _)), (sb, (cb, _))| ca.cmp(cb).then_with(|| sa.cmp(sb)));
                entries.truncate(width);
                next = entries.into_iter().collect();
            }
        }
        peak = peak.max(next.len());
        states = next;
    }

    // Tie-break equal-cost terminal states by (misses, state) for a
    // process-independent answer.
    let (min_cost, misses) = states
        .iter()
        .min_by(|(sa, (ca, ma)), (sb, (cb, mb))| (ca, ma, *sa).cmp(&(cb, mb, *sb)))
        .map(|(_, &(c, m))| (c, m))
        .expect("at least one state survives");
    CsoptOutcome {
        min_cost,
        misses,
        peak_states: peak,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn belady_on_cyclic_scan() {
        // 0 1 2 0 1 2 ... with capacity 2: Belady misses 0,1,2 cold then
        // keeps one of the loop resident.
        let trace: Vec<u64> = (0..12).map(|i| i % 3).collect();
        // Optimal: 3 cold misses, then 2 misses per 3-access lap (hits at
        // positions 3, 5, 7, 9, 11) — 7 misses over 12 accesses.
        assert_eq!(belady_misses(&trace, 2), 7);
    }

    #[test]
    fn belady_with_enough_capacity_only_cold_misses() {
        let trace: Vec<u64> = (0..30).map(|i| i % 5).collect();
        assert_eq!(belady_misses(&trace, 5), 5);
    }

    #[test]
    fn csopt_uniform_matches_belady() {
        let traces: Vec<Vec<u64>> = vec![
            (0..12).map(|i| i % 3).collect(),
            vec![1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5],
            (0..20).map(|i| (i * 7) % 6).collect(),
        ];
        for trace in traces {
            let costed: Vec<_> = trace.iter().map(|&k| CostedAccess::unit(k)).collect();
            for cap in 1..=3 {
                let csopt = csopt_min_cost(&costed, cap, None);
                let belady = belady_misses(&trace, cap);
                assert_eq!(csopt.min_cost, belady, "capacity {cap}, trace {trace:?}");
                assert!(!csopt.truncated);
            }
        }
    }

    #[test]
    fn csopt_prefers_keeping_expensive_blocks() {
        // Block 9 costs 10 per miss, blocks 1..=2 cost 1. Capacity 2.
        // Trace: 9 1 2 9 1 2 9 — cost-aware optimum keeps 9 resident and
        // pays cheap misses; Belady-by-distance treats all equally.
        let trace = [
            CostedAccess::new(9, 10),
            CostedAccess::new(1, 1),
            CostedAccess::new(2, 1),
            CostedAccess::new(9, 10),
            CostedAccess::new(1, 1),
            CostedAccess::new(2, 1),
            CostedAccess::new(9, 10),
        ];
        let out = csopt_min_cost(&trace, 2, None);
        // Cold: 9 (10) + 1 (1) + 2 (1) = 12; then keeping 9 pinned costs
        // one cheap miss per lap: +1 (1 or 2) +1 = 14.
        assert_eq!(out.min_cost, 14);
        // A cost-blind Belady could evict 9 and pay 10 twice more.
        let keys: Vec<u64> = trace.iter().map(|a| a.key).collect();
        assert!(belady_misses(&keys, 2) <= out.misses + 1);
    }

    #[test]
    fn beam_truncation_reports_itself() {
        let trace: Vec<CostedAccess> = (0..16).map(|i| CostedAccess::unit(i % 7)).collect();
        let exact = csopt_min_cost(&trace, 3, None);
        let beamed = csopt_min_cost(&trace, 3, Some(2));
        assert!(beamed.min_cost >= exact.min_cost);
        assert!(beamed.peak_states <= 2 * 3 + 1);
    }

    #[test]
    fn peak_states_grow_with_associativity() {
        let trace: Vec<CostedAccess> = (0..14).map(|i| CostedAccess::unit((i * 5) % 9)).collect();
        let small = csopt_min_cost(&trace, 2, None);
        let large = csopt_min_cost(&trace, 4, None);
        assert!(large.peak_states >= small.peak_states);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        csopt_min_cost(&[CostedAccess::unit(1)], 0, None);
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let out = csopt_min_cost(&[], 2, None);
        assert_eq!(out.min_cost, 0);
        assert_eq!(out.misses, 0);
    }
}
