//! Per-kind cache statistics.

use std::fmt;

use maps_trace::BlockKind;

/// Hit/miss/eviction counters for one block classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines of this kind evicted.
    pub evictions: u64,
    /// Dirty lines of this kind evicted (writebacks).
    pub writebacks: u64,
}

impl KindStats {
    /// Miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Statistics for a whole cache, bucketed into data / counter / hash / tree.
///
/// # Examples
///
/// ```
/// use maps_cache::CacheStats;
/// use maps_trace::BlockKind;
/// let mut s = CacheStats::default();
/// s.record_access(BlockKind::Counter, true);
/// s.record_access(BlockKind::Counter, false);
/// assert_eq!(s.kind(BlockKind::Counter).hits, 1);
/// assert_eq!(s.total().misses, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    buckets: [KindStats; 4],
}

impl CacheStats {
    fn bucket_index(kind: BlockKind) -> usize {
        match kind {
            BlockKind::Data => 0,
            BlockKind::Counter => 1,
            BlockKind::Hash => 2,
            BlockKind::Tree(_) => 3,
        }
    }

    /// Records an access outcome for a kind.
    pub fn record_access(&mut self, kind: BlockKind, hit: bool) {
        let b = &mut self.buckets[Self::bucket_index(kind)];
        b.accesses += 1;
        if hit {
            b.hits += 1;
        } else {
            b.misses += 1;
        }
    }

    /// Records an eviction of a line of `kind`; `dirty` counts a writeback.
    pub fn record_eviction(&mut self, kind: BlockKind, dirty: bool) {
        let b = &mut self.buckets[Self::bucket_index(kind)];
        b.evictions += 1;
        if dirty {
            b.writebacks += 1;
        }
    }

    /// Counters for one kind (tree levels merged).
    pub fn kind(&self, kind: BlockKind) -> KindStats {
        self.buckets[Self::bucket_index(kind)]
    }

    /// Sum over all kinds.
    pub fn total(&self) -> KindStats {
        let mut t = KindStats::default();
        for b in &self.buckets {
            t.accesses += b.accesses;
            t.hits += b.hits;
            t.misses += b.misses;
            t.evictions += b.evictions;
            t.writebacks += b.writebacks;
        }
        t
    }

    /// Sum over the three metadata kinds (excludes data).
    pub fn metadata_total(&self) -> KindStats {
        let mut t = KindStats::default();
        for b in &self.buckets[1..] {
            t.accesses += b.accesses;
            t.hits += b.hits;
            t.misses += b.misses;
            t.evictions += b.evictions;
            t.writebacks += b.writebacks;
        }
        t
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The raw buckets in `data, counter, hash, tree` order. Exists for
    /// serialization (the sweep checkpoint codec); normal consumers go
    /// through [`CacheStats::kind`] and the totals.
    pub fn buckets(&self) -> &[KindStats; 4] {
        &self.buckets
    }

    /// Rebuilds stats from raw buckets in `data, counter, hash, tree`
    /// order — the inverse of [`CacheStats::buckets`].
    pub fn from_buckets(buckets: [KindStats; 4]) -> Self {
        CacheStats { buckets }
    }

    /// Element-wise difference `self - earlier`. The per-tenant
    /// accounting layer snapshots a cache's stats before an access and
    /// attributes the after-minus-before delta to the requesting tenant,
    /// so Σ per-tenant counters equals the global counters by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if any counter in `earlier` exceeds the
    /// corresponding counter in `self`; counters are monotonic, so that
    /// means the snapshot came from a different cache.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        let mut out = CacheStats::default();
        for (o, (now, was)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            debug_assert!(
                now.accesses >= was.accesses && now.evictions >= was.evictions,
                "stats snapshot is not a prefix of the current stats"
            );
            o.accesses = now.accesses.saturating_sub(was.accesses);
            o.hits = now.hits.saturating_sub(was.hits);
            o.misses = now.misses.saturating_sub(was.misses);
            o.evictions = now.evictions.saturating_sub(was.evictions);
            o.writebacks = now.writebacks.saturating_sub(was.writebacks);
        }
        out
    }

    /// Element-wise accumulation of `other` into `self`.
    pub fn accumulate(&mut self, other: &CacheStats) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            b.accesses += o.accesses;
            b.hits += o.hits;
            b.misses += o.misses;
            b.evictions += o.evictions;
            b.writebacks += o.writebacks;
        }
    }

    /// Exports every bucket into `sink` under
    /// `{prefix}.{data|counter|hash|tree}.{accesses,hits,misses,evictions,
    /// writebacks}`. Pull-based: called once at snapshot time, so the
    /// per-access hot path carries no metrics cost.
    pub fn export<S: maps_obs::MetricSink>(&self, prefix: &str, sink: &mut S) {
        const KIND_NAMES: [&str; 4] = ["data", "counter", "hash", "tree"];
        for (name, b) in KIND_NAMES.iter().zip(&self.buckets) {
            for (field, value) in [
                ("accesses", b.accesses),
                ("hits", b.hits),
                ("misses", b.misses),
                ("evictions", b.evictions),
                ("writebacks", b.writebacks),
            ] {
                if value != 0 {
                    sink.counter_add(&format!("{prefix}.{name}.{field}"), value);
                }
            }
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "accesses={} hits={} misses={} (miss ratio {:.3})",
            t.accesses,
            t.hits,
            t.misses,
            t.miss_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_independent() {
        let mut s = CacheStats::default();
        s.record_access(BlockKind::Data, true);
        s.record_access(BlockKind::Tree(0), false);
        s.record_access(BlockKind::Tree(3), false);
        assert_eq!(s.kind(BlockKind::Data).hits, 1);
        assert_eq!(s.kind(BlockKind::Tree(1)).misses, 2);
        assert_eq!(s.metadata_total().misses, 2);
        assert_eq!(s.total().accesses, 3);
    }

    #[test]
    fn eviction_counts() {
        let mut s = CacheStats::default();
        s.record_eviction(BlockKind::Hash, true);
        s.record_eviction(BlockKind::Hash, false);
        let h = s.kind(BlockKind::Hash);
        assert_eq!(h.evictions, 2);
        assert_eq!(h.writebacks, 1);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(KindStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats::default();
        s.record_access(BlockKind::Data, false);
        s.reset();
        assert_eq!(s.total().accesses, 0);
    }

    #[test]
    fn export_emits_nonzero_buckets_only() {
        let mut s = CacheStats::default();
        s.record_access(BlockKind::Counter, true);
        s.record_access(BlockKind::Counter, false);
        s.record_eviction(BlockKind::Tree(2), true);
        let mut m = maps_obs::Metrics::new();
        s.export("mdc", &mut m);
        assert_eq!(m.counter_value("mdc.counter.accesses"), 2);
        assert_eq!(m.counter_value("mdc.counter.hits"), 1);
        assert_eq!(m.counter_value("mdc.tree.writebacks"), 1);
        // Untouched kinds produce no keys at all.
        assert!(m.counters().all(|(k, _)| !k.starts_with("mdc.hash")));
    }
}
