//! A fully-associative randomized metadata cache in the MIRAGE style.
//!
//! [`RandomizedCache`] decouples *where a tag lives* from *where the data
//! lives*, following MIRAGE (Saileshwar & Qureshi, USENIX Security '21)
//! as revisited by the debate pair in `PAPERS.md` (arXiv 2303.15673,
//! arXiv 2508.10431):
//!
//! * The **tag store** has two skews, each a power-of-two array of sets
//!   indexed by a *keyed* hash of the block key ([`keyed_index`]) with a
//!   per-skew secret seed. Tag capacity is provisioned at ~2x the data
//!   capacity so that set-conflict (tag) evictions are vanishingly rare
//!   and installs follow the power-of-two-choices rule: the incoming
//!   line goes to whichever skew's candidate set has more empty slots.
//! * The **data store** is one flat pool of frames with a free list.
//!   When no frame is free the victim is chosen *globally at random*
//!   (every resident line equally likely), which removes the set-conflict
//!   eviction channel that set-associative caches leak through.
//!
//! Replacement-policy state, kind-based way partitions, and set dueling
//! are structurally meaningless here — there are no ways to partition
//! and eviction is global-random by design — so the surrounding
//! [`MetadataCache`](../maps_sim) treats policy and partition knobs as
//! no-ops under this backend. Multi-tenant isolation instead uses a
//! *frame quota*: a tenant at its quota evicts one of its own frames
//! (chosen uniformly) before installing, so one tenant's footprint
//! cannot displace another's beyond the rare tag-conflict case.
//!
//! Determinism: all randomness comes from one [`SmallRng`] seeded from
//! the design seed, and every install draws at most once, in a fixed
//! decision order (tag conflict → quota eviction → global eviction).
//! The executable specification in `maps-oracle` re-implements the same
//! decision procedure over naive storage and must draw identically; the
//! differential tests hold the two bit-equal.

use maps_trace::rng::{SmallRng, SplitMix64};
use maps_trace::{BlockKind, BLOCK_BYTES};

use crate::cache::AccessResult;
use crate::line::LineMeta;
use crate::{CacheStats, Line};

/// Number of tag-store skews (MIRAGE uses two).
pub const SKEWS: usize = 2;

/// Tag value marking an empty slot/frame (block keys are region-local
/// indices, so `u64::MAX` can never collide with a real key).
const EMPTY_TAG: u64 = u64::MAX;

/// Keyed tag-to-set index: a SplitMix64-finalizer hash of `key` under
/// `seed`, reduced to `sets` (a power of two). Full 64-bit avalanche, so
/// set indices are unpredictable to a tenant that does not know the
/// seed — the property the MIRAGE tag store relies on. Exported so the
/// oracle's specification mirror indexes identically.
#[inline]
#[must_use]
pub fn keyed_index(seed: u64, key: u64, sets: usize) -> usize {
    debug_assert!(sets.is_power_of_two());
    let mut z = key.wrapping_add(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as usize) & (sets - 1)
}

/// The derived per-instance keys: two skew seeds and the eviction-RNG
/// seed, all drawn from one SplitMix64 stream over the design seed.
/// Exported so the oracle mirror derives the identical keys.
#[must_use]
pub fn derive_keys(seed: u64) -> ([u64; SKEWS], u64) {
    let mut sm = SplitMix64::new(seed);
    ([sm.next_u64(), sm.next_u64()], sm.next_u64())
}

/// A fully-associative randomized cache over block keys, interface-
/// compatible with [`SetAssocCache`](crate::SetAssocCache) at the call
/// sites the metadata cache uses (access / probe / placeholder / partial
/// writes / invalidate / drain / occupancy).
#[derive(Debug, Clone)]
pub struct RandomizedCache {
    size_bytes: u64,
    ways: usize,
    /// Sets per skew (power of two).
    sets: usize,
    /// Data-store capacity in frames.
    capacity: usize,
    seeds: [u64; SKEWS],
    rng: SmallRng,
    /// Tag store, `SKEWS * sets * ways` slots: resident key (or
    /// [`EMPTY_TAG`]) and the frame it points to.
    tag_keys: Vec<u64>,
    tag_frames: Vec<u32>,
    /// Data store, struct-of-arrays like the set-associative core:
    /// per-frame key (EMPTY_TAG when free), timestamps, line meta, the
    /// back-pointer to the frame's tag slot, and the owning tenant.
    fkeys: Vec<u64>,
    fstamps: Vec<u64>,
    finserts: Vec<u64>,
    fmeta: Vec<LineMeta>,
    fslot: Vec<u32>,
    fowner: Vec<u8>,
    /// Free-frame stack; initialized reversed so pops hand out frames in
    /// ascending order.
    free: Vec<u32>,
    /// Per-tenant frame quota (None: unpartitioned).
    quota: Option<usize>,
    /// Live frames per tenant (grown on demand).
    counts: Vec<u64>,
    stats: CacheStats,
    time: u64,
}

impl RandomizedCache {
    /// Creates a randomized cache holding `size_bytes / 64` frames, with
    /// a tag store of two skews of `ways`-slot sets provisioned at >= 2x
    /// the frame count. `seed` keys the skew hashes and the eviction RNG.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of `ways * 64`
    /// (same geometry contract as
    /// [`CacheConfig::from_bytes`](crate::CacheConfig::from_bytes)).
    pub fn new(size_bytes: u64, ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert_eq!(
            size_bytes % (ways as u64 * BLOCK_BYTES),
            0,
            "capacity {size_bytes} is not a multiple of ways*block ({ways}*{BLOCK_BYTES})"
        );
        let capacity = (size_bytes / BLOCK_BYTES) as usize;
        assert!(capacity > 0, "cache must have at least one frame");
        let sets = capacity.div_ceil(ways).next_power_of_two();
        let (seeds, rng_seed) = derive_keys(seed);
        let slots = SKEWS * sets * ways;
        Self {
            size_bytes,
            ways,
            sets,
            capacity,
            seeds,
            rng: SmallRng::seed_from_u64(rng_seed),
            tag_keys: vec![EMPTY_TAG; slots],
            tag_frames: vec![0; slots],
            fkeys: vec![EMPTY_TAG; capacity],
            fstamps: vec![0; capacity],
            finserts: vec![0; capacity],
            fmeta: vec![LineMeta::EMPTY; capacity],
            fslot: vec![0; capacity],
            fowner: vec![0; capacity],
            free: (0..capacity as u32).rev().collect(),
            quota: None,
            counts: Vec::new(),
            stats: CacheStats::default(),
            time: 0,
        }
    }

    /// Installs a per-tenant frame quota of `capacity / tenants` frames
    /// (minimum one): a tenant at its quota evicts one of its own frames
    /// before installing. `None`-equivalent: pass through
    /// [`RandomizedCache::clear_tenant_quota`].
    pub fn set_tenant_quota(&mut self, tenants: usize) {
        assert!(tenants >= 1, "tenant count must be positive");
        self.quota = Some((self.capacity / tenants).max(1));
    }

    /// Removes the per-tenant frame quota.
    pub fn clear_tenant_quota(&mut self) {
        self.quota = None;
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Data-store capacity in frames.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tag-store geometry `(skews, sets, ways)`.
    pub const fn tag_geometry(&self) -> (usize, usize, usize) {
        (SKEWS, self.sets, self.ways)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of accesses performed (the time base for line ages).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Live frames owned by `tenant`.
    pub fn tenant_occupancy(&self, tenant: u8) -> u64 {
        self.counts.get(tenant as usize).copied().unwrap_or(0)
    }

    /// Returns `true` if `key` is resident (no state change).
    pub fn contains(&self, key: u64) -> bool {
        self.locate(key).is_some()
    }

    /// The resident line for `key`, if any (no state change).
    pub fn line(&self, key: u64) -> Option<Line> {
        let (_, frame) = self.locate(key)?;
        Some(self.line_at(frame))
    }

    /// Iterates over resident lines in frame order (the deterministic
    /// drain/writeback order).
    pub fn resident_lines(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.capacity)
            .filter(|&f| self.fkeys[f] != EMPTY_TAG)
            .map(|f| self.line_at(f))
    }

    /// The owning tenant of `key`'s frame, if resident.
    pub fn owner_of(&self, key: u64) -> Option<u8> {
        let (_, frame) = self.locate(key)?;
        Some(self.fowner[frame])
    }

    /// Accesses `key` as `tenant`, allocating on miss.
    pub fn access(&mut self, key: u64, kind: BlockKind, write: bool, tenant: u8) -> AccessResult {
        let t = self.time;
        self.time += 1;
        if let Some((_, frame)) = self.locate(key) {
            self.fstamps[frame] = t;
            if write {
                self.fmeta[frame].dirty = true;
            }
            self.stats.record_access(kind, true);
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.stats.record_access(kind, false);
        let mut new_line = Line::filled(key, kind, t);
        new_line.dirty = write;
        let evicted = self.install(new_line, tenant);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Probes without allocating: records a hit/miss but never fills or
    /// refreshes recency (same contract as the set-associative probe).
    pub fn probe(&mut self, key: u64, kind: BlockKind) -> bool {
        let hit = self.locate(key).is_some();
        self.stats.record_access(kind, hit);
        hit
    }

    /// Inserts a partial-write placeholder holding only sub-entry
    /// `slot`. Misses only; the caller must have established
    /// non-residency.
    ///
    /// Debug builds panic if `key` is already resident or `slot >= 8`.
    pub fn insert_placeholder(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        tenant: u8,
    ) -> Option<Line> {
        debug_assert!(
            self.locate(key).is_none(),
            "placeholder insert for resident key {key}"
        );
        let t = self.time;
        self.install(Line::placeholder(key, kind, t, slot), tenant)
    }

    /// Fused write-hit + mark-valid (the partial-write hit path); returns
    /// the updated mask, or `None` (no state change) when `key` is not
    /// resident.
    ///
    /// Debug builds panic if `slot >= 8`.
    pub fn access_mark_valid(&mut self, key: u64, kind: BlockKind, slot: u8) -> Option<u8> {
        debug_assert!(slot < 8, "sub-block slot {slot} out of range");
        let (_, frame) = self.locate(key)?;
        let t = self.time;
        self.time += 1;
        self.fstamps[frame] = t;
        self.fmeta[frame].dirty = true;
        self.stats.record_access(kind, true);
        self.fmeta[frame].valid_mask |= 1 << slot;
        Some(self.fmeta[frame].valid_mask)
    }

    /// Marks an additional valid sub-entry on a resident line; returns
    /// the updated mask, or `None` if not resident.
    pub fn mark_valid(&mut self, key: u64, slot: u8) -> Option<u8> {
        debug_assert!(slot < 8, "sub-block slot {slot} out of range");
        let (_, frame) = self.locate(key)?;
        let m = &mut self.fmeta[frame];
        m.valid_mask |= 1 << slot;
        m.dirty = true;
        Some(m.valid_mask)
    }

    /// Removes `key` if resident, returning the line.
    pub fn invalidate(&mut self, key: u64) -> Option<Line> {
        let (_, frame) = self.locate(key)?;
        Some(self.evict_frame(frame))
    }

    /// Drains every resident line in frame order (e.g. to account for
    /// final writebacks), resetting the free list to its initial order.
    pub fn drain(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for f in 0..self.capacity {
            if self.fkeys[f] != EMPTY_TAG {
                out.push(self.line_at(f));
                self.tag_keys[self.fslot[f] as usize] = EMPTY_TAG;
                self.fkeys[f] = EMPTY_TAG;
            }
        }
        self.free = (0..self.capacity as u32).rev().collect();
        self.counts.clear();
        out
    }

    /// Materializes the line in `frame` (caller has established the
    /// frame is occupied).
    #[inline]
    fn line_at(&self, frame: usize) -> Line {
        debug_assert_ne!(self.fkeys[frame], EMPTY_TAG, "line_at on a free frame");
        let m = self.fmeta[frame];
        Line {
            key: self.fkeys[frame],
            kind: m.kind,
            dirty: m.dirty,
            valid_mask: m.valid_mask,
            insert_at: self.finserts[frame],
            last_at: self.fstamps[frame],
        }
    }

    /// Finds `key`'s tag slot and frame, scanning skew 0 then skew 1.
    #[inline]
    fn locate(&self, key: u64) -> Option<(usize, usize)> {
        for skew in 0..SKEWS {
            let set = keyed_index(self.seeds[skew], key, self.sets);
            let base = (skew * self.sets + set) * self.ways;
            for slot in base..base + self.ways {
                if self.tag_keys[slot] == key {
                    return Some((slot, self.tag_frames[slot] as usize));
                }
            }
        }
        None
    }

    /// Frees `frame`: clears its tag slot, returns the line, pushes the
    /// frame onto the free stack, and releases the owner's quota count.
    fn evict_frame(&mut self, frame: usize) -> Line {
        let line = self.line_at(frame);
        self.tag_keys[self.fslot[frame] as usize] = EMPTY_TAG;
        self.fkeys[frame] = EMPTY_TAG;
        let owner = self.fowner[frame] as usize;
        if let Some(c) = self.counts.get_mut(owner) {
            *c = c.saturating_sub(1);
        }
        self.free.push(frame as u32);
        line
    }

    /// The install decision procedure. At most one victim per install,
    /// and at most one RNG draw, in a fixed order the oracle mirror
    /// reproduces exactly:
    ///
    /// 1. *Tag slot.* Count empty slots in the two candidate sets. Both
    ///    zero is a tag conflict: one draw over the `2 * ways` candidate
    ///    slots (skew 0's set then skew 1's) picks the victim slot, whose
    ///    frame is freed. Otherwise the skew with more empty slots wins
    ///    (tie -> skew 0) and the first empty slot is used.
    /// 2. *Frame.* If no victim yet: a tenant at its quota evicts one of
    ///    its own frames (one draw over its live frames in frame order);
    ///    else if the free list is empty, global random eviction (one
    ///    draw over all frames). The freed frame is the top of the free
    ///    stack either way.
    ///
    /// Tag conflicts bypass the tenant quota (the victim may belong to
    /// another tenant); with ~2x tag provisioning they are rare enough
    /// that the quota drift is negligible, mirroring MIRAGE's security
    /// argument for set-conflict evictions.
    fn install(&mut self, new_line: Line, tenant: u8) -> Option<Line> {
        debug_assert_ne!(
            new_line.key, EMPTY_TAG,
            "key collides with the empty-frame sentinel"
        );
        let mut victim = None;

        let mut bases = [0usize; SKEWS];
        let mut empties = [0usize; SKEWS];
        let mut first_empty = [usize::MAX; SKEWS];
        for skew in 0..SKEWS {
            let set = keyed_index(self.seeds[skew], new_line.key, self.sets);
            let base = (skew * self.sets + set) * self.ways;
            bases[skew] = base;
            for w in 0..self.ways {
                if self.tag_keys[base + w] == EMPTY_TAG {
                    empties[skew] += 1;
                    if first_empty[skew] == usize::MAX {
                        first_empty[skew] = base + w;
                    }
                }
            }
        }
        let [empties_left, empties_right] = empties;
        let [first_left, first_right] = first_empty;
        let slot = if empties_left == 0 && empties_right == 0 {
            let r = self.rng.gen_range(0..SKEWS * self.ways);
            let s = bases[r / self.ways] + (r % self.ways);
            victim = Some(self.evict_frame(self.tag_frames[s] as usize));
            s
        } else if empties_right > empties_left {
            first_right
        } else {
            first_left
        };

        if victim.is_none() {
            let over_quota = self
                .quota
                .is_some_and(|q| self.tenant_occupancy(tenant) >= q as u64);
            if over_quota {
                victim = Some(self.evict_own_frame(tenant));
            } else if self.free.is_empty() {
                let f = self.rng.gen_range(0..self.capacity);
                victim = Some(self.evict_frame(f));
            }
        }

        let Some(frame) = self.free.pop().map(|f| f as usize) else {
            // Unreachable by construction: every eviction above pushes a
            // frame, and capacity > 0.
            debug_assert!(false, "free list empty after eviction");
            return victim;
        };
        self.fkeys[frame] = new_line.key;
        self.fstamps[frame] = new_line.last_at;
        self.finserts[frame] = new_line.insert_at;
        self.fmeta[frame] = LineMeta::of(&new_line);
        self.fslot[frame] = slot as u32;
        self.fowner[frame] = tenant;
        let t = tenant as usize;
        if t >= self.counts.len() {
            self.counts.resize(t + 1, 0);
        }
        self.counts[t] += 1;
        self.tag_keys[slot] = new_line.key;
        self.tag_frames[slot] = frame as u32;
        if let Some(v) = &victim {
            self.stats.record_eviction(v.kind, v.dirty);
        }
        victim
    }

    /// Evicts a uniformly random live frame owned by `tenant` (the
    /// quota-enforcement path). One draw over the tenant's live-frame
    /// count; the r-th owned frame in frame order is the victim.
    fn evict_own_frame(&mut self, tenant: u8) -> Line {
        let count = self.tenant_occupancy(tenant);
        debug_assert!(count > 0, "quota eviction for a tenant with no frames");
        let r = self.rng.gen_range(0..count.max(1));
        let mut seen = 0u64;
        let mut chosen = None;
        for f in 0..self.capacity {
            if self.fkeys[f] != EMPTY_TAG && self.fowner[f] == tenant {
                chosen = Some(f);
                if seen == r {
                    break;
                }
                seen += 1;
            }
        }
        // counts[] tracks exactly the live frames per owner, so the scan
        // always lands on the r-th owned frame; a desynced ledger is
        // debug-checked and falls back to frame 0 instead of aborting.
        debug_assert!(chosen.is_some(), "tenant occupancy ledger out of sync");
        self.evict_frame(chosen.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(frames: usize) -> RandomizedCache {
        RandomizedCache::new(frames as u64 * 64, 8, 0xC0FFEE)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = cache(64);
        let r = c.access(7, BlockKind::Counter, true, 0);
        assert!(!r.hit && r.evicted.is_none());
        let r = c.access(7, BlockKind::Counter, false, 0);
        assert!(r.hit);
        let s = c.stats().kind(BlockKind::Counter);
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(c.line(7).unwrap().dirty);
    }

    #[test]
    fn occupancy_is_capped_and_evictions_are_global() {
        let mut c = cache(64);
        let mut evicted = 0;
        for k in 0..1000u64 {
            if c.access(k, BlockKind::Data, false, 0).evicted.is_some() {
                evicted += 1;
            }
        }
        assert_eq!(c.occupancy(), 64);
        assert_eq!(evicted, 1000 - 64);
        assert_eq!(c.stats().total().evictions, 1000 - 64);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut c = cache(32);
            let mut log = Vec::new();
            for k in 0..500u64 {
                let r = c.access(k % 70, BlockKind::Counter, k % 3 == 0, (k % 2) as u8);
                log.push((r.hit, r.evicted.map(|l| l.key)));
            }
            (log, c.drain())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = RandomizedCache::new(64 * 64, 8, 1);
        let mut b = RandomizedCache::new(64 * 64, 8, 2);
        let mut diverged = false;
        for k in 0..200u64 {
            let ra = a.access(k % 90, BlockKind::Data, false, 0);
            let rb = b.access(k % 90, BlockKind::Data, false, 0);
            if ra.evicted.map(|l| l.key) != rb.evicted.map(|l| l.key) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds must key the layout");
    }

    #[test]
    fn tenant_quota_confines_footprints() {
        let mut c = cache(64);
        c.set_tenant_quota(2); // 32 frames each
        for k in 0..500u64 {
            c.access(k, BlockKind::Data, false, 0);
        }
        assert_eq!(c.tenant_occupancy(0), 32);
        // Tenant 1 still gets its full share: tenant 0 cannot displace it.
        for k in 10_000..10_500u64 {
            c.access(k, BlockKind::Data, false, 1);
        }
        assert_eq!(c.tenant_occupancy(0), 32);
        assert_eq!(c.tenant_occupancy(1), 32);
    }

    #[test]
    fn placeholders_and_partial_writes_match_set_assoc_contract() {
        let mut c = cache(16);
        assert!(c.insert_placeholder(3, BlockKind::Hash, 2, 0).is_none());
        assert!(c.contains(3));
        assert_eq!(c.mark_valid(3, 5), Some(0b0010_0100));
        assert_eq!(
            c.access_mark_valid(3, BlockKind::Hash, 0),
            Some(0b0010_0101)
        );
        assert_eq!(c.mark_valid(99, 0), None);
        assert_eq!(c.access_mark_valid(99, BlockKind::Hash, 0), None);
        let inv = c.invalidate(3).unwrap();
        assert!(inv.dirty && !inv.is_complete());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "resident key")]
    fn placeholder_for_resident_key_panics() {
        let mut c = cache(16);
        c.access(3, BlockKind::Hash, false, 0);
        c.insert_placeholder(3, BlockKind::Hash, 0, 0);
    }

    #[test]
    fn drain_returns_frame_order_and_resets() {
        let mut c = cache(16);
        for k in [5u64, 9, 1] {
            c.access(k, BlockKind::Counter, true, 0);
        }
        let drained = c.drain();
        assert_eq!(drained.len(), 3);
        // Frame order == install order here (free stack pops ascending).
        assert_eq!(
            drained.iter().map(|l| l.key).collect::<Vec<_>>(),
            vec![5, 9, 1]
        );
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.tenant_occupancy(0), 0);
        // Refills reuse frames deterministically after a drain.
        c.access(2, BlockKind::Counter, false, 0);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn keyed_index_depends_on_seed_and_key() {
        let sets = 64;
        let a: Vec<_> = (0..100).map(|k| keyed_index(1, k, sets)).collect();
        let b: Vec<_> = (0..100).map(|k| keyed_index(2, k, sets)).collect();
        assert_ne!(a, b);
        assert!(a.iter().all(|&s| s < sets));
        // Stable: the oracle mirror depends on this exact mapping.
        assert_eq!(keyed_index(1, 0, sets), keyed_index(1, 0, sets));
    }

    #[test]
    fn tag_conflicts_still_install() {
        // 1-way tag sets with a tiny set count force tag conflicts; the
        // cache must keep absorbing accesses without leaking occupancy.
        let mut c = RandomizedCache::new(4 * 64, 1, 7);
        for k in 0..200u64 {
            c.access(k, BlockKind::Data, false, 0);
            assert!(c.contains(k), "freshly installed key must be resident");
        }
        assert!(c.occupancy() <= 4);
    }
}
