//! Set-associative cache simulation with pluggable replacement policies,
//! way partitioning, set dueling, and offline optimal-replacement searches.
//!
//! This crate provides the cache substrate for the MAPS study:
//!
//! * [`SetAssocCache`] — a generic set-associative cache over 64 B block
//!   keys, parameterized by a [`Policy`]. It powers both the L1/L2/LLC data
//!   hierarchy and the unified metadata cache.
//! * [`policy`] — replacement policies evaluated in the paper: true LRU,
//!   tree pseudo-LRU, FIFO, random, SRRIP, EVA, and a Belady MIN oracle fed
//!   with future knowledge from a recorded trace.
//! * [`partition`] — static way-partitioning between counters and hashes
//!   plus the set-dueling machinery from Section V-C.
//! * [`tenant`] — per-tenant way partitioning ([`TenantPartition`]) and
//!   per-tenant stats/occupancy accounting ([`TenantStatsTable`]) for the
//!   multi-tenant scenario layer.
//! * [`randomized`] — a MIRAGE-style fully-associative randomized cache
//!   ([`RandomizedCache`]) with keyed tag indexing and global-random
//!   eviction, the alternative metadata-cache backend.
//! * [`csopt`] — the Jeong–Dubois cost-sensitive optimal replacement search
//!   (breadth-first over eviction choices with dominance pruning) discussed
//!   in Section V-B.
//!
//! # Examples
//!
//! ```
//! use maps_cache::{CacheConfig, SetAssocCache};
//! use maps_cache::policy::TrueLru;
//! use maps_trace::BlockKind;
//!
//! let cfg = CacheConfig::from_bytes(4096, 4); // 4 KB, 4-way, 64 B blocks
//! let mut cache = SetAssocCache::new(cfg, TrueLru::new());
//! assert!(!cache.access(0x10, BlockKind::Data, false).hit);
//! assert!(cache.access(0x10, BlockKind::Data, false).hit);
//! ```

pub mod cache;
pub mod config;
pub mod csopt;
pub mod line;
pub mod partition;
pub mod policy;
pub mod psel;
pub mod randomized;
pub mod stats;
pub mod tenant;

pub use cache::{AccessResult, SetAssocCache};
pub use config::CacheConfig;
pub use csopt::{belady_misses, csopt_min_cost, CostedAccess, CsoptOutcome};
pub use line::{Line, SetView};
pub use partition::{DuelingController, Partition, PartitionError, SetRole};
pub use policy::Policy;
pub use psel::{PselCounter, PSEL_MAX};
pub use randomized::{derive_keys, keyed_index, RandomizedCache, SKEWS};
pub use stats::{CacheStats, KindStats};
pub use tenant::{TenantPartition, TenantPartitionError, TenantStatsTable};
