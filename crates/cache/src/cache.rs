//! The set-associative cache core.

use maps_trace::BlockKind;

use crate::line::{LineMeta, SetView};
use crate::{CacheConfig, CacheStats, Line, Partition, Policy};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
}

impl AccessResult {
    const HIT: AccessResult = AccessResult {
        hit: true,
        evicted: None,
    };
}

/// Tag value marking an empty frame in the packed tag array. Block keys
/// are region-local block indices (memory bytes / 64), so `u64::MAX` can
/// never collide with a real key.
const EMPTY_TAG: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache over block keys.
///
/// Keys are block-granular addresses; the set index is `key % sets` and the
/// full key is stored as the tag. The cache allocates on miss and returns
/// the evicted line (if any) so the caller can propagate writebacks.
///
/// # Examples
///
/// ```
/// use maps_cache::{CacheConfig, SetAssocCache};
/// use maps_cache::policy::TrueLru;
/// use maps_trace::BlockKind;
///
/// let mut c = SetAssocCache::new(CacheConfig::from_bytes(1024, 4), TrueLru::new());
/// c.access(7, BlockKind::Data, true); // write miss: allocate dirty
/// let stats = c.stats().kind(BlockKind::Data);
/// assert_eq!((stats.misses, stats.hits), (1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    cfg: CacheConfig,
    /// Each frame's key (`EMPTY_TAG` when the frame is empty). Tag matching
    /// is the innermost loop of the simulator; the line state is split into
    /// struct-of-arrays columns (`tags`/`stamps`/`inserts`/`meta`) so the
    /// probe scans a contiguous `u64` run and the hit path touches only the
    /// columns it updates, instead of pulling whole `Option<Line>` structs
    /// through the host cache.
    tags: Vec<u64>,
    /// Last-touch timestamp per frame (the LRU column).
    stamps: Vec<u64>,
    /// Fill timestamp per frame.
    inserts: Vec<u64>,
    /// Kind / dirty / partial-write validity per frame.
    meta: Vec<LineMeta>,
    policy: P,
    partition: Option<Partition>,
    stats: CacheStats,
    time: u64,
    /// `[0, 1, …, ways-1]`, sliced per partition when choosing victims so
    /// the eviction path never allocates a candidate list.
    way_ids: Vec<usize>,
}

impl<P: Policy> SetAssocCache<P> {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(cfg: CacheConfig, mut policy: P) -> Self {
        policy.init(cfg.sets(), cfg.ways());
        Self {
            cfg,
            tags: vec![EMPTY_TAG; cfg.blocks()],
            stamps: vec![0; cfg.blocks()],
            inserts: vec![0; cfg.blocks()],
            meta: vec![LineMeta::EMPTY; cfg.blocks()],
            policy,
            partition: None,
            stats: CacheStats::default(),
            time: 0,
            way_ids: (0..cfg.ways()).collect(),
        }
    }

    /// Materializes the line in frame `idx` (caller has established the
    /// frame is occupied).
    #[inline]
    fn line_at(&self, idx: usize) -> Line {
        debug_assert_ne!(self.tags[idx], EMPTY_TAG, "line_at on an empty frame");
        let m = self.meta[idx];
        Line {
            key: self.tags[idx],
            kind: m.kind,
            dirty: m.dirty,
            valid_mask: m.valid_mask,
            insert_at: self.inserts[idx],
            last_at: self.stamps[idx],
        }
    }

    /// Scatters `line` into frame `idx`'s columns.
    #[inline]
    fn store_line(&mut self, idx: usize, line: &Line) {
        self.tags[idx] = line.key;
        self.stamps[idx] = line.last_at;
        self.inserts[idx] = line.insert_at;
        self.meta[idx] = LineMeta::of(line);
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (e.g. after cache warm-up) without touching
    /// contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The replacement policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Installs a static way partition used for every subsequent access.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        if let Some(p) = &partition {
            p.validate(self.cfg.ways());
        }
        self.partition = partition;
    }

    /// Number of accesses performed (the policy time base).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Returns `true` if `key` is resident (no state change).
    pub fn contains(&self, key: u64) -> bool {
        self.find_way(self.cfg.set_of(key), key).is_some()
    }

    /// The resident line for `key`, if any (no state change).
    pub fn line(&self, key: u64) -> Option<Line> {
        let set = self.cfg.set_of(key);
        let way = self.find_way(set, key)?;
        Some(self.line_at(set * self.cfg.ways() + way))
    }

    /// Prefetches the tag and timestamp rows of `key`'s set into the host
    /// cache. Purely a performance hint for the batched replay path; has no
    /// architectural effect on the simulation.
    #[inline]
    pub fn prefetch_set(&self, key: u64) {
        let base = self.cfg.set_of(key) * self.cfg.ways();
        #[cfg(target_arch = "x86_64")]
        // SAFETY: both pointers are derived from in-bounds indices of live
        // allocations, and `_mm_prefetch` is architecturally a hint that
        // cannot fault or observably change state even on a bad address.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.tags.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(self.stamps.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = base;
    }

    /// Accesses `key`, allocating on miss; uses the static partition.
    #[inline]
    pub fn access(&mut self, key: u64, kind: BlockKind, write: bool) -> AccessResult {
        self.access_with(key, kind, write, None)
    }

    /// Accesses `key` with an optional per-access partition override (used
    /// by the set-dueling controller, which varies the partition between
    /// leader and follower sets).
    #[inline]
    pub fn access_with(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        partition_override: Option<&Partition>,
    ) -> AccessResult {
        let range = self.allowed_ways(kind, partition_override);
        self.access_ranged(key, kind, write, range)
    }

    /// Accesses `key` with fills confined to the explicit way range
    /// `[lo, hi)` — the per-tenant partitioning entry point. Hits are
    /// range-unrestricted (a line filled by another requester still
    /// hits), matching way-based cache partitioning in real hardware;
    /// only the *fill* is confined.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the range is empty or escapes the
    /// associativity.
    #[inline]
    pub fn access_in_ways(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        ways: (usize, usize),
    ) -> AccessResult {
        debug_assert!(
            ways.0 < ways.1 && ways.1 <= self.cfg.ways(),
            "way range ({}, {}) invalid for {} ways",
            ways.0,
            ways.1,
            self.cfg.ways()
        );
        self.access_ranged(key, kind, write, ways)
    }

    #[inline]
    fn access_ranged(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        range: (usize, usize),
    ) -> AccessResult {
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        let set = self.cfg.set_of(key);

        let (hit_way, first_empty) = self.scan_set(set, key);
        if let Some(way) = hit_way {
            let idx = set * self.cfg.ways() + way;
            self.stamps[idx] = t;
            if write {
                // Dirty only: sub-block validity is managed by the
                // partial-write callers via `mark_valid`.
                self.meta[idx].dirty = true;
            }
            self.policy.on_hit(set, way, t, kind);
            self.stats.record_access(kind, true);
            return AccessResult::HIT;
        }

        self.stats.record_access(kind, false);
        let mut new_line = Line::filled(key, kind, t);
        new_line.dirty = write;
        let evicted = self.fill(set, new_line, range, first_empty);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Probes without allocating: records a hit/miss and refreshes recency
    /// on hit, but never fills. Used for access streams whose kind is not
    /// cacheable under the current contents configuration.
    #[inline]
    pub fn probe(&mut self, key: u64, kind: BlockKind) -> bool {
        let set = self.cfg.set_of(key);
        let hit = self.find_way(set, key).is_some();
        self.stats.record_access(kind, hit);
        hit
    }

    /// Inserts a partial-write placeholder holding only sub-entry `slot`.
    /// Misses only; the caller must have established non-residency (e.g.
    /// via a missed [`SetAssocCache::access`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` is already resident or `slot >= 8`.
    pub fn insert_placeholder(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        partition_override: Option<&Partition>,
    ) -> Option<Line> {
        let range = self.allowed_ways(kind, partition_override);
        self.insert_placeholder_ranged(key, kind, slot, range)
    }

    /// [`SetAssocCache::insert_placeholder`] with the fill confined to
    /// the explicit way range `[lo, hi)` (per-tenant partitioning).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `key` is already resident, `slot >= 8`, or
    /// the way range is empty or out of range.
    pub fn insert_placeholder_in_ways(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        ways: (usize, usize),
    ) -> Option<Line> {
        debug_assert!(
            ways.0 < ways.1 && ways.1 <= self.cfg.ways(),
            "way range ({}, {}) invalid for {} ways",
            ways.0,
            ways.1,
            self.cfg.ways()
        );
        self.insert_placeholder_ranged(key, kind, slot, ways)
    }

    fn insert_placeholder_ranged(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        range: (usize, usize),
    ) -> Option<Line> {
        let set = self.cfg.set_of(key);
        let (hit_way, first_empty) = self.scan_set(set, key);
        debug_assert!(
            hit_way.is_none(),
            "placeholder insert for resident key {key}"
        );
        let t = self.time;
        self.fill(
            set,
            Line::placeholder(key, kind, t, slot),
            range,
            first_empty,
        )
    }

    /// Hit path of a partial write: behaves exactly like a write
    /// [`SetAssocCache::access`] followed by [`SetAssocCache::mark_valid`],
    /// but with a single tag lookup. Returns `None` (no state change) when
    /// `key` is not resident, in which case the caller falls back to the
    /// miss path.
    ///
    /// Debug builds panic if `slot >= 8`; release builds mask the slot's
    /// bit into an 8-bit field regardless, so an out-of-range slot is a
    /// silent no-op rather than a replay abort.
    pub fn access_mark_valid(&mut self, key: u64, kind: BlockKind, slot: u8) -> Option<u8> {
        debug_assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.cfg.set_of(key);
        let way = self.find_way(set, key)?;
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        let idx = set * self.cfg.ways() + way;
        self.stamps[idx] = t;
        self.meta[idx].dirty = true;
        // The policy observes a plain write hit: the sub-entry bit lands
        // only after `on_hit`, mirroring the separate access-then-mark
        // sequence this method replaces.
        self.policy.on_hit(set, way, t, kind);
        self.stats.record_access(kind, true);
        self.meta[idx].valid_mask |= 1 << slot;
        Some(self.meta[idx].valid_mask)
    }

    /// Marks additional valid sub-entries on a resident line (partial-write
    /// coalescing); returns the updated mask, or `None` if not resident.
    pub fn mark_valid(&mut self, key: u64, slot: u8) -> Option<u8> {
        debug_assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.cfg.set_of(key);
        let way = self.find_way(set, key)?;
        let m = &mut self.meta[set * self.cfg.ways() + way];
        m.valid_mask |= 1 << slot;
        m.dirty = true;
        Some(m.valid_mask)
    }

    /// Removes `key` if resident, returning the line.
    pub fn invalidate(&mut self, key: u64) -> Option<Line> {
        let set = self.cfg.set_of(key);
        let way = self.find_way(set, key)?;
        let idx = set * self.cfg.ways() + way;
        let line = self.line_at(idx);
        self.tags[idx] = EMPTY_TAG;
        self.policy.on_evict(set, way, &line, self.time);
        Some(line)
    }

    /// Drains every resident line (e.g. to account for final writebacks).
    pub fn drain(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for idx in 0..self.tags.len() {
            if self.tags[idx] != EMPTY_TAG {
                out.push(self.line_at(idx));
                self.tags[idx] = EMPTY_TAG;
            }
        }
        out
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }

    /// Iterates over resident lines (materialized from the column store).
    pub fn resident_lines(&self) -> impl Iterator<Item = Line> + '_ {
        (0..self.tags.len())
            .filter(|&idx| self.tags[idx] != EMPTY_TAG)
            .map(|idx| self.line_at(idx))
    }

    #[inline]
    fn find_way(&self, set: usize, key: u64) -> Option<usize> {
        self.scan_set(set, key).0
    }

    /// One pass over a set's tag row, returning the way holding `key` and
    /// the first empty way. Tag matching is the innermost loop of the
    /// simulator: the common 8-way geometry is pinned to a fixed-size array
    /// and scanned branchlessly into bit masks (which the compiler can
    /// unroll and vectorize), instead of a runtime-length `position` scan
    /// with a bounds check and branch per way — and the miss path reuses
    /// the empty mask instead of re-scanning the row.
    #[inline]
    fn scan_set(&self, set: usize, key: u64) -> (Option<usize>, Option<usize>) {
        #[inline]
        fn first(mask: u32) -> Option<usize> {
            (mask != 0).then(|| mask.trailing_zeros() as usize)
        }
        let base = set * self.cfg.ways();
        let tags = &self.tags[base..base + self.cfg.ways()];
        if let Ok(tags8) = <&[u64; 8]>::try_from(tags) {
            let (mut hit, mut empty) = (0u32, 0u32);
            for (w, &t) in tags8.iter().enumerate() {
                hit |= u32::from(t == key) << w;
                empty |= u32::from(t == EMPTY_TAG) << w;
            }
            return (first(hit), first(empty));
        }
        let (mut hit, mut empty) = (0u32, 0u32);
        for (w, &t) in tags.iter().enumerate() {
            hit |= u32::from(t == key) << w;
            empty |= u32::from(t == EMPTY_TAG) << w;
        }
        (first(hit), first(empty))
    }

    fn allowed_ways(
        &self,
        kind: BlockKind,
        partition_override: Option<&Partition>,
    ) -> (usize, usize) {
        let p = partition_override.or(self.partition.as_ref());
        match p {
            Some(p) => p.ways_for(kind, self.cfg.ways()),
            None => (0, self.cfg.ways()),
        }
    }

    /// `first_empty` is the set's first empty way as returned by
    /// [`SetAssocCache::scan_set`] (reused when no partition narrows the
    /// ways, so the fill path does not re-scan the tag row). The fill is
    /// confined to the resolved way range `[lo, hi)`.
    fn fill(
        &mut self,
        set: usize,
        new_line: Line,
        (lo, hi): (usize, usize),
        first_empty: Option<usize>,
    ) -> Option<Line> {
        let base = set * self.cfg.ways();
        debug_assert_ne!(
            new_line.key, EMPTY_TAG,
            "key collides with the empty-frame sentinel"
        );

        // Prefer an invalid frame within the allowed ways.
        let empty = if lo == 0 && hi == self.cfg.ways() {
            first_empty
        } else {
            (lo..hi).find(|&w| self.tags[base + w] == EMPTY_TAG)
        };
        if let Some(way) = empty {
            self.store_line(base + way, &new_line);
            self.policy.on_fill(set, way, &new_line);
            return None;
        }

        let way = match self
            .policy
            .choose_victim_fast(set, &self.way_ids[lo..hi], self.time)
        {
            Some(way) => way,
            None => {
                // Built inline (not via a `&self` helper) so the immutable
                // column borrows stay disjoint from `&mut self.policy`.
                let end = base + self.cfg.ways();
                let view = SetView::from_soa(
                    &self.tags[base..end],
                    &self.meta[base..end],
                    &self.stamps[base..end],
                    &self.inserts[base..end],
                );
                self.policy
                    .choose_victim(set, &self.way_ids[lo..hi], &view, self.time)
            }
        };
        debug_assert!(
            (lo..hi).contains(&way),
            "policy chose non-candidate way {way}"
        );
        let victim = self.line_at(base + way);
        self.policy.on_evict(set, way, &victim, self.time);
        self.stats.record_eviction(victim.kind, victim.dirty);
        self.store_line(base + way, &new_line);
        self.policy.on_fill(set, way, &new_line);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TrueLru;

    fn small() -> SetAssocCache<TrueLru> {
        SetAssocCache::new(CacheConfig::from_bytes(512, 4), TrueLru::new()) // 2 sets
    }

    #[test]
    fn write_allocates_dirty() {
        let mut c = small();
        let r = c.access(1, BlockKind::Data, true);
        assert!(!r.hit);
        let line = c.resident_lines().next().unwrap();
        assert!(line.dirty);
        assert!(line.is_complete());
    }

    #[test]
    fn read_hit_preserves_dirty() {
        let mut c = small();
        c.access(1, BlockKind::Data, true);
        c.access(1, BlockKind::Data, false);
        assert!(c.resident_lines().next().unwrap().dirty);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small(); // 2 sets: even keys -> set 0, odd -> set 1
        for k in [0u64, 2, 4, 6] {
            c.access(k, BlockKind::Data, false);
        }
        // Set 0 is full; an odd key must not evict.
        let r = c.access(1, BlockKind::Data, false);
        assert!(r.evicted.is_none());
        // Another even key must evict from set 0.
        let r = c.access(8, BlockKind::Data, false);
        assert_eq!(r.evicted.unwrap().key, 0);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(64, 1), TrueLru::new());
        c.access(1, BlockKind::Data, true);
        let r = c.access(2, BlockKind::Data, false);
        let ev = r.evicted.unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().kind(BlockKind::Data).writebacks, 1);
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = small();
        assert!(!c.probe(5, BlockKind::Hash));
        assert!(!c.contains(5));
        assert_eq!(c.stats().kind(BlockKind::Hash).misses, 1);
    }

    #[test]
    fn placeholder_and_mark_valid() {
        let mut c = small();
        c.insert_placeholder(3, BlockKind::Hash, 2, None);
        assert!(c.contains(3));
        let mask = c.mark_valid(3, 5).unwrap();
        assert_eq!(mask, 0b0010_0100);
        assert_eq!(c.mark_valid(99, 0), None);
    }

    #[test]
    #[should_panic(expected = "resident key")]
    fn placeholder_for_resident_key_panics() {
        let mut c = small();
        c.access(3, BlockKind::Hash, false);
        c.insert_placeholder(3, BlockKind::Hash, 0, None);
    }

    #[test]
    fn invalidate_and_drain() {
        let mut c = small();
        c.access(1, BlockKind::Data, true);
        c.access(2, BlockKind::Data, false);
        let inv = c.invalidate(1).unwrap();
        assert!(inv.dirty);
        assert_eq!(c.occupancy(), 1);
        let drained = c.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn occupancy_capped_by_capacity() {
        let mut c = small();
        for k in 0..100u64 {
            c.access(k, BlockKind::Data, false);
        }
        assert_eq!(c.occupancy(), 8);
    }
}
