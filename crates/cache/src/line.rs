//! Cache line bookkeeping.

use maps_trace::BlockKind;

/// Mask value meaning every 8 B sub-entry of a 64 B block is present.
pub const FULL_MASK: u8 = 0xFF;

/// One resident cache line.
///
/// `valid_mask` tracks per-8 B validity for the partial-write mechanism of
/// Section IV-E: a hash block inserted as a placeholder for a single updated
/// hash starts with one bit set and accumulates bits as neighbouring hashes
/// are written. A line evicted dirty with an incomplete mask requires a
/// fill read from memory before it can be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Block-granular address (global key).
    pub key: u64,
    /// Block classification (data or metadata type).
    pub kind: BlockKind,
    /// Whether the line has been written since fill.
    pub dirty: bool,
    /// Per-8 B validity bits; [`FULL_MASK`] for ordinary fills.
    pub valid_mask: u8,
    /// Cache access-counter value when the line was filled.
    pub insert_at: u64,
    /// Cache access-counter value of the most recent touch.
    pub last_at: u64,
}

/// The non-key, non-timestamp columns of a line in the struct-of-arrays
/// cache storage: kind, dirty bit, and partial-write validity, packed so a
/// 16-way set of them spans a single cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LineMeta {
    pub kind: BlockKind,
    pub dirty: bool,
    pub valid_mask: u8,
}

impl LineMeta {
    /// Placeholder contents for an empty frame (never read: the tag array's
    /// empty sentinel gates every access).
    pub(crate) const EMPTY: LineMeta = LineMeta {
        kind: BlockKind::Data,
        dirty: false,
        valid_mask: 0,
    };

    pub(crate) const fn of(line: &Line) -> LineMeta {
        LineMeta {
            kind: line.kind,
            dirty: line.dirty,
            valid_mask: line.valid_mask,
        }
    }
}

/// Read-only view of one set's resident lines, abstracting over the storage
/// layout: the production [`SetAssocCache`](crate::SetAssocCache) keeps
/// struct-of-arrays columns, while the executable specification in
/// `maps-oracle` keeps a plain `Vec<Option<Line>>` per set. Policies receive
/// this view in [`Policy::choose_victim`](crate::Policy::choose_victim) and
/// materialize [`Line`] values on demand (eviction path only, so the
/// per-candidate gather is off the hit path).
#[derive(Debug, Clone, Copy)]
pub struct SetView<'a> {
    inner: ViewInner<'a>,
}

#[derive(Debug, Clone, Copy)]
enum ViewInner<'a> {
    /// Array-of-structs storage (the oracle's per-set line vector).
    Slice(&'a [Option<Line>]),
    /// Struct-of-arrays columns sliced to one set.
    Soa {
        tags: &'a [u64],
        meta: &'a [LineMeta],
        stamps: &'a [u64],
        inserts: &'a [u64],
    },
}

impl<'a> SetView<'a> {
    /// Wraps array-of-structs storage (one `Option<Line>` per way).
    pub fn from_slice(lines: &'a [Option<Line>]) -> Self {
        Self {
            inner: ViewInner::Slice(lines),
        }
    }

    /// Wraps struct-of-arrays columns, each sliced to the same set.
    pub(crate) fn from_soa(
        tags: &'a [u64],
        meta: &'a [LineMeta],
        stamps: &'a [u64],
        inserts: &'a [u64],
    ) -> Self {
        debug_assert!(
            tags.len() == meta.len() && tags.len() == stamps.len() && tags.len() == inserts.len()
        );
        Self {
            inner: ViewInner::Soa {
                tags,
                meta,
                stamps,
                inserts,
            },
        }
    }

    /// Materializes the line in `way`.
    ///
    /// # Panics
    ///
    /// Panics if the way is out of range. Victim candidates always hold a
    /// line; an empty way is debug-checked and materializes as a zeroed
    /// placeholder in release builds rather than aborting the replay.
    #[inline]
    pub fn line(&self, way: usize) -> Line {
        match self.inner {
            ViewInner::Slice(lines) => {
                debug_assert!(lines[way].is_some(), "candidate way must hold a line");
                lines[way].unwrap_or(Line::filled(0, BlockKind::Data, 0))
            }
            ViewInner::Soa {
                tags,
                meta,
                stamps,
                inserts,
            } => {
                let m = meta[way];
                Line {
                    key: tags[way],
                    kind: m.kind,
                    dirty: m.dirty,
                    valid_mask: m.valid_mask,
                    insert_at: inserts[way],
                    last_at: stamps[way],
                }
            }
        }
    }
}

impl Line {
    /// Creates a fully-valid clean line filled at `time`.
    pub const fn filled(key: u64, kind: BlockKind, time: u64) -> Self {
        Self {
            key,
            kind,
            dirty: false,
            valid_mask: FULL_MASK,
            insert_at: time,
            last_at: time,
        }
    }

    /// Creates a partial-write placeholder containing only the sub-entry
    /// at `slot` (0..8). The line is born dirty. Debug builds panic when
    /// `slot >= 8`; release builds shift the bit out of the 8-bit mask.
    pub fn placeholder(key: u64, kind: BlockKind, time: u64, slot: u8) -> Self {
        debug_assert!(slot < 8, "sub-block slot {slot} out of range");
        Self {
            key,
            kind,
            dirty: true,
            valid_mask: 1 << slot,
            insert_at: time,
            last_at: time,
        }
    }

    /// Whether all eight sub-entries are valid.
    pub const fn is_complete(&self) -> bool {
        self.valid_mask == FULL_MASK
    }

    /// Age of the line in cache accesses at time `now`.
    pub const fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.insert_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_lines_are_complete_and_clean() {
        let l = Line::filled(42, BlockKind::Counter, 7);
        assert!(l.is_complete());
        assert!(!l.dirty);
        assert_eq!(l.age(10), 3);
        assert_eq!(l.age(5), 0);
    }

    #[test]
    fn placeholders_start_dirty_with_one_bit() {
        let l = Line::placeholder(42, BlockKind::Hash, 0, 3);
        assert!(l.dirty);
        assert_eq!(l.valid_mask, 0b1000);
        assert!(!l.is_complete());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placeholder_slot_bounds() {
        Line::placeholder(0, BlockKind::Hash, 0, 8);
    }
}
