//! Cache line bookkeeping.

use maps_trace::BlockKind;

/// Mask value meaning every 8 B sub-entry of a 64 B block is present.
pub const FULL_MASK: u8 = 0xFF;

/// One resident cache line.
///
/// `valid_mask` tracks per-8 B validity for the partial-write mechanism of
/// Section IV-E: a hash block inserted as a placeholder for a single updated
/// hash starts with one bit set and accumulates bits as neighbouring hashes
/// are written. A line evicted dirty with an incomplete mask requires a
/// fill read from memory before it can be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Block-granular address (global key).
    pub key: u64,
    /// Block classification (data or metadata type).
    pub kind: BlockKind,
    /// Whether the line has been written since fill.
    pub dirty: bool,
    /// Per-8 B validity bits; [`FULL_MASK`] for ordinary fills.
    pub valid_mask: u8,
    /// Cache access-counter value when the line was filled.
    pub insert_at: u64,
    /// Cache access-counter value of the most recent touch.
    pub last_at: u64,
}

impl Line {
    /// Creates a fully-valid clean line filled at `time`.
    pub const fn filled(key: u64, kind: BlockKind, time: u64) -> Self {
        Self {
            key,
            kind,
            dirty: false,
            valid_mask: FULL_MASK,
            insert_at: time,
            last_at: time,
        }
    }

    /// Creates a partial-write placeholder containing only the sub-entry
    /// at `slot` (0..8). The line is born dirty.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn placeholder(key: u64, kind: BlockKind, time: u64, slot: u8) -> Self {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        Self {
            key,
            kind,
            dirty: true,
            valid_mask: 1 << slot,
            insert_at: time,
            last_at: time,
        }
    }

    /// Whether all eight sub-entries are valid.
    pub const fn is_complete(&self) -> bool {
        self.valid_mask == FULL_MASK
    }

    /// Age of the line in cache accesses at time `now`.
    pub const fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.insert_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_lines_are_complete_and_clean() {
        let l = Line::filled(42, BlockKind::Counter, 7);
        assert!(l.is_complete());
        assert!(!l.dirty);
        assert_eq!(l.age(10), 3);
        assert_eq!(l.age(5), 0);
    }

    #[test]
    fn placeholders_start_dirty_with_one_bit() {
        let l = Line::placeholder(42, BlockKind::Hash, 0, 3);
        assert!(l.dirty);
        assert_eq!(l.valid_mask, 0b1000);
        assert!(!l.is_complete());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placeholder_slot_bounds() {
        Line::placeholder(0, BlockKind::Hash, 0, 8);
    }
}
