//! Cache geometry configuration.

use maps_trace::BLOCK_BYTES;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use maps_cache::CacheConfig;
/// let cfg = CacheConfig::from_bytes(64 * 1024, 8);
/// assert_eq!(cfg.sets(), 128);
/// assert_eq!(cfg.blocks(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: usize,
    block_bytes: u64,
    /// `sets - 1`; valid because the set count is a power of two.
    set_mask: u64,
}

impl CacheConfig {
    /// Creates a configuration from a total capacity in bytes and an
    /// associativity, with the standard 64 B block size.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * 64` or if
    /// the resulting set count is not a power of two (required for the
    /// bit-sliced set indexing used by real caches and by tree-PLRU).
    pub fn from_bytes(size_bytes: u64, ways: usize) -> Self {
        Self::with_block_bytes(size_bytes, ways, BLOCK_BYTES)
    }

    /// Creates a configuration with an explicit block size.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CacheConfig::from_bytes`].
    pub fn with_block_bytes(size_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(block_bytes > 0, "block size must be positive");
        assert_eq!(
            size_bytes % (ways as u64 * block_bytes),
            0,
            "capacity {size_bytes} is not a multiple of ways*block ({ways}*{block_bytes})"
        );
        let sets = size_bytes / (ways as u64 * block_bytes);
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "set count {sets} is not a power of two"
        );
        Self {
            size_bytes,
            ways,
            block_bytes,
            set_mask: sets - 1,
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Block size in bytes.
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * self.block_bytes)) as usize
    }

    /// Total number of block frames.
    pub const fn blocks(&self) -> usize {
        self.sets() * self.ways
    }

    /// Set index for a block key (block-granular address). The set count
    /// is a power of two, so this is a mask, not a division — it sits on
    /// the hot path of every cache level and the metadata cache.
    pub const fn set_of(&self, key: u64) -> usize {
        (key & self.set_mask) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_llc_geometry() {
        // Table I: 2MB 8-way LLC.
        let cfg = CacheConfig::from_bytes(2 * 1024 * 1024, 8);
        assert_eq!(cfg.sets(), 4096);
        assert_eq!(cfg.blocks(), 32768);
    }

    #[test]
    fn set_mapping_wraps() {
        let cfg = CacheConfig::from_bytes(4096, 4); // 16 sets
        assert_eq!(cfg.sets(), 16);
        assert_eq!(cfg.set_of(0), 0);
        assert_eq!(cfg.set_of(16), 0);
        assert_eq!(cfg.set_of(17), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        CacheConfig::from_bytes(3 * 64 * 4, 4);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn unaligned_capacity_panics() {
        CacheConfig::from_bytes(1000, 4);
    }
}
