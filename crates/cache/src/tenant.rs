//! Per-tenant way partitioning and accounting.
//!
//! Production secure memory serves several mutually distrusting tenants
//! through one metadata cache. This module carries the two pieces the
//! multi-tenant scenarios need from the cache layer:
//!
//! * [`TenantPartition`] — an even static split of a set-associative
//!   cache's ways among N tenants, generalizing the two-sided
//!   counter/hash [`Partition`](crate::Partition) to a per-requester
//!   dimension. Fills are confined to the requester's way range via
//!   [`SetAssocCache::access_in_ways`](crate::SetAssocCache::access_in_ways);
//!   hits are range-unrestricted (shared metadata such as upper tree
//!   levels stays usable by everyone, exactly like way-based DRAM cache
//!   partitioning in real parts).
//! * [`TenantStatsTable`] — per-tenant [`CacheStats`] plus an occupancy
//!   ledger. Attribution is by delta: the caller snapshots the cache's
//!   global stats before an access and feeds the after-minus-before
//!   difference to the requesting tenant, so the per-tenant counters sum
//!   to the global ones for *any* interleaving, by construction.
//!
//! Everything here is deterministic and allocation-free on the access
//! path except the owner map (one hash-map update per fill/eviction).

use std::fmt;

use maps_trace::det::DetHashMap;

use crate::CacheStats;

/// An invalid tenant split: every tenant must get at least one way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPartitionError {
    /// Requested tenant count.
    pub tenants: usize,
    /// Cache associativity it was checked against.
    pub ways: usize,
}

impl fmt::Display for TenantPartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant partition of {} tenant(s) over {} way(s) must give every tenant at least one way",
            self.tenants, self.ways
        )
    }
}

impl std::error::Error for TenantPartitionError {}

/// An even static split of `ways` among `tenants` requesters.
///
/// Tenant `i` owns the half-open way range returned by
/// [`TenantPartition::ways_for`]; when `ways` is not a multiple of
/// `tenants` the first `ways % tenants` tenants get one extra way.
///
/// # Examples
///
/// ```
/// use maps_cache::TenantPartition;
/// let p = TenantPartition::new(3, 8).unwrap();
/// assert_eq!(p.ways_for(0, 8), (0, 3));
/// assert_eq!(p.ways_for(1, 8), (3, 6));
/// assert_eq!(p.ways_for(2, 8), (6, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantPartition {
    tenants: usize,
}

impl TenantPartition {
    /// A checked split: requires `1 <= tenants <= ways` so every tenant
    /// owns at least one way.
    ///
    /// # Errors
    ///
    /// [`TenantPartitionError`] when a tenant would be starved.
    pub fn new(tenants: usize, ways: usize) -> Result<Self, TenantPartitionError> {
        if tenants >= 1 && tenants <= ways {
            Ok(Self { tenants })
        } else {
            Err(TenantPartitionError { tenants, ways })
        }
    }

    /// Number of tenants in the split.
    pub const fn tenants(&self) -> usize {
        self.tenants
    }

    /// Half-open way range `[lo, hi)` owned by `tenant` at associativity
    /// `ways`. Tenant ids at or above the tenant count wrap (`id %
    /// tenants`), so callers can pass raw ids without pre-clamping.
    pub fn ways_for(&self, tenant: u8, ways: usize) -> (usize, usize) {
        let t = (tenant as usize) % self.tenants;
        let base = ways / self.tenants;
        let rem = ways % self.tenants;
        let lo = t * base + t.min(rem);
        let hi = lo + base + usize::from(t < rem);
        (lo, hi.min(ways))
    }

    /// Frame quota for the fully-associative randomized design: the even
    /// share of `capacity` frames, never below one frame.
    pub fn frame_quota(&self, capacity: usize) -> usize {
        (capacity / self.tenants).max(1)
    }
}

/// Per-tenant statistics and occupancy for one cache.
///
/// Grows on demand as tenant ids appear; tenants that never accessed the
/// cache occupy no space and report zeroed stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStatsTable {
    stats: Vec<CacheStats>,
    occupancy: Vec<u64>,
    /// Resident block key -> owning tenant, for occupancy attribution of
    /// evictions (the evicted line does not carry its owner).
    owner: DetHashMap<u64, u8>,
}

impl TenantStatsTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, tenant: u8) -> usize {
        let t = tenant as usize;
        if t >= self.stats.len() {
            self.stats.resize(t + 1, CacheStats::default());
            self.occupancy.resize(t + 1, 0);
        }
        t
    }

    /// Attributes a stats delta (after-minus-before around one access)
    /// to `tenant`.
    pub fn add_delta(&mut self, tenant: u8, delta: &CacheStats) {
        let t = self.slot(tenant);
        self.stats[t].accumulate(delta);
    }

    /// Records that `tenant` now owns the resident line `key`.
    pub fn note_fill(&mut self, key: u64, tenant: u8) {
        let t = self.slot(tenant);
        if let Some(prev) = self.owner.insert(key, tenant) {
            // A fill over a still-tracked key means the previous owner's
            // line left the cache without `note_evict` (should not
            // happen); keep the ledger consistent anyway.
            let p = self.slot(prev);
            self.occupancy[p] = self.occupancy[p].saturating_sub(1);
        }
        self.occupancy[t] += 1;
    }

    /// Records that the resident line `key` left the cache (eviction,
    /// invalidation, or drain), returning its owner if it was tracked.
    pub fn note_evict(&mut self, key: u64) -> Option<u8> {
        let tenant = self.owner.remove(&key)?;
        let t = self.slot(tenant);
        self.occupancy[t] = self.occupancy[t].saturating_sub(1);
        Some(tenant)
    }

    /// The owning tenant of a resident line, if tracked.
    pub fn owner_of(&self, key: u64) -> Option<u8> {
        self.owner.get(&key).copied()
    }

    /// Accumulated stats for `tenant` (zeroes if never seen).
    pub fn stats(&self, tenant: u8) -> CacheStats {
        self.stats.get(tenant as usize).copied().unwrap_or_default()
    }

    /// Current resident-line count owned by `tenant`.
    pub fn occupancy(&self, tenant: u8) -> u64 {
        self.occupancy.get(tenant as usize).copied().unwrap_or(0)
    }

    /// Tenant ids that have ever been attributed an access or a fill, in
    /// ascending order.
    pub fn tenants(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.stats.len() as u8).filter(move |&t| {
            self.stats[t as usize].total().accesses != 0 || self.occupancy[t as usize] != 0
        })
    }

    /// Sum of all per-tenant stats (equals the cache's global stats over
    /// the same interval when every access was attributed).
    pub fn combined(&self) -> CacheStats {
        let mut sum = CacheStats::default();
        for s in &self.stats {
            sum.accumulate(s);
        }
        sum
    }

    /// Clears per-tenant counters (e.g. after warm-up) while keeping the
    /// occupancy ledger, mirroring
    /// [`SetAssocCache::reset_stats`](crate::SetAssocCache::reset_stats).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::BlockKind;

    #[test]
    fn even_split_covers_all_ways_disjointly() {
        for tenants in 1..=8 {
            let p = TenantPartition::new(tenants, 8).unwrap();
            let mut covered = [false; 8];
            for t in 0..tenants as u8 {
                let (lo, hi) = p.ways_for(t, 8);
                assert!(lo < hi, "tenant {t} starved");
                for (w, c) in covered.iter_mut().enumerate().take(hi).skip(lo) {
                    assert!(!*c, "way {w} double-assigned");
                    *c = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "split {tenants} leaves gaps");
        }
    }

    #[test]
    fn uneven_remainder_goes_to_low_tenants() {
        let p = TenantPartition::new(3, 8).unwrap();
        assert_eq!(p.ways_for(0, 8), (0, 3));
        assert_eq!(p.ways_for(1, 8), (3, 6));
        assert_eq!(p.ways_for(2, 8), (6, 8));
        // Out-of-range ids wrap instead of panicking or starving.
        assert_eq!(p.ways_for(3, 8), p.ways_for(0, 8));
    }

    #[test]
    fn starving_splits_are_rejected() {
        assert!(TenantPartition::new(0, 8).is_err());
        assert!(TenantPartition::new(9, 8).is_err());
        let err = TenantPartition::new(16, 8).unwrap_err();
        assert!(err.to_string().contains("at least one way"));
    }

    #[test]
    fn frame_quota_never_zero() {
        let p = TenantPartition::new(4, 8).unwrap();
        assert_eq!(p.frame_quota(1024), 256);
        assert_eq!(p.frame_quota(2), 1);
    }

    #[test]
    fn delta_attribution_sums_to_global() {
        let mut global = CacheStats::default();
        let mut table = TenantStatsTable::new();
        for i in 0..100u64 {
            let tenant = (i % 3) as u8;
            let before = global;
            global.record_access(BlockKind::Counter, i % 2 == 0);
            if i % 5 == 0 {
                global.record_eviction(BlockKind::Counter, i % 10 == 0);
            }
            table.add_delta(tenant, &global.delta_since(&before));
        }
        assert_eq!(table.combined(), global);
        assert_eq!(table.tenants().count(), 3);
    }

    #[test]
    fn occupancy_ledger_tracks_fills_and_evictions() {
        let mut table = TenantStatsTable::new();
        table.note_fill(10, 1);
        table.note_fill(11, 1);
        table.note_fill(20, 2);
        assert_eq!(table.occupancy(1), 2);
        assert_eq!(table.occupancy(2), 1);
        assert_eq!(table.owner_of(10), Some(1));
        assert_eq!(table.note_evict(10), Some(1));
        assert_eq!(table.occupancy(1), 1);
        assert_eq!(table.note_evict(99), None);
        // Reset keeps the occupancy ledger.
        table.add_delta(1, &CacheStats::default());
        table.reset_stats();
        assert_eq!(table.occupancy(1), 1);
    }
}
