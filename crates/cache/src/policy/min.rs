//! Belady's MIN with future knowledge from a recorded trace.

use maps_trace::det::DetHashMap;

use super::Policy;
use crate::line::SetView;

/// Belady's MIN \[Belady 1966\]: evicts the candidate whose next use lies
/// farthest in the future, using a *recorded* access trace as the oracle.
///
/// As the paper stresses (Section V-B), this is only truly optimal when the
/// trace is independent of cache contents and miss costs are uniform —
/// neither holds for metadata. The oracle here is deliberately robust to
/// divergence: if the live access stream departs from the recorded trace
/// (which happens under iterMIN, where eviction decisions change which tree
/// nodes are accessed), next-use lookups fall back to a binary search over
/// the block's recorded occurrence positions after the current time.
///
/// # Examples
///
/// ```
/// use maps_cache::policy::MinOracle;
/// use maps_cache::{CacheConfig, SetAssocCache};
/// use maps_trace::BlockKind;
///
/// let trace = [1u64, 2, 3, 1, 2, 3];
/// let mut c = SetAssocCache::new(
///     CacheConfig::from_bytes(128, 2),
///     MinOracle::from_trace(&trace),
/// );
/// let mut misses = 0;
/// for &k in &trace {
///     if !c.access(k, BlockKind::Data, false).hit {
///         misses += 1;
///     }
/// }
/// // LRU would miss all 6; MIN preserves reuse and misses only 4.
/// assert_eq!(misses, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MinOracle {
    /// Occurrence positions of every key in the recorded trace, ascending.
    occurrences: DetHashMap<u64, Vec<u64>>,
    /// Current access index (advanced by `begin_access`).
    now: u64,
}

/// Sentinel next-use for "never used again".
const NEVER: u64 = u64::MAX;

impl MinOracle {
    /// Builds the oracle from a recorded key trace.
    pub fn from_trace(trace: &[u64]) -> Self {
        let mut occurrences: DetHashMap<u64, Vec<u64>> = DetHashMap::default();
        for (i, &k) in trace.iter().enumerate() {
            occurrences.entry(k).or_default().push(i as u64);
        }
        Self {
            occurrences,
            now: 0,
        }
    }

    /// Position of the first recorded use of `key` strictly after `time`,
    /// or [`u64::MAX`] when the key never recurs.
    pub fn next_use_after(&self, key: u64, time: u64) -> u64 {
        match self.occurrences.get(&key) {
            Some(positions) => {
                let i = positions.partition_point(|&p| p <= time);
                positions.get(i).copied().unwrap_or(NEVER)
            }
            None => NEVER,
        }
    }

    /// Number of accesses the oracle has observed so far.
    pub fn time(&self) -> u64 {
        self.now
    }
}

impl Policy for MinOracle {
    fn name(&self) -> &'static str {
        "min"
    }

    fn init(&mut self, _sets: usize, _ways: usize) {}

    fn begin_access(&mut self, time: u64, _key: u64) {
        self.now = time;
    }

    fn choose_victim(
        &mut self,
        _set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        let Some(&first) = candidates.first() else {
            debug_assert!(false, "candidate list must not be empty");
            return 0;
        };
        let mut best = first;
        let mut farthest = 0u64;
        for &w in candidates {
            let line = lines.line(w);
            let next = self.next_use_after(line.key, self.now);
            if next >= farthest {
                farthest = next;
                best = w;
                if next == NEVER {
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TrueLru;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    fn run_misses<P: Policy>(trace: &[u64], cache: &mut SetAssocCache<P>) -> u64 {
        let mut misses = 0;
        for &k in trace {
            if !cache.access(k, BlockKind::Data, false).hit {
                misses += 1;
            }
        }
        misses
    }

    #[test]
    fn next_use_lookup() {
        let oracle = MinOracle::from_trace(&[5, 6, 5, 7]);
        assert_eq!(oracle.next_use_after(5, 0), 2);
        assert_eq!(oracle.next_use_after(5, 2), NEVER);
        assert_eq!(oracle.next_use_after(9, 0), NEVER);
    }

    #[test]
    fn min_never_worse_than_lru_fully_associative() {
        // Uniform-cost, fixed-trace: Belady is optimal, so it must not lose
        // to LRU on any trace in a fully-associative cache.
        let traces: Vec<Vec<u64>> = vec![
            (0..60).map(|i| i % 7).collect(),
            (0..120).map(|i| (i * i) % 13).collect(),
            vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5],
        ];
        for trace in traces {
            let mut min_cache = SetAssocCache::new(
                CacheConfig::from_bytes(256, 4),
                MinOracle::from_trace(&trace),
            );
            let mut lru_cache = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
            let m = run_misses(&trace, &mut min_cache);
            let l = run_misses(&trace, &mut lru_cache);
            assert!(m <= l, "MIN ({m}) worse than LRU ({l}) on {trace:?}");
        }
    }

    #[test]
    fn cyclic_scan_shows_min_advantage() {
        // Classic case: cyclic scan over ways+1 blocks. LRU misses every
        // access; MIN misses far less.
        let trace: Vec<u64> = (0..50).map(|i| i % 5).collect();
        let mut min_cache = SetAssocCache::new(
            CacheConfig::from_bytes(256, 4),
            MinOracle::from_trace(&trace),
        );
        let mut lru_cache = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        let m = run_misses(&trace, &mut min_cache);
        let l = run_misses(&trace, &mut lru_cache);
        assert_eq!(l, 50, "LRU should thrash the cyclic scan");
        assert!(
            m < 20,
            "MIN should keep most of the loop resident, missed {m}"
        );
    }

    #[test]
    fn survives_trace_divergence() {
        // Feed an oracle built from one trace with a different live stream;
        // it must not panic and must still produce valid victims.
        let oracle = MinOracle::from_trace(&[1, 2, 3]);
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(128, 2), oracle);
        for k in 100..110u64 {
            c.access(k, BlockKind::Data, false);
        }
        assert_eq!(c.stats().total().accesses, 10);
    }
}
