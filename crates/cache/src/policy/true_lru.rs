//! Exact least-recently-used replacement.

use super::{argmin_by, Policy};
use crate::line::SetView;

/// True LRU: evicts the candidate with the oldest last-touch timestamp.
///
/// The cache core maintains `last_at` on every line, so this policy is
/// stateless. Used both as an evaluated policy and as the trace-collection
/// policy for MIN/iterMIN runs (Section V-B simulates with true-LRU to
/// gather the oracle trace).
///
/// # Examples
///
/// ```
/// use maps_cache::{CacheConfig, SetAssocCache};
/// use maps_cache::policy::TrueLru;
/// use maps_trace::BlockKind;
///
/// // 1-set, 2-way cache: A B A C evicts B (LRU), not A.
/// let mut c = SetAssocCache::new(CacheConfig::from_bytes(128, 2), TrueLru::new());
/// c.access(0xA, BlockKind::Data, false);
/// c.access(0xB, BlockKind::Data, false);
/// c.access(0xA, BlockKind::Data, false);
/// let result = c.access(0xC, BlockKind::Data, false);
/// assert_eq!(result.evicted.unwrap().key, 0xB);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueLru;

impl TrueLru {
    /// Creates the policy.
    pub const fn new() -> Self {
        Self
    }
}

impl Policy for TrueLru {
    fn name(&self) -> &'static str {
        "true-lru"
    }

    fn init(&mut self, _sets: usize, _ways: usize) {}

    fn choose_victim(
        &mut self,
        _set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        argmin_by(candidates, lines, |l| l.last_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn evicts_least_recent() {
        // Fully-associative 4-way, 1 set.
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        for k in 0..4u64 {
            c.access(k, BlockKind::Data, false);
        }
        // Touch 0, 1, 2 again: 3 is now LRU.
        for k in 0..3u64 {
            c.access(k, BlockKind::Data, false);
        }
        let r = c.access(100, BlockKind::Data, false);
        assert_eq!(r.evicted.unwrap().key, 3);
    }

    #[test]
    fn lru_inclusion_property() {
        // A smaller LRU cache's hits are a subset of a larger one's.
        let keys: Vec<u64> = (0..200).map(|i| (i * 7) % 23).collect();
        let mut small = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        let mut large = SetAssocCache::new(CacheConfig::from_bytes(512, 8), TrueLru::new());
        for &k in &keys {
            let hit_small = small.access(k, BlockKind::Data, false).hit;
            let hit_large = large.access(k, BlockKind::Data, false).hit;
            assert!(
                !hit_small || hit_large,
                "small hit but large missed for key {k}"
            );
        }
    }
}
