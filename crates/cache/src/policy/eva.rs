//! EVA (economic value added) replacement.

use maps_trace::BlockKind;

use super::Policy;
use crate::line::SetView;
use crate::Line;

/// EVA replacement (Beckmann & Sanchez, HPCA 2017), as described in
/// Section V-A of the MAPS paper:
///
/// ```text
/// EVA(age) = P(age) - C * L(age)
/// ```
///
/// where `P(age)` is the probability that a line of the given age
/// eventually hits, `C` is the cache's average hit rate per unit of line
/// lifetime (the opportunity cost of occupying a frame), and `L(age)` is
/// the expected remaining lifetime. The policy evicts the candidate with
/// the smallest EVA.
///
/// Following EVA's lifetime model, a hit *ends* one lifetime and starts a
/// new one: per-frame ages reset on both fill and hit. Ages are measured
/// in cache accesses, coarsened into buckets; hit/eviction age histograms
/// are accumulated online and the EVA table is recomputed periodically
/// with exponential decay of old history. This single-histogram design is
/// exactly the one whose weakness on bimodal metadata reuse the paper
/// demonstrates (Figure 6).
#[derive(Debug, Clone)]
pub struct Eva {
    /// Age coarsening: ages are divided by this before bucketing.
    granularity: u64,
    /// Recompute the EVA table every this many policy events.
    update_period: u64,
    ways: usize,
    /// Per-frame start of the current lifetime (access-counter value).
    birth: Vec<u64>,
    hits: Vec<f64>,
    evictions: Vec<f64>,
    eva: Vec<f64>,
    events: u64,
}

/// Number of age buckets in the histograms.
const BUCKETS: usize = 256;
/// History decay factor applied at each table rebuild.
const DECAY: f64 = 0.5;

impl Eva {
    /// Creates the policy with defaults suited to the 64 KB metadata cache
    /// evaluated in Figure 6 (granularity 16 accesses, update every 4096
    /// events).
    pub fn new() -> Self {
        Self::with_params(16, 4096)
    }

    /// Creates the policy with explicit age granularity and update period.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn with_params(granularity: u64, update_period: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        assert!(update_period > 0, "update period must be positive");
        Self {
            granularity,
            update_period,
            ways: 0,
            birth: Vec::new(),
            hits: vec![0.0; BUCKETS],
            evictions: vec![0.0; BUCKETS],
            // Fresh caches have no history: rank older lines lower so the
            // policy degenerates to LRU-like behaviour until data arrives.
            eva: (0..BUCKETS).map(|b| -(b as f64)).collect(),
            events: 0,
        }
    }

    fn bucket(&self, age: u64) -> usize {
        ((age / self.granularity) as usize).min(BUCKETS - 1)
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(self.update_period) {
            self.rebuild();
        }
    }

    /// Recomputes the EVA table from the histograms. Runs on the hot path
    /// (every `update_period` events), so the scratch tables live on the
    /// stack — `BUCKETS + 1` doubles is ~2 KB per table.
    fn rebuild(&mut self) {
        let mut lines_reaching = [0.0f64; BUCKETS + 1]; // S(a)
        let mut hits_above = [0.0f64; BUCKETS + 1]; // H(a)
        let mut lifetime_above = [0.0f64; BUCKETS + 1]; // sum (x-a+1)(h+e)(x)
        for a in (0..BUCKETS).rev() {
            let ev = self.hits[a] + self.evictions[a];
            lines_reaching[a] = lines_reaching[a + 1] + ev;
            hits_above[a] = hits_above[a + 1] + self.hits[a];
            // Every event at age >= a contributes one more age step when the
            // horizon moves down one bucket.
            lifetime_above[a] = lifetime_above[a + 1] + lines_reaching[a];
        }
        let [total_lines, ..] = lines_reaching;
        let [total_hits, ..] = hits_above;
        let [total_lifetime, ..] = lifetime_above;
        if total_lines < 1.0 || total_lifetime <= 0.0 {
            return; // not enough history yet
        }
        // C: hits per unit of occupied lifetime.
        let c = total_hits / total_lifetime;
        for a in 0..BUCKETS {
            if lines_reaching[a] > 0.0 {
                let p = hits_above[a] / lines_reaching[a];
                let l = lifetime_above[a] / lines_reaching[a];
                self.eva[a] = p - c * l;
            } else {
                // No line has ever survived to this age: treat as worthless.
                self.eva[a] = f64::NEG_INFINITY;
            }
        }
        for v in &mut self.hits {
            *v *= DECAY;
        }
        for v in &mut self.evictions {
            *v *= DECAY;
        }
    }

    /// Current EVA rank for a given (uncoarsened) age; exposed for tests.
    pub fn rank_of_age(&self, age: u64) -> f64 {
        self.eva[self.bucket(age)]
    }

    /// EVA rank of the line resident in `(set, way)` at time `now`, using
    /// this estimator's lifetime tracking. Used by composite policies
    /// (e.g. per-type EVA) that delegate ranking to member estimators.
    pub fn rank_of_frame(&self, set: usize, way: usize, now: u64) -> f64 {
        self.rank_of_age(self.lifetime_age(set, way, now))
    }

    fn lifetime_age(&self, set: usize, way: usize, now: u64) -> u64 {
        now.saturating_sub(self.birth[set * self.ways + way])
    }
}

impl Default for Eva {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Eva {
    fn name(&self) -> &'static str {
        "eva"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.birth = vec![0; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize, now: u64, _kind: BlockKind) {
        // A hit ends one lifetime at the frame's current age and starts a
        // new one; `now` is the access counter of this hit.
        let age = self.lifetime_age(set, way, now);
        let b = self.bucket(age);
        self.hits[b] += 1.0;
        self.birth[set * self.ways + way] = now;
        self.tick();
    }

    fn on_fill(&mut self, set: usize, way: usize, line: &Line) {
        self.birth[set * self.ways + way] = line.insert_at;
    }

    fn on_evict(&mut self, set: usize, way: usize, _line: &Line, now: u64) {
        let age = self.lifetime_age(set, way, now);
        let b = self.bucket(age);
        self.evictions[b] += 1.0;
        self.tick();
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        _lines: &SetView<'_>,
        now: u64,
    ) -> usize {
        let Some(&first) = candidates.first() else {
            debug_assert!(false, "candidate list must not be empty");
            return 0;
        };
        let mut best = first;
        let mut best_eva = f64::INFINITY;
        for &w in candidates {
            let rank = self.rank_of_age(self.lifetime_age(set, w, now));
            if rank < best_eva {
                best_eva = rank;
                best = w;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn cold_table_prefers_older_lines() {
        let eva = Eva::new();
        assert!(eva.rank_of_age(1000) < eva.rank_of_age(0));
    }

    #[test]
    fn learns_to_protect_short_reuse() {
        // Working set of 4 hot blocks in an 8-way set plus a cold scan.
        // After training, hot blocks (short lifetime ages) should rank above
        // scan lines that have aged past every observed hit.
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(512, 8), Eva::with_params(4, 256));
        let mut hits_late = 0u32;
        let mut late_total = 0u32;
        for round in 0..4000u64 {
            for hot in 0..4u64 {
                let r = c.access(hot, BlockKind::Data, false);
                if round > 3000 {
                    late_total += 1;
                    hits_late += u32::from(r.hit);
                }
            }
            let cold = 100 + round;
            c.access(cold, BlockKind::Data, false);
        }
        assert!(
            f64::from(hits_late) > 0.85 * f64::from(late_total),
            "EVA failed to protect hot set: {hits_late}/{late_total}"
        );
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_panics() {
        Eva::with_params(0, 10);
    }

    #[test]
    fn rebuild_with_history_produces_finite_ranks_for_seen_ages() {
        let mut eva = Eva::with_params(1, 1_000_000);
        for _ in 0..100 {
            eva.hits[1] += 1.0;
            eva.evictions[20] += 1.0;
        }
        eva.rebuild();
        assert!(eva.rank_of_age(1).is_finite());
        assert!(eva.rank_of_age(1) > eva.rank_of_age(20));
    }
}
