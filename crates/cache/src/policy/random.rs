//! Random replacement.

use maps_trace::rng::SmallRng;

use super::Policy;
use crate::line::SetView;

/// Random replacement with a deterministic seeded RNG so experiments are
/// reproducible run to run.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    rng: SmallRng,
}

impl RandomEvict {
    /// Creates the policy with a fixed default seed.
    pub fn new() -> Self {
        Self::with_seed(0x5EED)
    }

    /// Creates the policy with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Default for RandomEvict {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for RandomEvict {
    fn name(&self) -> &'static str {
        "random"
    }

    fn init(&mut self, _sets: usize, _ways: usize) {}

    fn choose_victim(
        &mut self,
        _set: usize,
        candidates: &[usize],
        _lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    fn choose_victim_fast(
        &mut self,
        _set: usize,
        candidates: &[usize],
        _now: u64,
    ) -> Option<usize> {
        Some(candidates[self.rng.gen_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut c = SetAssocCache::new(
                CacheConfig::from_bytes(256, 4),
                RandomEvict::with_seed(seed),
            );
            let mut evicted = Vec::new();
            for k in 0..64u64 {
                if let Some(e) = c.access(k, BlockKind::Data, false).evicted {
                    evicted.push(e.key);
                }
            }
            evicted
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn victims_are_valid_candidates() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), RandomEvict::new());
        for k in 0..100u64 {
            if let Some(e) = c.access(k, BlockKind::Data, false).evicted {
                assert!(e.key < k);
            }
        }
    }
}
