//! EVA with per-metadata-type histograms — testing the paper's diagnosis.
//!
//! Section V-A attributes EVA's disappointing metadata results to its
//! single age histogram: "EVA uses one histogram … The bimodal
//! characteristic of metadata reuse distances makes the one histogram
//! approach ineffective." The fix the analysis implies is *classified*
//! EVA: per-type hit/eviction histograms and per-type rank curves —
//! coupled through a **shared** opportunity-cost term, because all types
//! compete for the same frames. (Giving each type its own opportunity
//! cost over-protects low-hit-rate types; see `ablation_eva_types`.)

use super::Policy;
use crate::line::SetView;
use crate::Line;
use maps_trace::BlockKind;

/// Number of age buckets per class histogram.
const BUCKETS: usize = 256;
/// History decay applied at each rebuild.
const DECAY: f64 = 0.5;
/// Block classes: data, counter, hash, tree.
const CLASSES: usize = 4;

fn class_index(kind: BlockKind) -> usize {
    match kind {
        BlockKind::Data => 0,
        BlockKind::Counter => 1,
        BlockKind::Hash => 2,
        BlockKind::Tree(_) => 3,
    }
}

/// Classified EVA: one age histogram and rank curve per block class, with
/// the opportunity cost `C` shared across classes.
#[derive(Debug, Clone)]
pub struct EvaPerType {
    granularity: u64,
    update_period: u64,
    ways: usize,
    /// Per-frame start of the current lifetime.
    birth: Vec<u64>,
    /// Per-class histograms.
    hits: [Vec<f64>; CLASSES],
    evictions: [Vec<f64>; CLASSES],
    /// Per-class EVA rank tables.
    rank: [Vec<f64>; CLASSES],
    events: u64,
}

impl EvaPerType {
    /// Creates the policy with the same default parameters as
    /// [`super::Eva`].
    pub fn new() -> Self {
        Self::with_params(16, 4096)
    }

    /// Creates the policy with explicit age granularity and update period.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn with_params(granularity: u64, update_period: u64) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        assert!(update_period > 0, "update period must be positive");
        let zero = || vec![0.0; BUCKETS];
        // Cold-start ranks fall with age so the policy starts LRU-like.
        let cold = || (0..BUCKETS).map(|b| -(b as f64)).collect::<Vec<_>>();
        Self {
            granularity,
            update_period,
            ways: 0,
            birth: Vec::new(),
            hits: [zero(), zero(), zero(), zero()],
            evictions: [zero(), zero(), zero(), zero()],
            rank: [cold(), cold(), cold(), cold()],
            events: 0,
        }
    }

    fn bucket(&self, age: u64) -> usize {
        ((age / self.granularity) as usize).min(BUCKETS - 1)
    }

    fn lifetime_age(&self, set: usize, way: usize, now: u64) -> u64 {
        now.saturating_sub(self.birth[set * self.ways + way])
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(self.update_period) {
            self.rebuild();
        }
    }

    /// Rebuilds every class's rank table with a shared opportunity cost.
    /// Runs on the hot path (every `update_period` events), so the
    /// per-class scratch tables live on the stack: `CLASSES` triples of
    /// `BUCKETS + 1` doubles is ~25 KB, well under thread-stack budgets.
    fn rebuild(&mut self) {
        let mut total_hits = 0.0;
        let mut total_lifetime = 0.0;
        type Scratch = ([f64; BUCKETS + 1], [f64; BUCKETS + 1], [f64; BUCKETS + 1]);
        let mut per_class: [Scratch; CLASSES] =
            [([0.0; BUCKETS + 1], [0.0; BUCKETS + 1], [0.0; BUCKETS + 1]); CLASSES];
        for (c, (lines_reaching, hits_above, lifetime_above)) in per_class.iter_mut().enumerate() {
            for a in (0..BUCKETS).rev() {
                let ev = self.hits[c][a] + self.evictions[c][a];
                lines_reaching[a] = lines_reaching[a + 1] + ev;
                hits_above[a] = hits_above[a + 1] + self.hits[c][a];
                lifetime_above[a] = lifetime_above[a + 1] + lines_reaching[a];
            }
            let [class_hits, ..] = *hits_above;
            let [class_lifetime, ..] = *lifetime_above;
            total_hits += class_hits;
            total_lifetime += class_lifetime;
        }
        if total_lifetime <= 0.0 || total_hits + total_lifetime < 1.0 {
            return; // not enough history yet
        }
        // Shared opportunity cost: hits per frame-cycle across all types.
        let c_shared = total_hits / total_lifetime;
        for (c, (lines_reaching, hits_above, lifetime_above)) in per_class.iter().enumerate() {
            for a in 0..BUCKETS {
                self.rank[c][a] = if lines_reaching[a] > 0.0 {
                    let p = hits_above[a] / lines_reaching[a];
                    let l = lifetime_above[a] / lines_reaching[a];
                    p - c_shared * l
                } else {
                    f64::NEG_INFINITY
                };
            }
        }
        for c in 0..CLASSES {
            for v in &mut self.hits[c] {
                *v *= DECAY;
            }
            for v in &mut self.evictions[c] {
                *v *= DECAY;
            }
        }
    }

    /// Rank of a line of class `kind` at (uncoarsened) age; for tests.
    pub fn rank_of(&self, kind: BlockKind, age: u64) -> f64 {
        self.rank[class_index(kind)][self.bucket(age)]
    }
}

impl Default for EvaPerType {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for EvaPerType {
    fn name(&self) -> &'static str {
        "eva-per-type"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.birth = vec![0; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize, now: u64, kind: BlockKind) {
        let age = self.lifetime_age(set, way, now);
        let b = self.bucket(age);
        self.hits[class_index(kind)][b] += 1.0;
        self.birth[set * self.ways + way] = now;
        self.tick();
    }

    fn on_fill(&mut self, set: usize, way: usize, line: &Line) {
        self.birth[set * self.ways + way] = line.insert_at;
    }

    fn on_evict(&mut self, set: usize, way: usize, line: &Line, now: u64) {
        let age = self.lifetime_age(set, way, now);
        let b = self.bucket(age);
        self.evictions[class_index(line.kind)][b] += 1.0;
        self.tick();
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        now: u64,
    ) -> usize {
        let Some(&first) = candidates.first() else {
            debug_assert!(false, "candidate list must not be empty");
            return 0;
        };
        let mut best = first;
        let mut best_rank = f64::INFINITY;
        for &w in candidates {
            let line = lines.line(w);
            let rank = self.rank_of(line.kind, self.lifetime_age(set, w, now));
            if rank < best_rank {
                best_rank = rank;
                best = w;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Eva;
    use crate::{CacheConfig, SetAssocCache};

    #[test]
    fn separates_types_with_different_reuse() {
        // Counters rereferenced every 4 accesses; hashes stream cold.
        let mut c = SetAssocCache::new(
            CacheConfig::from_bytes(512, 8),
            EvaPerType::with_params(4, 256),
        );
        let mut ctr_hits = 0u64;
        let mut ctr_total = 0u64;
        for round in 0..4000u64 {
            for hot in 0..3u64 {
                let r = c.access(hot, BlockKind::Counter, false);
                if round > 3000 {
                    ctr_total += 1;
                    ctr_hits += u64::from(r.hit);
                }
            }
            c.access(1000 + round, BlockKind::Hash, false);
        }
        assert!(
            ctr_hits as f64 > 0.85 * ctr_total as f64,
            "counters not protected: {ctr_hits}/{ctr_total}"
        );
    }

    #[test]
    fn behaves_like_eva_for_a_single_type() {
        let keys: Vec<u64> = (0..2000).map(|i| (i * 7) % 64).collect();
        let mut per_type = SetAssocCache::new(
            CacheConfig::from_bytes(1024, 8),
            EvaPerType::with_params(8, 512),
        );
        let mut vanilla =
            SetAssocCache::new(CacheConfig::from_bytes(1024, 8), Eva::with_params(8, 512));
        let (mut a, mut b) = (0u64, 0u64);
        for &k in &keys {
            a += u64::from(per_type.access(k, BlockKind::Hash, false).hit);
            b += u64::from(vanilla.access(k, BlockKind::Hash, false).hit);
        }
        let diff = (a as f64 - b as f64).abs() / keys.len() as f64;
        assert!(diff < 0.05, "single-type behaviour diverged: {a} vs {b}");
    }

    #[test]
    fn stats_stay_consistent() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(2048, 8), EvaPerType::new());
        for i in 0..3000u64 {
            let kind = match i % 3 {
                0 => BlockKind::Counter,
                1 => BlockKind::Hash,
                _ => BlockKind::Tree(0),
            };
            c.access(i % 300, kind, i % 5 == 0);
        }
        let t = c.stats().total();
        assert_eq!(t.accesses, 3000);
        assert_eq!(t.accesses, t.hits + t.misses);
    }

    #[test]
    fn trained_ranks_differ_across_types() {
        let mut c = SetAssocCache::new(
            CacheConfig::from_bytes(512, 8),
            EvaPerType::with_params(4, 128),
        );
        for round in 0..2000u64 {
            c.access(round % 4, BlockKind::Counter, false);
            c.access(1000 + round, BlockKind::Hash, false);
        }
        // Counters hit at short ages; streaming hashes never hit. The
        // trained tables must reflect that at the counters' typical age.
        let p = c.policy();
        assert!(p.rank_of(BlockKind::Counter, 8) > p.rank_of(BlockKind::Hash, 8));
    }
}
