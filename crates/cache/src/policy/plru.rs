//! Tree-based pseudo-LRU replacement.

use maps_trace::BlockKind;

use super::{argmin_by, Policy};
use crate::line::SetView;
use crate::Line;

/// Tree pseudo-LRU: one bit per internal node of a binary tree over the
/// ways; hits flip bits away from the touched way, victims follow the bits.
///
/// This is the "pseudo-LRU" the paper evaluates as the conventional
/// hardware baseline (Figure 6). When a way-partition restricts the
/// candidate set and the tree walk lands outside it, the policy falls back
/// to exact LRU *within* the candidates, which mirrors how partitioned
/// hardware PLRU restricts its tree per partition.
///
/// # Panics
///
/// `init` panics if the associativity is not a power of two.
#[derive(Debug, Clone, Default)]
pub struct TreePlru {
    ways: usize,
    /// `ways - 1` bits per set, packed per set as a `u64`.
    bits: Vec<u64>,
    /// Per-way path masks: a touch of `way` is
    /// `bits = (bits & !touch_clear[way]) | touch_set[way]`. Precomputed in
    /// `init` so the hot hit/fill callbacks are two mask ops instead of a
    /// root-ward loop.
    touch_clear: Vec<u64>,
    touch_set: Vec<u64>,
    /// Victim way per PLRU bit state (`2^(ways-1)` entries, built for
    /// associativities up to 8; empty otherwise, falling back to the walk).
    victim_lut: Vec<u8>,
}

impl TreePlru {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks from the root toward the leaf indicated by `bits` (the LUT
    /// generator, and the fallback for associativities above 8).
    fn walk_victim(&self, bits: u64) -> usize {
        let mut node = 0usize; // index into the implicit tree, 0 = root
        let levels = self.ways.trailing_zeros();
        for _ in 0..levels {
            let bit = (bits >> node) & 1;
            node = 2 * node + 1 + bit as usize;
        }
        node - (self.ways - 1)
    }

    /// The victim the current bit state points at.
    fn victim_way(&self, set: usize) -> usize {
        let bits = self.bits[set];
        match self.victim_lut.as_slice() {
            [] => self.walk_victim(bits),
            lut => lut[(bits & (lut.len() as u64 - 1)) as usize] as usize,
        }
    }

    /// Points every bit on the root-to-leaf path away from `way`.
    fn touch(&mut self, set: usize, way: usize) {
        self.bits[set] = (self.bits[set] & !self.touch_clear[way]) | self.touch_set[way];
    }

    /// Computes `way`'s path masks by running the root-ward update loop.
    fn path_masks(&self, way: usize) -> (u64, u64) {
        let (mut clear, mut set) = (0u64, 0u64);
        let mut node = way + (self.ways - 1);
        while node > 0 {
            let parent = (node - 1) / 2;
            // Make the parent's bit point to the *other* child.
            if node == 2 * parent + 2 {
                clear |= 1 << parent;
            } else {
                set |= 1 << parent;
            }
            node = parent;
        }
        (clear, set)
    }
}

impl Policy for TreePlru {
    fn name(&self) -> &'static str {
        "pseudo-lru"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        debug_assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires power-of-two ways, got {ways}"
        );
        debug_assert!(ways <= 64, "tree-PLRU supports at most 64 ways");
        self.ways = ways;
        self.bits = vec![0; sets];
        let masks: Vec<(u64, u64)> = (0..ways).map(|w| self.path_masks(w)).collect();
        self.touch_clear = masks.iter().map(|&(c, _)| c).collect();
        self.touch_set = masks.iter().map(|&(_, s)| s).collect();
        self.victim_lut = if ways <= 8 {
            (0..1u64 << (ways - 1))
                .map(|bits| self.walk_victim(bits) as u8)
                .collect()
        } else {
            Vec::new()
        };
    }

    fn on_hit(&mut self, set: usize, way: usize, _now: u64, _kind: BlockKind) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: &Line) {
        self.touch(set, way);
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        let way = self.victim_way(set);
        if candidates.contains(&way) {
            way
        } else {
            argmin_by(candidates, lines, |l| l.last_at)
        }
    }

    fn choose_victim_fast(&mut self, set: usize, candidates: &[usize], _now: u64) -> Option<usize> {
        let way = self.victim_way(set);
        candidates.contains(&way).then_some(way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn single_way_tree_is_trivial() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(64, 1), TreePlru::new());
        c.access(1, BlockKind::Data, false);
        let r = c.access(2, BlockKind::Data, false);
        assert_eq!(r.evicted.unwrap().key, 1);
    }

    #[test]
    fn plru_avoids_most_recently_used() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TreePlru::new());
        for k in 0..4u64 {
            c.access(k, BlockKind::Data, false);
        }
        // 3 was just touched; the victim must not be 3.
        let r = c.access(10, BlockKind::Data, false);
        assert_ne!(r.evicted.unwrap().key, 3);
    }

    #[test]
    fn plru_tracks_lru_on_sequential_fill() {
        // After filling ways in order 0..4 with no rereferences, PLRU's
        // victim is way 0 (true LRU agrees).
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TreePlru::new());
        for k in 0..4u64 {
            c.access(k, BlockKind::Data, false);
        }
        let r = c.access(20, BlockKind::Data, false);
        assert_eq!(r.evicted.unwrap().key, 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_ways_panics() {
        let mut p = TreePlru::new();
        p.init(4, 3);
    }

    #[test]
    fn hit_rate_close_to_true_lru_on_looping_trace() {
        use crate::policy::TrueLru;
        let keys: Vec<u64> = (0..1000).map(|i| (i * 13) % 40).collect();
        let mut plru = SetAssocCache::new(CacheConfig::from_bytes(2048, 8), TreePlru::new());
        let mut lru = SetAssocCache::new(CacheConfig::from_bytes(2048, 8), TrueLru::new());
        let (mut h1, mut h2) = (0u32, 0u32);
        for &k in &keys {
            h1 += u32::from(plru.access(k, BlockKind::Data, false).hit);
            h2 += u32::from(lru.access(k, BlockKind::Data, false).hit);
        }
        let diff = (f64::from(h1) - f64::from(h2)).abs() / keys.len() as f64;
        assert!(diff < 0.15, "PLRU diverged from LRU by {diff}");
    }
}
