//! Runtime-selected policy via enum dispatch.

use maps_trace::BlockKind;

use super::{
    CostAware, Drrip, Eva, EvaPerType, Fifo, MinOracle, Policy, RandomEvict, Srrip, TraceMin,
    TreePlru, TrueLru,
};
use crate::line::SetView;
use crate::Line;

/// A replacement policy chosen at run time.
///
/// Wraps every concrete policy behind one enum so simulators can switch
/// policies from configuration without generics, at the cost of one match
/// per callback.
///
/// # Examples
///
/// ```
/// use maps_cache::policy::AnyPolicy;
/// use maps_cache::{CacheConfig, SetAssocCache};
/// use maps_trace::BlockKind;
///
/// for policy in [AnyPolicy::true_lru(), AnyPolicy::pseudo_lru(), AnyPolicy::eva()] {
///     let mut c = SetAssocCache::new(CacheConfig::from_bytes(4096, 8), policy);
///     c.access(1, BlockKind::Counter, false);
/// }
/// ```
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // enum dispatch trades size for zero indirection
pub enum AnyPolicy {
    /// Exact LRU.
    TrueLru(TrueLru),
    /// Tree pseudo-LRU.
    TreePlru(TreePlru),
    /// FIFO.
    Fifo(Fifo),
    /// Seeded random.
    Random(RandomEvict),
    /// SRRIP.
    Srrip(Srrip),
    /// EVA.
    Eva(Eva),
    /// Belady MIN with a divergence-tolerant keyed oracle.
    Min(MinOracle),
    /// Belady MIN with the paper's positional (divergence-fragile) oracle.
    TraceMin(TraceMin),
    /// Cost-aware, type-aware eviction (Section VI's future-work policy).
    CostAware(CostAware),
    /// DRRIP (dynamic re-reference interval prediction).
    Drrip(Drrip),
    /// EVA with per-metadata-type histograms.
    EvaPerType(EvaPerType),
}

impl AnyPolicy {
    /// Exact LRU.
    pub fn true_lru() -> Self {
        AnyPolicy::TrueLru(TrueLru::new())
    }

    /// Tree pseudo-LRU (the paper's hardware baseline).
    pub fn pseudo_lru() -> Self {
        AnyPolicy::TreePlru(TreePlru::new())
    }

    /// FIFO.
    pub fn fifo() -> Self {
        AnyPolicy::Fifo(Fifo::new())
    }

    /// Seeded random replacement.
    pub fn random(seed: u64) -> Self {
        AnyPolicy::Random(RandomEvict::with_seed(seed))
    }

    /// SRRIP.
    pub fn srrip() -> Self {
        AnyPolicy::Srrip(Srrip::new())
    }

    /// EVA with default parameters.
    pub fn eva() -> Self {
        AnyPolicy::Eva(Eva::new())
    }

    /// Belady MIN over a recorded key trace (keyed, divergence-tolerant).
    pub fn min_from_trace(trace: &[u64]) -> Self {
        AnyPolicy::Min(MinOracle::from_trace(trace))
    }

    /// Belady MIN with the paper's positional future knowledge, which goes
    /// stale once the live stream diverges from the recorded trace.
    pub fn trace_min_from_trace(trace: &[u64]) -> Self {
        AnyPolicy::TraceMin(TraceMin::from_trace(trace))
    }

    /// Cost-aware eviction weighting counters by their tree-walk cost.
    pub fn cost_aware(counter_cost: u64) -> Self {
        AnyPolicy::CostAware(CostAware::new(counter_cost))
    }

    /// DRRIP with set dueling between SRRIP and BRRIP insertion.
    pub fn drrip() -> Self {
        AnyPolicy::Drrip(Drrip::new())
    }

    /// EVA with one histogram per metadata type (tests the paper's
    /// diagnosis that the single histogram is EVA's weakness).
    pub fn eva_per_type() -> Self {
        AnyPolicy::EvaPerType(EvaPerType::new())
    }

    /// Whether this policy is a Mattson stack algorithm: for a fixed set
    /// count, growing associativity can never turn a hit into a miss
    /// (the inclusion property). Exact LRU and Belady MIN are stack
    /// algorithms; the approximations and adaptive policies are not (and
    /// are conservatively reported as such).
    pub fn is_stack_algorithm(&self) -> bool {
        matches!(self, AnyPolicy::TrueLru(_) | AnyPolicy::Min(_))
    }
}

macro_rules! delegate {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::TrueLru($p) => $body,
            AnyPolicy::TreePlru($p) => $body,
            AnyPolicy::Fifo($p) => $body,
            AnyPolicy::Random($p) => $body,
            AnyPolicy::Srrip($p) => $body,
            AnyPolicy::Eva($p) => $body,
            AnyPolicy::Min($p) => $body,
            AnyPolicy::TraceMin($p) => $body,
            AnyPolicy::CostAware($p) => $body,
            AnyPolicy::Drrip($p) => $body,
            AnyPolicy::EvaPerType($p) => $body,
        }
    };
}

impl Policy for AnyPolicy {
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }

    fn init(&mut self, sets: usize, ways: usize) {
        delegate!(self, p => p.init(sets, ways));
    }

    fn begin_access(&mut self, time: u64, key: u64) {
        delegate!(self, p => p.begin_access(time, key));
    }

    fn on_hit(&mut self, set: usize, way: usize, now: u64, kind: BlockKind) {
        delegate!(self, p => p.on_hit(set, way, now, kind));
    }

    fn on_fill(&mut self, set: usize, way: usize, line: &Line) {
        delegate!(self, p => p.on_fill(set, way, line));
    }

    fn on_evict(&mut self, set: usize, way: usize, line: &Line, now: u64) {
        delegate!(self, p => p.on_evict(set, way, line, now));
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        now: u64,
    ) -> usize {
        delegate!(self, p => p.choose_victim(set, candidates, lines, now))
    }

    fn choose_victim_fast(&mut self, set: usize, candidates: &[usize], now: u64) -> Option<usize> {
        delegate!(self, p => p.choose_victim_fast(set, candidates, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn names_are_distinct() {
        let policies = [
            AnyPolicy::true_lru(),
            AnyPolicy::pseudo_lru(),
            AnyPolicy::fifo(),
            AnyPolicy::random(1),
            AnyPolicy::srrip(),
            AnyPolicy::eva(),
            AnyPolicy::min_from_trace(&[]),
            AnyPolicy::trace_min_from_trace(&[]),
            AnyPolicy::cost_aware(5),
            AnyPolicy::drrip(),
            AnyPolicy::eva_per_type(),
        ];
        let names: Vec<_> = policies.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn any_policy_behaves_like_wrapped_policy() {
        let keys: Vec<u64> = (0..500).map(|i| (i * 11) % 37).collect();
        let mut direct = SetAssocCache::new(CacheConfig::from_bytes(1024, 4), TrueLru::new());
        let mut wrapped =
            SetAssocCache::new(CacheConfig::from_bytes(1024, 4), AnyPolicy::true_lru());
        for &k in &keys {
            assert_eq!(
                direct.access(k, BlockKind::Data, false).hit,
                wrapped.access(k, BlockKind::Data, false).hit
            );
        }
    }
}
