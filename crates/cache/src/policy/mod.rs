//! Replacement policies.
//!
//! The paper evaluates pseudo-LRU, EVA, Belady's MIN and an iterated MIN on
//! the metadata cache (Figure 6) and finds that none of them — not even the
//! "optimal" MIN — handles metadata's bimodal reuse and non-uniform miss
//! costs well. This module implements all of them plus standard baselines.

mod any;
mod cost_aware;
mod drrip;
mod eva;
mod eva_per_type;
mod fifo;
mod min;
mod plru;
mod random;
mod srrip;
mod trace_min;
mod true_lru;

pub use any::AnyPolicy;
pub use cost_aware::CostAware;
pub use drrip::Drrip;
pub use eva::Eva;
pub use eva_per_type::EvaPerType;
pub use fifo::Fifo;
pub use min::MinOracle;
pub use plru::TreePlru;
pub use random::RandomEvict;
pub use srrip::Srrip;
pub use trace_min::TraceMin;
pub use true_lru::TrueLru;

use maps_trace::BlockKind;

use crate::line::SetView;
use crate::Line;

/// A cache replacement policy.
///
/// The cache core owns the lines; policies receive callbacks on hits, fills,
/// and evictions, and choose victims among a candidate way list (the
/// candidate list is narrowed by way partitioning when active). Per-line
/// recency/insertion timestamps are maintained by the core and available on
/// each [`Line`], so stateless policies like LRU and FIFO need no storage of
/// their own. Victim selection receives a [`SetView`] rather than raw line
/// storage, so the same policies drive both the struct-of-arrays production
/// cache and the array-of-structs oracle specification.
pub trait Policy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Sizes per-set state. Called once by the cache constructor.
    fn init(&mut self, sets: usize, ways: usize);

    /// Called at the start of every cache access with the access counter
    /// and the key being accessed (used by oracle policies).
    fn begin_access(&mut self, _time: u64, _key: u64) {}

    /// Called when `key` hits in `(set, way)`. `now` is the access counter
    /// (the line's refreshed `last_at`) and `kind` the resident line's
    /// classification — passed as scalars so the cache core never has to
    /// materialize a [`Line`] from its column store on the hit path.
    fn on_hit(&mut self, _set: usize, _way: usize, _now: u64, _kind: BlockKind) {}

    /// Called when a line is filled into `(set, way)`.
    fn on_fill(&mut self, _set: usize, _way: usize, _line: &Line) {}

    /// Called when a line is evicted from `(set, way)`; `now` is the access
    /// counter, so `line.age(now)` is the line's final age.
    fn on_evict(&mut self, _set: usize, _way: usize, _line: &Line, _now: u64) {}

    /// Chooses a victim way among `candidates` (never empty; every
    /// candidate way holds a valid line).
    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        now: u64,
    ) -> usize;

    /// Victim selection without line state, for policies whose decision
    /// needs none (tree-PLRU bits, a seeded RNG). Returning `Some(way)`
    /// must match what [`Policy::choose_victim`] would pick; `None` (the
    /// default) makes the cache assemble a [`SetView`] and call it. Fills
    /// are the busiest path of the metadata-cache simulation, so skipping
    /// the view construction is worth the dual entry point.
    fn choose_victim_fast(
        &mut self,
        _set: usize,
        _candidates: &[usize],
        _now: u64,
    ) -> Option<usize> {
        None
    }
}

/// Helper: candidate whose line minimizes a key function. First minimum
/// wins (matching `Iterator::min_by_key`); an empty candidate list is
/// debug-checked and falls back to way 0 rather than aborting the replay.
pub(crate) fn argmin_by<F: FnMut(&Line) -> u64>(
    candidates: &[usize],
    lines: &SetView<'_>,
    mut score: F,
) -> usize {
    let Some((&first, rest)) = candidates.split_first() else {
        debug_assert!(false, "candidate list must not be empty");
        return 0;
    };
    let mut best = first;
    let mut best_score = score(&lines.line(first));
    for &w in rest {
        let s = score(&lines.line(w));
        if s < best_score {
            best_score = s;
            best = w;
        }
    }
    best
}
