//! Replacement policies.
//!
//! The paper evaluates pseudo-LRU, EVA, Belady's MIN and an iterated MIN on
//! the metadata cache (Figure 6) and finds that none of them — not even the
//! "optimal" MIN — handles metadata's bimodal reuse and non-uniform miss
//! costs well. This module implements all of them plus standard baselines.

mod any;
mod cost_aware;
mod drrip;
mod eva;
mod eva_per_type;
mod fifo;
mod min;
mod plru;
mod random;
mod srrip;
mod trace_min;
mod true_lru;

pub use any::AnyPolicy;
pub use cost_aware::CostAware;
pub use drrip::Drrip;
pub use eva::Eva;
pub use eva_per_type::EvaPerType;
pub use fifo::Fifo;
pub use min::MinOracle;
pub use plru::TreePlru;
pub use random::RandomEvict;
pub use srrip::Srrip;
pub use trace_min::TraceMin;
pub use true_lru::TrueLru;

use crate::Line;

/// A cache replacement policy.
///
/// The cache core owns the lines; policies receive callbacks on hits, fills,
/// and evictions, and choose victims among a candidate way list (the
/// candidate list is narrowed by way partitioning when active). Per-line
/// recency/insertion timestamps are maintained by the core and available on
/// each [`Line`], so stateless policies like LRU and FIFO need no storage of
/// their own.
pub trait Policy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Sizes per-set state. Called once by the cache constructor.
    fn init(&mut self, sets: usize, ways: usize);

    /// Called at the start of every cache access with the access counter
    /// and the key being accessed (used by oracle policies).
    fn begin_access(&mut self, _time: u64, _key: u64) {}

    /// Called when `key` hits in `(set, way)`.
    fn on_hit(&mut self, _set: usize, _way: usize, _line: &Line) {}

    /// Called when a line is filled into `(set, way)`.
    fn on_fill(&mut self, _set: usize, _way: usize, _line: &Line) {}

    /// Called when a line is evicted from `(set, way)`; `now` is the access
    /// counter, so `line.age(now)` is the line's final age.
    fn on_evict(&mut self, _set: usize, _way: usize, _line: &Line, _now: u64) {}

    /// Chooses a victim way among `candidates` (never empty; every
    /// candidate way holds a valid line).
    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        lines: &[Option<Line>],
        now: u64,
    ) -> usize;
}

/// Helper: candidate whose line minimizes a key function.
pub(crate) fn argmin_by<F: FnMut(&Line) -> u64>(
    candidates: &[usize],
    lines: &[Option<Line>],
    mut score: F,
) -> usize {
    *candidates
        .iter()
        .min_by_key(|&&w| score(lines[w].as_ref().expect("candidate way must hold a line")))
        .expect("candidate list must not be empty")
}
