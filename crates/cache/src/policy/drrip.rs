//! Dynamic re-reference interval prediction (DRRIP).

use maps_trace::BlockKind;

use super::Policy;
use crate::line::SetView;
use crate::psel::PselCounter;
use crate::Line;
use maps_trace::rng::SmallRng;

/// DRRIP (Jaleel et al., ISCA 2010): set-dueling between SRRIP insertion
/// (RRPV = max-1) and bimodal BRRIP insertion (usually RRPV = max,
/// occasionally max-1), with follower sets tracking the winning leader.
///
/// Completes the reuse-prediction policy family the paper points to in
/// Section IV-D; like EVA, its global duel cannot distinguish metadata
/// *types*, which is exactly the gap the paper identifies.
#[derive(Debug, Clone)]
pub struct Drrip {
    ways: usize,
    rrpv: Vec<u8>,
    /// Per-set role: 0 = SRRIP leader, 1 = BRRIP leader, 2 = follower.
    roles: Vec<u8>,
    /// Shared set-dueling selector; SRRIP is side "A", BRRIP side "B"
    /// (sign/tie convention documented on [`crate::psel`]).
    psel: PselCounter,
    rng: SmallRng,
}

const MAX_RRPV: u8 = 3;
/// BRRIP inserts at max-1 once every this many fills.
const BRRIP_LONG_PERIOD: u32 = 32;
/// Leader sets per policy side (spread uniformly).
const LEADERS_PER_SIDE: usize = 4;

impl Drrip {
    /// Creates the policy with a fixed duel seed.
    pub fn new() -> Self {
        Self::with_seed(0xD881)
    }

    /// Creates the policy with an explicit seed for the bimodal choice.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            ways: 0,
            rrpv: Vec::new(),
            roles: Vec::new(),
            psel: PselCounter::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn uses_brrip(&self, set: usize) -> bool {
        match self.roles[set] {
            0 => false,
            1 => true,
            _ => self.psel.prefers_b(),
        }
    }

    /// Current selector value (positive favours BRRIP), for tests.
    #[cfg(test)]
    fn selector(&self) -> i32 {
        self.psel.value()
    }
}

impl Default for Drrip {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for Drrip {
    fn name(&self) -> &'static str {
        "drrip"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = vec![MAX_RRPV; sets * ways];
        self.roles = vec![2; sets];
        if sets >= 2 * LEADERS_PER_SIDE {
            let stride = sets / (2 * LEADERS_PER_SIDE);
            for i in 0..LEADERS_PER_SIDE {
                self.roles[2 * i * stride] = 0;
                self.roles[(2 * i + 1) * stride] = 1;
            }
        } else if let [a, b, ..] = self.roles.as_mut_slice() {
            *a = 0;
            *b = 1;
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _now: u64, _kind: BlockKind) {
        let s = self.slot(set, way);
        self.rrpv[s] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: &Line) {
        // A fill means the access missed: leaders vote.
        match self.roles[set] {
            0 => self.psel.record_a_miss(),
            1 => self.psel.record_b_miss(),
            _ => {}
        }
        let s = self.slot(set, way);
        self.rrpv[s] = if self.uses_brrip(set) {
            if self.rng.gen_ratio(1, BRRIP_LONG_PERIOD) {
                MAX_RRPV - 1
            } else {
                MAX_RRPV
            }
        } else {
            MAX_RRPV - 1
        };
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        _lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        loop {
            if let Some(&way) = candidates
                .iter()
                .find(|&&w| self.rrpv[set * self.ways + w] == MAX_RRPV)
            {
                return way;
            }
            for &w in candidates {
                let s = set * self.ways + w;
                self.rrpv[s] = (self.rrpv[s] + 1).min(MAX_RRPV);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn roles_are_assigned_per_side() {
        let mut d = Drrip::new();
        d.init(64, 8);
        let srrip = d.roles.iter().filter(|&&r| r == 0).count();
        let brrip = d.roles.iter().filter(|&&r| r == 1).count();
        assert_eq!((srrip, brrip), (LEADERS_PER_SIDE, LEADERS_PER_SIDE));
    }

    #[test]
    fn tiny_caches_still_get_both_leaders() {
        let mut d = Drrip::new();
        d.init(2, 4);
        assert_eq!(d.roles[0], 0);
        assert_eq!(d.roles[1], 1);
    }

    #[test]
    fn followers_duel_from_the_srrip_side_and_saturate_symmetrically() {
        use crate::psel::PSEL_MAX;
        let mut d = Drrip::new();
        d.init(64, 8);
        let follower = d.roles.iter().position(|&r| r == 2).unwrap();
        // psel == 0: followers insert like SRRIP (tie goes to side A).
        assert_eq!(d.selector(), 0);
        assert!(!d.uses_brrip(follower));
        // Fills in SRRIP leaders vote toward BRRIP and saturate at +1024,
        // mirroring the partition controller's bound exactly.
        let srrip_leader = d.roles.iter().position(|&r| r == 0).unwrap();
        let brrip_leader = d.roles.iter().position(|&r| r == 1).unwrap();
        let line = Line::filled(0, maps_trace::BlockKind::Data, 0);
        for _ in 0..3000 {
            d.on_fill(srrip_leader, 0, &line);
        }
        assert_eq!(d.selector(), PSEL_MAX);
        assert!(d.uses_brrip(follower));
        for _ in 0..6000 {
            d.on_fill(brrip_leader, 0, &line);
        }
        assert_eq!(d.selector(), -PSEL_MAX);
        assert!(!d.uses_brrip(follower));
    }

    #[test]
    fn thrash_resistant_on_scanning_pattern() {
        // A cyclic scan larger than the cache: BRRIP keeps a fraction of
        // the working set resident, so DRRIP should beat plain SRRIP.
        let scan: Vec<u64> = (0..4000).map(|i| i % 48).collect();
        let mut drrip = SetAssocCache::new(CacheConfig::from_bytes(2048, 8), Drrip::new());
        let mut srrip = SetAssocCache::new(
            CacheConfig::from_bytes(2048, 8),
            crate::policy::Srrip::new(),
        );
        let (mut hd, mut hs) = (0u64, 0u64);
        for &k in &scan {
            hd += u64::from(drrip.access(k, BlockKind::Data, false).hit);
            hs += u64::from(srrip.access(k, BlockKind::Data, false).hit);
        }
        assert!(
            hd + 50 >= hs,
            "DRRIP ({hd}) should not lose badly to SRRIP ({hs})"
        );
    }

    #[test]
    fn behaves_sanely_under_mixed_traffic() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(4096, 8), Drrip::new());
        for i in 0..5000u64 {
            c.access(i % 200, BlockKind::Data, i % 7 == 0);
        }
        let t = c.stats().total();
        assert_eq!(t.accesses, 5000);
        assert!(t.hits > 0);
    }
}
