//! Paper-faithful Belady MIN with *positional* future knowledge.

use maps_trace::BlockKind;

use super::Policy;
use crate::line::SetView;
use crate::Line;

/// Belady's MIN driven by trace positions, exactly as Section V-B builds
/// it: the recorded trace's `next_use` array is indexed by access
/// *position*, and each line remembers the next-use recorded at the
/// position where it was last touched.
///
/// This is deliberately not robust to divergence: "once it makes a
/// replacement decision that deviates from true-LRU … changing the
/// contents of the cache changes future accesses in ways that deviate from
/// the trace", so the oracle silently consumes stale knowledge — the
/// pathology Figure 6 demonstrates. For a divergence-tolerant oracle, see
/// [`super::MinOracle`].
#[derive(Debug, Clone, Default)]
pub struct TraceMin {
    /// `next_use[i]`: position of the next access to the block accessed at
    /// position `i` in the recorded trace, or `NEVER`.
    next_use: Vec<u64>,
    ways: usize,
    /// Per-frame next-use as recorded at the position of its last touch.
    line_next: Vec<u64>,
    /// Current access position (the cache's access counter).
    pos: u64,
}

/// Sentinel for "never used again".
const NEVER: u64 = u64::MAX;

impl TraceMin {
    /// Builds the oracle from a recorded key trace.
    pub fn from_trace(trace: &[u64]) -> Self {
        let mut next_use = vec![NEVER; trace.len()];
        let mut last: maps_trace::det::DetHashMap<u64, usize> = Default::default();
        for (i, &k) in trace.iter().enumerate() {
            if let Some(&p) = last.get(&k) {
                next_use[p] = i as u64;
            }
            last.insert(k, i);
        }
        Self {
            next_use,
            ways: 0,
            line_next: Vec::new(),
            pos: 0,
        }
    }

    fn recorded_next(&self, pos: u64) -> u64 {
        self.next_use.get(pos as usize).copied().unwrap_or(NEVER)
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl Policy for TraceMin {
    fn name(&self) -> &'static str {
        "trace-min"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.line_next = vec![NEVER; sets * ways];
    }

    fn begin_access(&mut self, time: u64, _key: u64) {
        self.pos = time;
    }

    fn on_hit(&mut self, set: usize, way: usize, _now: u64, _kind: BlockKind) {
        let s = self.slot(set, way);
        self.line_next[s] = self.recorded_next(self.pos);
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: &Line) {
        let s = self.slot(set, way);
        self.line_next[s] = self.recorded_next(self.pos);
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        _lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        let Some(&first) = candidates.first() else {
            debug_assert!(false, "candidate list must not be empty");
            return 0;
        };
        let mut best = first;
        let mut farthest = 0u64;
        for &w in candidates {
            let next = self.line_next[set * self.ways + w];
            if next >= farthest {
                farthest = next;
                best = w;
                if next == NEVER {
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TrueLru;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    fn misses<P: Policy>(trace: &[u64], cache: &mut SetAssocCache<P>) -> u64 {
        trace
            .iter()
            .filter(|&&k| !cache.access(k, BlockKind::Data, false).hit)
            .count() as u64
    }

    #[test]
    fn matches_keyed_min_when_replay_equals_trace() {
        // When the live stream IS the recorded trace, positional MIN is
        // exact Belady and must beat or match LRU.
        let trace: Vec<u64> = (0..60).map(|i| i % 5).collect();
        let mut tm = SetAssocCache::new(
            CacheConfig::from_bytes(256, 4),
            TraceMin::from_trace(&trace),
        );
        let mut lru = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        assert!(misses(&trace, &mut tm) <= misses(&trace, &mut lru));
    }

    #[test]
    fn equals_exact_belady_count_on_faithful_replay() {
        let trace: Vec<u64> = (0..40).map(|i| (i * 7) % 9).collect();
        let mut tm = SetAssocCache::new(
            CacheConfig::from_bytes(192, 3),
            TraceMin::from_trace(&trace),
        );
        let got = misses(&trace, &mut tm);
        let want = crate::belady_misses(&trace, 3);
        assert_eq!(got, want);
    }

    #[test]
    fn stale_knowledge_on_divergent_stream_does_not_crash() {
        let trace: Vec<u64> = (0..20).collect();
        let mut tm = SetAssocCache::new(
            CacheConfig::from_bytes(128, 2),
            TraceMin::from_trace(&trace),
        );
        // Live stream completely different from the trace.
        for k in 100..150u64 {
            tm.access(k, BlockKind::Data, false);
        }
        assert_eq!(tm.stats().total().accesses, 50);
    }
}
