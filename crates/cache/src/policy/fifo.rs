//! First-in first-out replacement.

use super::{argmin_by, Policy};
use crate::line::SetView;

/// FIFO: evicts the candidate that was filled longest ago, regardless of
/// intervening hits. A baseline policy; not in the paper's Figure 6 but
/// useful for sanity checks and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Fifo {
    /// Creates the policy.
    pub const fn new() -> Self {
        Self
    }
}

impl Policy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn init(&mut self, _sets: usize, _ways: usize) {}

    fn choose_victim(
        &mut self,
        _set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        argmin_by(candidates, lines, |l| l.insert_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn ignores_hits() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(128, 2), Fifo::new());
        c.access(1, BlockKind::Data, false);
        c.access(2, BlockKind::Data, false);
        // Rehit 1; FIFO still evicts 1 (oldest fill).
        c.access(1, BlockKind::Data, false);
        let r = c.access(3, BlockKind::Data, false);
        assert_eq!(r.evicted.unwrap().key, 1);
    }
}
