//! Static re-reference interval prediction (SRRIP).

use maps_trace::BlockKind;

use super::Policy;
use crate::line::SetView;
use crate::Line;

/// SRRIP-HP (Jaleel et al., ISCA 2010) with 2-bit re-reference prediction
/// values: fills insert at RRPV 2 ("long"), hits promote to 0, victims are
/// lines at RRPV 3 (aging all candidates when none qualify).
///
/// Included as the representative reuse-prediction baseline the paper points
/// to when discussing how architects could "build on the body of work in
/// reuse prediction" (Section IV-D).
#[derive(Debug, Clone, Default)]
pub struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
}

/// Maximum RRPV for the 2-bit variant.
const MAX_RRPV: u8 = 3;
/// Insertion RRPV ("long re-reference interval").
const INSERT_RRPV: u8 = 2;

impl Srrip {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl Policy for Srrip {
    fn name(&self) -> &'static str {
        "srrip"
    }

    fn init(&mut self, sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = vec![MAX_RRPV; sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize, _now: u64, _kind: BlockKind) {
        let s = self.slot(set, way);
        self.rrpv[s] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _line: &Line) {
        let s = self.slot(set, way);
        self.rrpv[s] = INSERT_RRPV;
    }

    fn choose_victim(
        &mut self,
        set: usize,
        candidates: &[usize],
        _lines: &SetView<'_>,
        _now: u64,
    ) -> usize {
        loop {
            if let Some(&way) = candidates
                .iter()
                .find(|&&w| self.rrpv[set * self.ways + w] == MAX_RRPV)
            {
                return way;
            }
            for &w in candidates {
                let s = set * self.ways + w;
                self.rrpv[s] = (self.rrpv[s] + 1).min(MAX_RRPV);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};
    use maps_trace::BlockKind;

    #[test]
    fn scan_resistance() {
        // A hot block rereferenced between scan blocks should survive a
        // one-pass scan that would evict it under LRU.
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), Srrip::new());
        c.access(7u64, BlockKind::Data, false);
        c.access(7u64, BlockKind::Data, false); // promote to RRPV 0
        for k in 1000..1006u64 {
            c.access(k, BlockKind::Data, false);
        }
        assert!(
            c.access(7u64, BlockKind::Data, false).hit,
            "hot block was scanned out"
        );
    }

    #[test]
    fn victim_selection_terminates() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(512, 8), Srrip::new());
        for k in 0..1000u64 {
            c.access(k, BlockKind::Data, false);
        }
        assert_eq!(c.stats().total().accesses, 1000);
    }
}
