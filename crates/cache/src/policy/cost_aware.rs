//! Cost-aware, type-aware replacement — the research direction Section VI
//! calls for ("the metadata cache should have an eviction policy that
//! accounts for multiple miss costs").

use super::Policy;
use crate::line::SetView;
use crate::Line;
use maps_trace::BlockKind;

/// A cost-benefit eviction policy for metadata caches.
///
/// Traditional policies assume uniform miss costs; metadata does not: a
/// counter miss can trigger a whole integrity-tree walk while a hash miss
/// costs one memory transfer. This policy scores each candidate by the
/// expected cost of evicting it:
///
/// ```text
/// score(line) = miss_cost(kind) * recency_weight(age)
/// ```
///
/// where `recency_weight` decays geometrically with age (an LRU-like reuse
/// probability proxy), and evicts the candidate with the *lowest* score —
/// stale, cheap-to-refetch lines go first; recently-used or
/// expensive-to-refetch lines are protected. With uniform costs the policy
/// degenerates to (approximate) LRU.
///
/// # Examples
///
/// ```
/// use maps_cache::policy::CostAware;
/// use maps_cache::{CacheConfig, SetAssocCache};
/// use maps_trace::BlockKind;
///
/// let mut c = SetAssocCache::new(
///     CacheConfig::from_bytes(128, 2),
///     CostAware::new(4), // counter misses cost 4 transfers
/// );
/// c.access(1, BlockKind::Counter, false);
/// c.access(2, BlockKind::Hash, false);
/// // Both lines are equally recent-ish; the cheap hash is evicted first.
/// let evicted = c.access(3, BlockKind::Hash, false).evicted.unwrap();
/// assert_eq!(evicted.kind, BlockKind::Hash);
/// ```
#[derive(Debug, Clone)]
pub struct CostAware {
    counter_cost: u64,
    /// Age (in cache accesses) over which the recency weight halves.
    half_life: u64,
}

impl CostAware {
    /// Creates the policy; `counter_cost` is the relative miss cost of a
    /// counter block (≈ 1 + expected tree-walk length), hashes and tree
    /// nodes cost 1 and 2 respectively.
    ///
    /// # Panics
    ///
    /// Panics if `counter_cost` is zero.
    pub fn new(counter_cost: u64) -> Self {
        Self::with_half_life(counter_cost, 64)
    }

    /// Creates the policy with an explicit recency half-life in accesses.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn with_half_life(counter_cost: u64, half_life: u64) -> Self {
        assert!(counter_cost > 0, "counter cost must be positive");
        assert!(half_life > 0, "half-life must be positive");
        Self {
            counter_cost,
            half_life,
        }
    }

    fn miss_cost(&self, kind: BlockKind) -> f64 {
        match kind {
            // Re-fetching a counter re-triggers tree verification.
            BlockKind::Counter => self.counter_cost as f64,
            // A lost tree node lengthens the next walk by one level; it
            // also protects many counters, so weight it above hashes.
            BlockKind::Tree(_) => 2.0,
            BlockKind::Hash | BlockKind::Data => 1.0,
        }
    }

    fn score(&self, line: &Line, now: u64) -> f64 {
        let age = now.saturating_sub(line.last_at) as f64;
        let recency = 0.5f64.powf(age / self.half_life as f64);
        self.miss_cost(line.kind) * recency
    }
}

impl Default for CostAware {
    fn default() -> Self {
        // A 4 GB split-counter system has five-ish tree levels; a counter
        // miss in a cold tree costs about that many extra transfers.
        Self::new(5)
    }
}

impl Policy for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn init(&mut self, _sets: usize, _ways: usize) {}

    fn choose_victim(
        &mut self,
        _set: usize,
        candidates: &[usize],
        lines: &SetView<'_>,
        now: u64,
    ) -> usize {
        let Some(&first) = candidates.first() else {
            debug_assert!(false, "candidate list must not be empty");
            return 0;
        };
        let mut best = first;
        let mut best_score = f64::INFINITY;
        for &w in candidates {
            let line = lines.line(w);
            let s = self.score(&line, now);
            if s < best_score {
                best_score = s;
                best = w;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, SetAssocCache};

    #[test]
    fn protects_counters_over_hashes_at_equal_recency() {
        let mut c = SetAssocCache::new(CacheConfig::from_bytes(256, 4), CostAware::new(8));
        c.access(1, BlockKind::Counter, false);
        c.access(2, BlockKind::Hash, false);
        c.access(3, BlockKind::Hash, false);
        c.access(4, BlockKind::Hash, false);
        let evicted = c.access(5, BlockKind::Hash, false).evicted.unwrap();
        assert_ne!(
            evicted.kind,
            BlockKind::Counter,
            "counter should be protected"
        );
    }

    #[test]
    fn very_stale_counters_still_age_out() {
        let mut c = SetAssocCache::new(
            CacheConfig::from_bytes(128, 2),
            CostAware::with_half_life(8, 4),
        );
        c.access(1, BlockKind::Counter, false);
        // Keep the hash line hot while the counter goes stale.
        for _ in 0..64 {
            c.access(2, BlockKind::Hash, false);
        }
        let evicted = c.access(3, BlockKind::Hash, false).evicted.unwrap();
        assert_eq!(
            evicted.kind,
            BlockKind::Counter,
            "stale counter must eventually yield"
        );
    }

    #[test]
    fn degenerates_to_lru_with_uniform_costs() {
        let mut cost = SetAssocCache::new(CacheConfig::from_bytes(256, 4), CostAware::new(1));
        let mut lru = SetAssocCache::new(
            CacheConfig::from_bytes(256, 4),
            crate::policy::TrueLru::new(),
        );
        let keys: Vec<u64> = (0..400).map(|i| (i * 13) % 23).collect();
        let mut same = 0;
        for &k in &keys {
            let a = cost.access(k, BlockKind::Hash, false).hit;
            let b = lru.access(k, BlockKind::Hash, false).hit;
            same += usize::from(a == b);
        }
        assert!(
            same as f64 > 0.95 * keys.len() as f64,
            "agreed on {same}/{}",
            keys.len()
        );
    }

    #[test]
    #[should_panic(expected = "counter cost")]
    fn zero_cost_rejected() {
        CostAware::new(0);
    }
}
