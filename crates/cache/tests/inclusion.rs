//! Inclusion-property (Mattson stack algorithm) checks.
//!
//! For a stack algorithm, growing associativity at a fixed set count can
//! never turn a hit into a miss: the contents of the smaller cache are
//! always a subset of the larger one's. Exact LRU and Belady MIN have this
//! property; pseudo-LRU and the adaptive policies do not, which is exactly
//! why [`maps_cache::policy::AnyPolicy::is_stack_algorithm`] gates the
//! metamorphic "doubling the MDC never increases misses" invariant.

use maps_cache::policy::AnyPolicy;
use maps_cache::{CacheConfig, SetAssocCache};
use maps_trace::rng::SmallRng;
use maps_trace::BlockKind;

/// A mixed stream with hot blocks, streaming blocks, and revisits.
fn workload(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut keys = Vec::with_capacity(len);
    for i in 0..len {
        let k = match rng.next_u64() % 10 {
            0..=3 => rng.next_u64() % 16,         // hot set
            4..=6 => rng.next_u64() % 256,        // warm region
            7..=8 => (i as u64 / 3) % 4096,       // slow stream
            _ => 4096 + (rng.next_u64() % 65536), // cold misses
        };
        keys.push(k);
    }
    keys
}

fn policies_for(keys: &[u64]) -> Vec<(AnyPolicy, AnyPolicy)> {
    // Each entry is (policy for the small cache, same policy for the big
    // cache) — policies carry per-cache state, so each cache needs its own.
    vec![
        (AnyPolicy::true_lru(), AnyPolicy::true_lru()),
        (AnyPolicy::pseudo_lru(), AnyPolicy::pseudo_lru()),
        (AnyPolicy::fifo(), AnyPolicy::fifo()),
        (AnyPolicy::srrip(), AnyPolicy::srrip()),
        (
            AnyPolicy::min_from_trace(keys),
            AnyPolicy::min_from_trace(keys),
        ),
    ]
}

/// Drives `keys` through a cache of `(bytes, ways)` and one with doubled
/// ways at the same set count; returns per-access `(small_hit, big_hit)`.
fn lockstep(
    keys: &[u64],
    small: AnyPolicy,
    big: AnyPolicy,
    bytes: u64,
    ways: usize,
) -> Vec<(bool, bool)> {
    let mut small = SetAssocCache::new(CacheConfig::from_bytes(bytes, ways), small);
    let mut big = SetAssocCache::new(CacheConfig::from_bytes(bytes * 2, ways * 2), big);
    assert_eq!(small.config().sets(), big.config().sets());
    keys.iter()
        .map(|&k| {
            (
                small.access(k, BlockKind::Data, false).hit,
                big.access(k, BlockKind::Data, false).hit,
            )
        })
        .collect()
}

#[test]
fn stack_algorithms_satisfy_inclusion_per_access() {
    let keys = workload(7, 20_000);
    for (small, big) in policies_for(&keys) {
        if !small.is_stack_algorithm() {
            continue;
        }
        let name = maps_cache::policy::Policy::name(&small);
        for (i, (small_hit, big_hit)) in
            lockstep(&keys, small, big, 4096, 4).into_iter().enumerate()
        {
            assert!(
                !small_hit || big_hit,
                "{name}: access {i} hit in the 4-way cache but missed in the 8-way"
            );
        }
    }
}

#[test]
fn stack_algorithms_monotone_across_way_ladder() {
    // misses(1 way) >= misses(2 ways) >= ... at a fixed set count.
    let keys = workload(11, 20_000);
    for ways_exp in 0..3u32 {
        let ways = 1usize << ways_exp;
        let bytes = 1024 * ways as u64;
        for (small, big) in [
            (AnyPolicy::true_lru(), AnyPolicy::true_lru()),
            (
                AnyPolicy::min_from_trace(&keys),
                AnyPolicy::min_from_trace(&keys),
            ),
        ] {
            let results = lockstep(&keys, small, big, bytes, ways);
            let small_misses = results.iter().filter(|(s, _)| !s).count();
            let big_misses = results.iter().filter(|(_, b)| !b).count();
            assert!(
                big_misses <= small_misses,
                "doubling ways from {ways} increased misses {small_misses} -> {big_misses}"
            );
        }
    }
}

#[test]
fn non_stack_policies_are_reported_as_such() {
    // The gate must be conservative: approximations may *usually* satisfy
    // inclusion but are not guaranteed to, so they must report false.
    assert!(AnyPolicy::true_lru().is_stack_algorithm());
    assert!(AnyPolicy::min_from_trace(&[1, 2, 3]).is_stack_algorithm());
    for p in [
        AnyPolicy::pseudo_lru(),
        AnyPolicy::fifo(),
        AnyPolicy::random(9),
        AnyPolicy::srrip(),
        AnyPolicy::eva(),
        AnyPolicy::trace_min_from_trace(&[1, 2, 3]),
        AnyPolicy::cost_aware(5),
        AnyPolicy::drrip(),
        AnyPolicy::eva_per_type(),
    ] {
        assert!(
            !p.is_stack_algorithm(),
            "{} must not claim the stack property",
            maps_cache::policy::Policy::name(&p)
        );
    }
}
