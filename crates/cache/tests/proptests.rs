//! Property tests for the cache substrate and its policies.

#![cfg(feature = "heavy-tests")]

use maps_cache::policy::{AnyPolicy, Policy, TrueLru};
use maps_cache::{belady_misses, CacheConfig, Partition, SetAssocCache};
use maps_trace::BlockKind;
use proptest::prelude::*;

fn run_hits<P: Policy>(cache: &mut SetAssocCache<P>, keys: &[u64]) -> u64 {
    keys.iter()
        .filter(|&&k| cache.access(k, BlockKind::Data, false).hit)
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn hit_iff_recently_resident(keys in prop::collection::vec(0u64..64, 1..300)) {
        // Reference model: fully-associative LRU as an ordered list.
        let mut cache = SetAssocCache::new(CacheConfig::from_bytes(512, 8), TrueLru::new());
        let mut model: Vec<u64> = Vec::new();
        for &k in &keys {
            let expect_hit = model.contains(&k);
            let got = cache.access(k, BlockKind::Data, false);
            prop_assert_eq!(got.hit, expect_hit, "key {}", k);
            model.retain(|&m| m != k);
            model.push(k);
            if model.len() > 8 {
                let victim = model.remove(0);
                prop_assert_eq!(got.evicted.map(|l| l.key), Some(victim));
            }
        }
    }

    #[test]
    fn lru_inclusion_property_fully_associative(
        keys in prop::collection::vec(0u64..128, 1..400),
    ) {
        let mut small = SetAssocCache::new(CacheConfig::from_bytes(256, 4), TrueLru::new());
        let mut large = SetAssocCache::new(CacheConfig::from_bytes(1024, 16), TrueLru::new());
        for &k in &keys {
            let hs = small.access(k, BlockKind::Data, false).hit;
            let hl = large.access(k, BlockKind::Data, false).hit;
            prop_assert!(!hs || hl, "inclusion violated for key {}", k);
        }
    }

    #[test]
    fn belady_dominates_every_online_policy(
        keys in prop::collection::vec(0u64..24, 1..200),
    ) {
        let online = [
            AnyPolicy::true_lru(),
            AnyPolicy::pseudo_lru(),
            AnyPolicy::fifo(),
            AnyPolicy::random(3),
            AnyPolicy::srrip(),
        ];
        let optimal = belady_misses(&keys, 4);
        for policy in online {
            let mut cache = SetAssocCache::new(CacheConfig::from_bytes(256, 4), policy);
            let hits = run_hits(&mut cache, &keys);
            let misses = keys.len() as u64 - hits;
            prop_assert!(
                misses >= optimal,
                "{} beat Belady: {} < {}",
                cache.policy().name(),
                misses,
                optimal
            );
        }
    }

    #[test]
    fn stats_balance_for_every_policy(
        keys in prop::collection::vec(0u64..256, 1..300),
        seed in 0u64..10,
    ) {
        for policy in [
            AnyPolicy::true_lru(),
            AnyPolicy::pseudo_lru(),
            AnyPolicy::random(seed),
            AnyPolicy::eva(),
            AnyPolicy::srrip(),
        ] {
            let mut cache = SetAssocCache::new(CacheConfig::from_bytes(1024, 4), policy);
            for &k in &keys {
                cache.access(k, BlockKind::Data, k % 3 == 0);
            }
            let t = cache.stats().total();
            prop_assert_eq!(t.accesses, keys.len() as u64);
            prop_assert_eq!(t.accesses, t.hits + t.misses);
            prop_assert_eq!(
                cache.occupancy() as u64 + t.evictions,
                t.misses,
                "fills = evictions + residents"
            );
        }
    }

    #[test]
    fn partition_confines_counters_and_hashes(
        counters in prop::collection::vec(0u64..512, 1..150),
        hashes in prop::collection::vec(512u64..1024, 1..150),
        split in 1usize..8,
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::from_bytes(512, 8), TrueLru::new());
        cache.set_partition(Some(Partition::counter_ways(split)));
        for (&c, &h) in counters.iter().zip(hashes.iter().cycle()) {
            cache.access(c, BlockKind::Counter, false);
            cache.access(h, BlockKind::Hash, false);
        }
        let resident_counters =
            cache.resident_lines().filter(|l| l.kind == BlockKind::Counter).count();
        let resident_hashes =
            cache.resident_lines().filter(|l| l.kind == BlockKind::Hash).count();
        prop_assert!(resident_counters <= split, "{} counters > {} ways", resident_counters, split);
        prop_assert!(resident_hashes <= 8 - split);
    }

    #[test]
    fn placeholder_masks_accumulate_monotonically(
        slots in prop::collection::vec(0u8..8, 1..20),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::from_bytes(64, 1), TrueLru::new());
        cache.insert_placeholder(1, BlockKind::Hash, slots[0], None);
        let mut prev = cache.line(1).expect("resident").valid_mask;
        for &s in &slots[1..] {
            let mask = cache.mark_valid(1, s).expect("still resident");
            prop_assert_eq!(mask & prev, prev, "bits must never clear");
            prop_assert_ne!(mask & (1 << s), 0);
            prev = mask;
        }
    }

    #[test]
    fn invalidate_then_access_misses(keys in prop::collection::vec(0u64..32, 1..100)) {
        let mut cache = SetAssocCache::new(CacheConfig::from_bytes(2048, 8), TrueLru::new());
        for &k in &keys {
            cache.access(k, BlockKind::Data, false);
        }
        let target = keys[keys.len() / 2];
        prop_assert!(cache.invalidate(target).is_some());
        prop_assert!(!cache.access(target, BlockKind::Data, false).hit);
    }
}
