//! Property tests for the workload generators.

#![cfg(feature = "heavy-tests")]

use maps_trace::TraceStats;
use maps_workloads::{Benchmark, RandomGen, StreamGen, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_are_deterministic_per_seed(seed in 0u64..1000) {
        for bench in [Benchmark::Canneal, Benchmark::Fft, Benchmark::Perl] {
            let mut a = bench.build(seed);
            let mut b = bench.build(seed);
            for _ in 0..200 {
                prop_assert_eq!(a.next_access(), b.next_access());
            }
        }
    }

    #[test]
    fn accesses_stay_in_footprint_for_every_profile(
        seed in 0u64..100,
        n in 100usize..1000,
    ) {
        for bench in Benchmark::ALL {
            let mut wl = bench.build(seed);
            let footprint = wl.footprint_bytes();
            for _ in 0..n {
                let a = wl.next_access();
                prop_assert!(a.addr.bytes() < footprint, "{}: out of bounds", bench);
                prop_assert!(a.icount >= 1, "{}: zero instruction gap", bench);
            }
        }
    }

    #[test]
    fn stream_visits_every_block_once_per_lap(
        blocks in 8u64..256,
        seed in 0u64..50,
    ) {
        let mut g = StreamGen::new("s", seed, blocks * 64, 1, 0.0, 4);
        let mut seen = vec![false; blocks as usize];
        for _ in 0..blocks {
            let b = g.next_access().addr.block().index();
            prop_assert!(!seen[b as usize], "block {} revisited within a lap", b);
            seen[b as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn write_fraction_converges(target in 0.0f64..1.0, seed in 0u64..20) {
        let mut g = RandomGen::new("r", seed, 1 << 20, target, 4, 0.0, 1);
        let mut stats = TraceStats::new();
        for _ in 0..20_000 {
            stats.record(&g.next_access());
        }
        prop_assert!((stats.write_fraction() - target).abs() < 0.03);
    }

    #[test]
    fn memory_intensive_profiles_have_large_footprints(seed in 0u64..10) {
        for bench in Benchmark::memory_intensive() {
            let wl = bench.build(seed);
            // Must exceed the 2 MB LLC to sustain MPKI > 10.
            prop_assert!(
                wl.footprint_bytes() > 2 << 20,
                "{}: footprint too small",
                bench
            );
        }
    }
}
