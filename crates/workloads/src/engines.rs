//! Address-stream generator engines.
//!
//! Each engine models one archetypal access pattern; benchmark profiles in
//! [`crate::profiles`] instantiate them with per-benchmark parameters.

use maps_trace::rng::SmallRng;
use maps_trace::{AccessKind, MemAccess, PhysAddr, TenantId, BLOCK_BYTES};

/// A synthetic workload producing an infinite memory-access stream.
///
/// Implementations are deterministic for a given construction seed.
pub trait Workload {
    /// Produces the next access.
    fn next_access(&mut self) -> MemAccess;

    /// Total bytes the generator will ever touch.
    fn footprint_bytes(&self) -> u64;

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "workload"
    }

    /// Tenant behind the most recent [`next_access`](Self::next_access).
    ///
    /// Single-tenant generators keep the default [`TenantId::HOST`];
    /// multi-tenant composers override it so the simulator can attribute
    /// each access to the workload that issued it.
    fn current_tenant(&self) -> TenantId {
        TenantId::HOST
    }
}

impl Workload for Box<dyn Workload> {
    fn next_access(&mut self) -> MemAccess {
        (**self).next_access()
    }

    fn footprint_bytes(&self) -> u64 {
        (**self).footprint_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn current_tenant(&self) -> TenantId {
        (**self).current_tenant()
    }
}

/// Shared per-access bookkeeping: write-fraction draw and instruction gap.
#[derive(Debug, Clone)]
struct AccessShaper {
    rng: SmallRng,
    write_fraction: f64,
    icount_mean: u32,
}

impl AccessShaper {
    fn new(seed: u64, write_fraction: f64, icount_mean: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction outside [0, 1]"
        );
        assert!(icount_mean >= 1, "icount mean must be at least 1");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            write_fraction,
            icount_mean,
        }
    }

    fn shape(&mut self, block: u64) -> MemAccess {
        let kind = if self.rng.gen_bool(self.write_fraction) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Instruction gaps jitter by ±50% around the mean.
        let lo = self.icount_mean.div_ceil(2).max(1);
        let hi = self.icount_mean + self.icount_mean / 2;
        let icount = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        MemAccess::new(PhysAddr::new(block * BLOCK_BYTES), kind, icount)
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Streaming sweep over an array (libquantum, lbm): sequential blocks with
/// a fixed stride, restarting at the end.
///
/// # Examples
///
/// ```
/// use maps_workloads::{StreamGen, Workload};
/// let mut g = StreamGen::new("s", 1, 4 << 20, 1, 0.0, 8);
/// let a = g.next_access();
/// let b = g.next_access();
/// assert_eq!(b.addr.bytes() - a.addr.bytes(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct StreamGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    stride_blocks: u64,
    cursor: u64,
}

impl StreamGen {
    /// Creates a streaming generator over `footprint_bytes`, advancing
    /// `stride_blocks` per access.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one block or the stride is 0.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        stride_blocks: u64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        assert!(blocks > 0, "footprint must hold at least one block");
        assert!(stride_blocks > 0, "stride must be positive");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            stride_blocks,
            cursor: 0,
        }
    }
}

impl Workload for StreamGen {
    fn next_access(&mut self) -> MemAccess {
        let block = self.cursor;
        self.cursor += self.stride_blocks;
        if self.cursor >= self.blocks {
            // Wrap with a phase shift so strided sweeps eventually touch
            // every block.
            self.cursor %= self.blocks;
            self.cursor = (self.cursor + 1) % self.stride_blocks.min(self.blocks);
        }
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Uniform random block accesses over a footprint (gups, canneal).
#[derive(Debug, Clone)]
pub struct RandomGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    /// Probability that an access lands within `burst_span` blocks of the
    /// previous one, giving tunable (low) spatial locality.
    burst_prob: f64,
    burst_span: u64,
    last_block: u64,
}

impl RandomGen {
    /// Creates a random generator; `burst_prob`/`burst_span` add a small
    /// amount of near-previous locality (0.0 disables it).
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one block.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        write_fraction: f64,
        icount_mean: u32,
        burst_prob: f64,
        burst_span: u64,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        assert!(blocks > 0, "footprint must hold at least one block");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            burst_prob,
            burst_span: burst_span.max(1),
            last_block: 0,
        }
    }
}

impl Workload for RandomGen {
    fn next_access(&mut self) -> MemAccess {
        let block = if self.burst_prob > 0.0 && self.shaper.rng().gen_bool(self.burst_prob) {
            let span = self.burst_span;
            let delta = self.shaper.rng().gen_range(0..span);
            (self.last_block + delta) % self.blocks
        } else {
            self.shaper.rng().gen_range(0..self.blocks)
        };
        self.last_block = block;
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Pointer chasing along a pseudo-random permutation cycle (mcf, omnetpp).
///
/// The successor function is a bijective affine map over the block space,
/// so the chase visits every block exactly once per cycle without
/// materializing a permutation array.
#[derive(Debug, Clone)]
pub struct PointerChaseGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    multiplier: u64,
    increment: u64,
    current: u64,
    /// Probability of touching a small hot region instead of chasing.
    hot_prob: f64,
    hot_blocks: u64,
}

impl PointerChaseGen {
    /// Creates a pointer-chase generator.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one block.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        write_fraction: f64,
        icount_mean: u32,
        hot_prob: f64,
        hot_bytes: u64,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        assert!(blocks > 0, "footprint must hold at least one block");
        // An odd multiplier coprime with the block count gives a full
        // permutation cycle for power-of-two counts and a long cycle
        // otherwise; the large constant scatters successors across pages.
        let multiplier = (2_862_933_555_777_941_757 % blocks.max(2)) | 1;
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            multiplier,
            increment: 0x9E37_79B9 % blocks.max(1),
            current: seed % blocks,
            hot_prob,
            hot_blocks: (hot_bytes / BLOCK_BYTES).clamp(1, blocks),
        }
    }
}

impl Workload for PointerChaseGen {
    fn next_access(&mut self) -> MemAccess {
        if self.hot_prob > 0.0 && self.shaper.rng().gen_bool(self.hot_prob) {
            let hot = self.shaper.rng().gen_range(0..self.hot_blocks);
            return self.shaper.shape(hot);
        }
        self.current = (self
            .current
            .wrapping_mul(self.multiplier)
            .wrapping_add(self.increment))
            % self.blocks;
        let block = self.current;
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Grid stencil sweep (leslie3d, cactusADM, milc): walks a logical grid,
/// touching the point plus neighbours at ±1 element and ±1 plane.
#[derive(Debug, Clone)]
pub struct StencilGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    plane_blocks: u64,
    arrays: u64,
    cursor: u64,
    phase: u8,
}

impl StencilGen {
    /// Creates a stencil generator over `arrays` equally-sized arrays whose
    /// combined footprint is `footprint_bytes`; `plane_bytes` is the plane
    /// stride of the neighbour accesses.
    ///
    /// # Panics
    ///
    /// Panics if any array would be smaller than one plane.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        plane_bytes: u64,
        arrays: u64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        assert!(arrays >= 1, "need at least one array");
        let blocks = footprint_bytes / BLOCK_BYTES;
        let plane_blocks = (plane_bytes / BLOCK_BYTES).max(1);
        let array_blocks = blocks / arrays;
        assert!(array_blocks > plane_blocks, "array smaller than one plane");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            plane_blocks,
            arrays,
            cursor: 0,
            phase: 0,
        }
    }
}

impl Workload for StencilGen {
    fn next_access(&mut self) -> MemAccess {
        let array_blocks = self.blocks / self.arrays;
        let pos = self.cursor % array_blocks;
        let array = (self.cursor / array_blocks) % self.arrays;
        let base = array * array_blocks;
        // Stencil pattern: centre, +plane, -plane, then advance.
        let block = match self.phase {
            0 => base + pos,
            1 => base + (pos + self.plane_blocks) % array_blocks,
            _ => base + (pos + array_blocks - self.plane_blocks) % array_blocks,
        };
        self.phase = (self.phase + 1) % 3;
        if self.phase == 0 {
            self.cursor = (self.cursor + 1) % self.blocks;
        }
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Hot/cold working-set mixture (perl, gcc): most accesses land in a small
/// hot region; the rest roam a larger cold region.
#[derive(Debug, Clone)]
pub struct HotColdGen {
    name: &'static str,
    shaper: AccessShaper,
    hot_blocks: u64,
    cold_blocks: u64,
    hot_prob: f64,
    cold_cursor: u64,
}

impl HotColdGen {
    /// Creates a hot/cold generator: `hot_prob` of accesses hit the hot
    /// region sized `hot_bytes`; the rest sweep the remaining footprint.
    ///
    /// # Panics
    ///
    /// Panics if either region is empty or `hot_bytes` exceeds the
    /// footprint.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        hot_bytes: u64,
        hot_prob: f64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        assert!(
            hot_bytes < footprint_bytes,
            "hot region must be smaller than the footprint"
        );
        let hot_blocks = hot_bytes / BLOCK_BYTES;
        let cold_blocks = (footprint_bytes - hot_bytes) / BLOCK_BYTES;
        assert!(
            hot_blocks > 0 && cold_blocks > 0,
            "both regions must be non-empty"
        );
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            hot_blocks,
            cold_blocks,
            hot_prob,
            cold_cursor: 0,
        }
    }
}

impl Workload for HotColdGen {
    fn next_access(&mut self) -> MemAccess {
        let block = if self.shaper.rng().gen_bool(self.hot_prob) {
            self.shaper.rng().gen_range(0..self.hot_blocks)
        } else {
            self.cold_cursor = (self.cold_cursor + 1) % self.cold_blocks;
            self.hot_blocks + self.cold_cursor
        };
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        (self.hot_blocks + self.cold_blocks) * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// FFT-style phased access (fft): alternating sequential passes and
/// butterfly passes whose stride doubles each phase, with the paper's 20 %
/// write fraction by default.
#[derive(Debug, Clone)]
pub struct FftGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    cursor: u64,
    stride_shift: u32,
    toggle: bool,
}

impl FftGen {
    /// Creates the generator over `footprint_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the footprint holds fewer than four blocks.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        assert!(blocks >= 4, "FFT footprint too small");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            cursor: 0,
            stride_shift: 1,
            toggle: false,
        }
    }
}

impl Workload for FftGen {
    fn next_access(&mut self) -> MemAccess {
        // Butterfly: visit i, then i + 2^shift, alternating.
        let stride = 1u64 << self.stride_shift;
        let block = if self.toggle {
            (self.cursor + stride) % self.blocks
        } else {
            self.cursor
        };
        if self.toggle {
            self.cursor += 1;
            if self.cursor >= self.blocks {
                self.cursor = 0;
                self.stride_shift += 1;
                let max_shift = 63 - self.blocks.leading_zeros();
                if self.stride_shift >= max_shift {
                    self.stride_shift = 1;
                }
            }
        }
        self.toggle = !self.toggle;
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Blocked multi-pass sweep (cactusADM): the working tile is swept eight
/// times at a 512 B stride with a different 64 B offset each pass, then the
/// tile advances. Every access is a cold data block (so it reaches the
/// memory controller), but the tile's metadata blocks are revisited once
/// per pass — producing the *mid-range* reuse distances that make
/// cactusADM one of Figure 4's two non-bimodal outliers.
#[derive(Debug, Clone)]
pub struct TiledPassGen {
    name: &'static str,
    shaper: AccessShaper,
    blocks: u64,
    tile_blocks: u64,
    tile_base: u64,
    offset: u64,
    pos: u64,
}

impl TiledPassGen {
    /// Creates the generator: `tile_bytes` per tile within
    /// `footprint_bytes` total.
    ///
    /// # Panics
    ///
    /// Panics if the tile is smaller than 512 B or larger than the
    /// footprint.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        tile_bytes: u64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        let tile_blocks = tile_bytes / BLOCK_BYTES;
        assert!(tile_blocks >= 8, "tile must hold at least eight blocks");
        assert!(tile_blocks <= blocks, "tile larger than footprint");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            blocks,
            tile_blocks,
            tile_base: 0,
            offset: 0,
            pos: 0,
        }
    }
}

impl Workload for TiledPassGen {
    fn next_access(&mut self) -> MemAccess {
        let block = (self.tile_base + self.pos * 8 + self.offset) % self.blocks;
        self.pos += 1;
        if self.pos * 8 + self.offset >= self.tile_blocks {
            self.pos = 0;
            self.offset += 1;
            if self.offset == 8 {
                self.offset = 0;
                self.tile_base = (self.tile_base + self.tile_blocks) % self.blocks;
            }
        }
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Random root-to-leaf walks over an implicit tree laid out level-major
/// (barnes): upper levels are heavily reused, leaves are not.
#[derive(Debug, Clone)]
pub struct TreeWalkGen {
    name: &'static str,
    shaper: AccessShaper,
    levels: u32,
    arity: u64,
    blocks: u64,
    /// `(levels remaining in current walk, chosen leaf index)`.
    walk_level_state: (u32, u64),
}

impl TreeWalkGen {
    /// Creates a tree-walk generator whose implicit tree fills
    /// `footprint_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels fit.
    pub fn new(
        name: &'static str,
        seed: u64,
        footprint_bytes: u64,
        arity: u64,
        write_fraction: f64,
        icount_mean: u32,
    ) -> Self {
        let blocks = footprint_bytes / BLOCK_BYTES;
        // Find the deepest complete tree that fits.
        let mut levels = 1;
        let mut total = 1u64;
        let mut level_size = 1u64;
        loop {
            level_size *= arity;
            if total + level_size > blocks {
                break;
            }
            total += level_size;
            levels += 1;
        }
        assert!(levels >= 2, "tree footprint too small for two levels");
        Self {
            name,
            shaper: AccessShaper::new(seed, write_fraction, icount_mean),
            levels,
            arity,
            blocks: total,
            walk_level_state: (0, 0),
        }
    }
}

impl Workload for TreeWalkGen {
    fn next_access(&mut self) -> MemAccess {
        // Pick a random leaf, then emit its root-to-leaf path one node per
        // call; start a fresh walk when the path is exhausted.
        if self.walk_remaining() == 0 {
            self.start_walk();
        }
        let (level, index_in_level) = self.walk_step();
        // Level-major layout: offset = sum of sizes above + index.
        let mut base = 0u64;
        let mut size = 1u64;
        for _ in 0..level {
            base += size;
            size *= self.arity;
        }
        let block = (base + index_in_level) % self.blocks;
        self.shaper.shape(block)
    }

    fn footprint_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

impl TreeWalkGen {
    fn walk_remaining(&self) -> u32 {
        self.walk_level_state.0
    }

    fn start_walk(&mut self) {
        let leaf_count = self.arity.pow(self.levels - 1);
        let leaf = self.shaper.rng().gen_range(0..leaf_count);
        self.walk_level_state = (self.levels, leaf);
    }

    fn walk_step(&mut self) -> (u32, u64) {
        let (remaining, leaf) = self.walk_level_state;
        let level = self.levels - remaining;
        // Node index at this level is the leaf index shifted up.
        let index = leaf / self.arity.pow(self.levels - 1 - level);
        self.walk_level_state = (remaining - 1, leaf);
        (level, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::TraceStats;

    fn collect(w: &mut dyn Workload, n: usize) -> TraceStats {
        let mut stats = TraceStats::new();
        for _ in 0..n {
            let a = w.next_access();
            assert!(
                a.addr.bytes() < w.footprint_bytes(),
                "access {a:?} outside footprint {}",
                w.footprint_bytes()
            );
            stats.record(&a);
        }
        stats
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let mut g = StreamGen::new("s", 1, 64 * BLOCK_BYTES, 1, 0.0, 4);
        for lap in 0..2 {
            for i in 0..64u64 {
                let a = g.next_access();
                assert_eq!(a.addr.block().index(), i, "lap {lap}");
            }
        }
    }

    #[test]
    fn stream_write_fraction_respected() {
        let mut g = StreamGen::new("s", 7, 1 << 20, 1, 0.2, 4);
        let stats = collect(&mut g, 20_000);
        let wf = stats.write_fraction();
        assert!((wf - 0.2).abs() < 0.02, "write fraction {wf}");
    }

    #[test]
    fn random_covers_footprint() {
        let mut g = RandomGen::new("r", 3, 256 * BLOCK_BYTES, 0.1, 4, 0.0, 1);
        let stats = collect(&mut g, 10_000);
        assert!(
            stats.unique_blocks() > 250,
            "covered {}",
            stats.unique_blocks()
        );
    }

    #[test]
    fn random_determinism_per_seed() {
        let run = |seed| {
            let mut g = RandomGen::new("r", seed, 1 << 20, 0.1, 4, 0.2, 8);
            (0..100)
                .map(|_| g.next_access().addr.bytes())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn pointer_chase_visits_many_blocks_with_poor_locality() {
        let mut g = PointerChaseGen::new("p", 11, 4096 * BLOCK_BYTES, 0.05, 4, 0.0, 0);
        let stats = collect(&mut g, 4096);
        // A permutation cycle should visit nearly all blocks once.
        assert!(
            stats.unique_blocks() > 2000,
            "visited {}",
            stats.unique_blocks()
        );
    }

    #[test]
    fn stencil_touches_neighbouring_planes() {
        let plane = 16 * BLOCK_BYTES;
        let mut g = StencilGen::new("st", 1, 1 << 20, plane, 1, 0.0, 4);
        let a = g.next_access().addr.block().index();
        let b = g.next_access().addr.block().index();
        let c = g.next_access().addr.block().index();
        assert_eq!(b, a + 16);
        assert!(c > b, "wrapped -plane neighbour should be far");
    }

    #[test]
    fn hot_cold_mixture_reuses_hot_region() {
        let mut g = HotColdGen::new("hc", 2, 8 << 20, 256 << 10, 0.9, 0.1, 10);
        let stats = collect(&mut g, 50_000);
        // 90% of accesses land in 4096 hot blocks: strong block reuse.
        assert!(stats.accesses_per_block() > 5.0);
    }

    #[test]
    fn fft_butterfly_pairs() {
        let mut g = FftGen::new("fft", 1, 1024 * BLOCK_BYTES, 0.0, 4);
        let a = g.next_access().addr.block().index();
        let b = g.next_access().addr.block().index();
        assert_eq!(b, a + 2, "first butterfly pair uses stride 2");
    }

    #[test]
    fn tree_walk_reuses_root() {
        let mut g = TreeWalkGen::new("tw", 9, 1 << 20, 8, 0.0, 4);
        let mut root_hits = 0;
        let n = 5000;
        for _ in 0..n {
            if g.next_access().addr.block().index() == 0 {
                root_hits += 1;
            }
        }
        // Every walk touches the root once.
        assert!(root_hits > n / 20, "root touched {root_hits} times");
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut g: Box<dyn Workload> = Box::new(StreamGen::new("boxed", 1, 1 << 16, 1, 0.0, 4));
        assert_eq!(g.name(), "boxed");
        assert_eq!(g.footprint_bytes(), 1 << 16);
        g.next_access();
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn invalid_write_fraction_panics() {
        StreamGen::new("s", 1, 1 << 16, 1, 1.5, 4);
    }
}
