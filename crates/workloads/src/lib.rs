//! Synthetic workload generators standing in for the paper's PARSEC,
//! SPLASH2, and SPEC 2006 benchmarks.
//!
//! We cannot redistribute the benchmark suites or their memory traces, so
//! each [`Benchmark`] profile synthesizes an address stream reproducing the
//! published access-pattern properties the MAPS analysis depends on:
//! footprint, page-level spatial locality, streaming vs. random access, and
//! write fraction (e.g. *fft* ≈ 20 % writes, *leslie3d* ≈ 5 %, *canneal*
//! large-footprint low-locality, *libquantum* streaming over a 4 MB array).
//! DESIGN.md documents the substitution argument in full.
//!
//! Generators are deterministic for a given seed, so every figure harness
//! is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use maps_workloads::Benchmark;
//!
//! let mut wl = Benchmark::Libquantum.build(42);
//! let a = wl.next_access();
//! assert!(a.addr.bytes() < wl.footprint_bytes());
//! ```

pub mod adversarial;
pub mod compose;
pub mod engines;
pub mod profiles;
pub mod replay;

/// The vendored deterministic PRNG (SplitMix64 behind a `SmallRng`-style
/// wrapper) every workload generator draws from. Lives in `maps-trace` so
/// the cache policies can share it, re-exported here as the canonical
/// import path for workload code.
pub use maps_trace::rng;

pub use adversarial::{CascadeDeepGen, OccupancyProbe, OverflowHeavyGen, PartitionBoundaryGen};
pub use compose::{MixWorkload, PhasedWorkload, TenantMix, TenantSchedule};
pub use engines::{
    FftGen, HotColdGen, PointerChaseGen, RandomGen, StencilGen, StreamGen, TiledPassGen,
    TreeWalkGen, Workload,
};
pub use profiles::Benchmark;
pub use replay::ReplayWorkload;
