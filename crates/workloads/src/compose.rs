//! Workload composition: probabilistic mixes and phase alternation.
//!
//! Section V-C motivates dynamic partitioning with "applications
//! requirements evolve throughout its execution"; these combinators build
//! workloads whose requirements actually do evolve, so that motivation can
//! be tested (`ablation_phases` in `maps-bench`).

use maps_trace::rng::SmallRng;
use maps_trace::MemAccess;

use crate::Workload;

/// Interleaves two workloads, drawing from the first with probability `p`.
///
/// Each sub-workload keeps its own address space position; the mix's
/// footprint is the larger of the two (the address spaces overlap, which
/// models two data structures sharing a heap).
///
/// # Examples
///
/// ```
/// use maps_workloads::{Benchmark, MixWorkload, Workload};
/// let mut mix = MixWorkload::new(
///     Benchmark::Libquantum.build(1),
///     Benchmark::Gups.build(2),
///     0.7,
///     3,
/// );
/// let a = mix.next_access();
/// assert!(a.addr.bytes() < mix.footprint_bytes());
/// ```
pub struct MixWorkload {
    first: Box<dyn Workload>,
    second: Box<dyn Workload>,
    p_first: f64,
    rng: SmallRng,
}

impl MixWorkload {
    /// Creates the mix.
    ///
    /// # Panics
    ///
    /// Panics if `p_first` is outside `[0, 1]`.
    pub fn new(
        first: Box<dyn Workload>,
        second: Box<dyn Workload>,
        p_first: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_first),
            "mix probability outside [0, 1]"
        );
        Self {
            first,
            second,
            p_first,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Workload for MixWorkload {
    fn next_access(&mut self) -> MemAccess {
        if self.rng.gen_bool(self.p_first) {
            self.first.next_access()
        } else {
            self.second.next_access()
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.first
            .footprint_bytes()
            .max(self.second.footprint_bytes())
    }

    fn name(&self) -> &'static str {
        "mix"
    }
}

/// Alternates between two workloads in fixed-length phases.
///
/// # Examples
///
/// ```
/// use maps_workloads::{Benchmark, PhasedWorkload, Workload};
/// let mut phased = PhasedWorkload::new(
///     Benchmark::Libquantum.build(1),
///     Benchmark::Canneal.build(2),
///     1000,
/// );
/// for _ in 0..2500 {
///     phased.next_access();
/// }
/// assert_eq!(phased.phase_switches(), 2);
/// ```
pub struct PhasedWorkload {
    first: Box<dyn Workload>,
    second: Box<dyn Workload>,
    phase_length: u64,
    position: u64,
    switches: u64,
}

impl PhasedWorkload {
    /// Creates the phased workload; each phase lasts `phase_length`
    /// accesses, starting with `first`.
    ///
    /// # Panics
    ///
    /// Panics if `phase_length` is zero.
    pub fn new(first: Box<dyn Workload>, second: Box<dyn Workload>, phase_length: u64) -> Self {
        assert!(phase_length > 0, "phase length must be positive");
        Self {
            first,
            second,
            phase_length,
            position: 0,
            switches: 0,
        }
    }

    /// Number of phase transitions so far.
    pub fn phase_switches(&self) -> u64 {
        self.switches
    }

    /// Whether the *next* access comes from the first workload.
    pub fn in_first_phase(&self) -> bool {
        (self.position / self.phase_length).is_multiple_of(2)
    }
}

impl Workload for PhasedWorkload {
    fn next_access(&mut self) -> MemAccess {
        let use_first = self.in_first_phase();
        let access = if use_first {
            self.first.next_access()
        } else {
            self.second.next_access()
        };
        self.position += 1;
        if self.position.is_multiple_of(self.phase_length) {
            self.switches += 1;
        }
        access
    }

    fn footprint_bytes(&self) -> u64 {
        self.first
            .footprint_bytes()
            .max(self.second.footprint_bytes())
    }

    fn name(&self) -> &'static str {
        "phased"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, StreamGen};
    use maps_trace::TraceStats;

    fn stream(seed: u64, footprint: u64) -> Box<dyn Workload> {
        Box::new(StreamGen::new("s", seed, footprint, 1, 0.0, 4))
    }

    #[test]
    fn mix_draws_from_both() {
        // Distinguish sources by footprint: the small stream only touches
        // low addresses.
        let mut mix = MixWorkload::new(stream(1, 64 * 64), stream(2, 1 << 20), 0.5, 7);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..4000 {
            let a = mix.next_access();
            if a.addr.bytes() < 64 * 64 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 500, "first workload starved: {low}");
        assert!(high > 500, "second workload starved: {high}");
    }

    #[test]
    fn mix_probability_is_respected() {
        let mut mix = MixWorkload::new(stream(1, 64 * 64), stream(2, 1 << 24), 0.9, 3);
        let mut stats = TraceStats::new();
        let mut first = 0u64;
        for _ in 0..20_000 {
            let a = mix.next_access();
            stats.record(&a);
            // Second stream quickly leaves the small region.
            if a.addr.bytes() < 64 * 64 {
                first += 1;
            }
        }
        let frac = first as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.05, "first fraction {frac}");
    }

    #[test]
    fn phases_alternate_deterministically() {
        let mut phased = PhasedWorkload::new(stream(1, 64 * 64), stream(2, 1 << 20), 100);
        assert!(phased.in_first_phase());
        for _ in 0..100 {
            phased.next_access();
        }
        assert!(!phased.in_first_phase());
        for _ in 0..100 {
            phased.next_access();
        }
        assert!(phased.in_first_phase());
        assert_eq!(phased.phase_switches(), 2);
    }

    #[test]
    fn composes_with_benchmark_profiles() {
        let mut phased = PhasedWorkload::new(
            Benchmark::Libquantum.build(1),
            Benchmark::Canneal.build(2),
            500,
        );
        for _ in 0..2000 {
            let a = phased.next_access();
            assert!(a.addr.bytes() < phased.footprint_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_mix_probability_rejected() {
        MixWorkload::new(stream(1, 4096), stream(2, 4096), 1.5, 1);
    }
}
