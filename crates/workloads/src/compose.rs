//! Workload composition: probabilistic mixes, phase alternation, and
//! multi-tenant scheduling.
//!
//! Section V-C motivates dynamic partitioning with "applications
//! requirements evolve throughout its execution"; these combinators build
//! workloads whose requirements actually do evolve, so that motivation can
//! be tested (`ablation_phases` in `maps-bench`).
//!
//! [`TenantMix`] extends composition to the multi-tenant scenario layer:
//! it schedules N independent workloads onto one simulated machine —
//! time-sliced like a shared core or sharded round-robin like parallel
//! cores — placing each tenant in a disjoint page-aligned physical region
//! and tagging every access with the issuing [`TenantId`] so the metadata
//! cache can attribute occupancy and misses per tenant.

use maps_trace::rng::SmallRng;
use maps_trace::{MemAccess, PhysAddr, TenantId, PAGE_BYTES};

use crate::Workload;

/// Interleaves two workloads, drawing from the first with probability `p`.
///
/// Each sub-workload keeps its own address space position; the mix's
/// footprint is the larger of the two (the address spaces overlap, which
/// models two data structures sharing a heap).
///
/// # Examples
///
/// ```
/// use maps_workloads::{Benchmark, MixWorkload, Workload};
/// let mut mix = MixWorkload::new(
///     Benchmark::Libquantum.build(1),
///     Benchmark::Gups.build(2),
///     0.7,
///     3,
/// );
/// let a = mix.next_access();
/// assert!(a.addr.bytes() < mix.footprint_bytes());
/// ```
pub struct MixWorkload {
    first: Box<dyn Workload>,
    second: Box<dyn Workload>,
    p_first: f64,
    rng: SmallRng,
}

impl MixWorkload {
    /// Creates the mix.
    ///
    /// # Panics
    ///
    /// Panics if `p_first` is outside `[0, 1]`.
    pub fn new(
        first: Box<dyn Workload>,
        second: Box<dyn Workload>,
        p_first: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_first),
            "mix probability outside [0, 1]"
        );
        Self {
            first,
            second,
            p_first,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Workload for MixWorkload {
    fn next_access(&mut self) -> MemAccess {
        if self.rng.gen_bool(self.p_first) {
            self.first.next_access()
        } else {
            self.second.next_access()
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.first
            .footprint_bytes()
            .max(self.second.footprint_bytes())
    }

    fn name(&self) -> &'static str {
        "mix"
    }
}

/// Alternates between two workloads in fixed-length phases.
///
/// # Examples
///
/// ```
/// use maps_workloads::{Benchmark, PhasedWorkload, Workload};
/// let mut phased = PhasedWorkload::new(
///     Benchmark::Libquantum.build(1),
///     Benchmark::Canneal.build(2),
///     1000,
/// );
/// for _ in 0..2500 {
///     phased.next_access();
/// }
/// assert_eq!(phased.phase_switches(), 2);
/// ```
pub struct PhasedWorkload {
    first: Box<dyn Workload>,
    second: Box<dyn Workload>,
    phase_length: u64,
    position: u64,
    switches: u64,
}

impl PhasedWorkload {
    /// Creates the phased workload; each phase lasts `phase_length`
    /// accesses, starting with `first`.
    ///
    /// # Panics
    ///
    /// Panics if `phase_length` is zero.
    pub fn new(first: Box<dyn Workload>, second: Box<dyn Workload>, phase_length: u64) -> Self {
        assert!(phase_length > 0, "phase length must be positive");
        Self {
            first,
            second,
            phase_length,
            position: 0,
            switches: 0,
        }
    }

    /// Number of phase transitions so far.
    pub fn phase_switches(&self) -> u64 {
        self.switches
    }

    /// Whether the *next* access comes from the first workload.
    pub fn in_first_phase(&self) -> bool {
        (self.position / self.phase_length).is_multiple_of(2)
    }
}

impl Workload for PhasedWorkload {
    fn next_access(&mut self) -> MemAccess {
        let use_first = self.in_first_phase();
        let access = if use_first {
            self.first.next_access()
        } else {
            self.second.next_access()
        };
        self.position += 1;
        if self.position.is_multiple_of(self.phase_length) {
            self.switches += 1;
        }
        access
    }

    fn footprint_bytes(&self) -> u64 {
        self.first
            .footprint_bytes()
            .max(self.second.footprint_bytes())
    }

    fn name(&self) -> &'static str {
        "phased"
    }
}

/// How [`TenantMix`] multiplexes its tenants onto the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantSchedule {
    /// One tenant runs at a time for `slice` consecutive accesses, then
    /// the next — a shared core under a coarse scheduler quantum.
    TimeSliced {
        /// Accesses per scheduling quantum.
        slice: u64,
    },
    /// Tenants alternate every access — parallel cores whose memory
    /// streams interleave finely at the shared cache.
    CoreSharded,
}

/// Schedules N workloads as distinct tenants of one machine.
///
/// Each tenant's address stream is relocated into its own page-aligned
/// physical region (regions are disjoint, modelling OS/hypervisor
/// placement), and [`current_tenant`](Workload::current_tenant) reports
/// which tenant issued the most recent access so the simulator can
/// attribute metadata-cache traffic requester-pays style.
///
/// # Examples
///
/// ```
/// use maps_workloads::{Benchmark, TenantMix, TenantSchedule, Workload};
/// let mut mix = TenantMix::new(
///     vec![Benchmark::Gups.build(1), Benchmark::Libquantum.build(2)],
///     TenantSchedule::CoreSharded,
/// );
/// let _ = mix.next_access();
/// assert_eq!(mix.current_tenant().0, 0);
/// let _ = mix.next_access();
/// assert_eq!(mix.current_tenant().0, 1);
/// ```
pub struct TenantMix {
    parts: Vec<Box<dyn Workload>>,
    bases: Vec<u64>,
    schedule: TenantSchedule,
    footprint: u64,
    pos: u64,
    current: TenantId,
}

impl TenantMix {
    /// Creates the mix; tenant IDs follow the order of `parts`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, has more tenants than a [`TenantId`]
    /// can number, or a time slice of zero is requested.
    pub fn new(parts: Vec<Box<dyn Workload>>, schedule: TenantSchedule) -> Self {
        assert!(
            (1..=usize::from(u8::MAX)).contains(&parts.len()),
            "tenant count must be 1..=255"
        );
        if let TenantSchedule::TimeSliced { slice } = schedule {
            assert!(slice > 0, "time slice must be positive");
        }
        let mut bases = Vec::with_capacity(parts.len());
        let mut next = 0u64;
        for part in &parts {
            bases.push(next);
            next += part.footprint_bytes().next_multiple_of(PAGE_BYTES);
        }
        Self {
            parts,
            bases,
            schedule,
            footprint: next.max(PAGE_BYTES),
            pos: 0,
            current: TenantId::HOST,
        }
    }

    /// Number of tenants in the mix.
    pub fn tenant_count(&self) -> usize {
        self.parts.len()
    }

    /// The physical region `[base, base + len)` tenant `t` was placed in.
    pub fn region_of(&self, t: u8) -> (u64, u64) {
        let i = usize::from(t);
        let end = self.bases.get(i + 1).copied().unwrap_or(self.footprint);
        (self.bases[i], end - self.bases[i])
    }
}

impl Workload for TenantMix {
    fn next_access(&mut self) -> MemAccess {
        let n = self.parts.len() as u64;
        let t = match self.schedule {
            TenantSchedule::TimeSliced { slice } => (self.pos / slice) % n,
            TenantSchedule::CoreSharded => self.pos % n,
        } as usize;
        self.pos += 1;
        self.current = TenantId(t as u8);
        let a = self.parts[t].next_access();
        MemAccess::new(
            PhysAddr::new(self.bases[t] + a.addr.bytes()),
            a.kind,
            a.icount,
        )
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &'static str {
        "tenant-mix"
    }

    fn current_tenant(&self) -> TenantId {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, StreamGen};
    use maps_trace::TraceStats;

    fn stream(seed: u64, footprint: u64) -> Box<dyn Workload> {
        Box::new(StreamGen::new("s", seed, footprint, 1, 0.0, 4))
    }

    #[test]
    fn mix_draws_from_both() {
        // Distinguish sources by footprint: the small stream only touches
        // low addresses.
        let mut mix = MixWorkload::new(stream(1, 64 * 64), stream(2, 1 << 20), 0.5, 7);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..4000 {
            let a = mix.next_access();
            if a.addr.bytes() < 64 * 64 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 500, "first workload starved: {low}");
        assert!(high > 500, "second workload starved: {high}");
    }

    #[test]
    fn mix_probability_is_respected() {
        let mut mix = MixWorkload::new(stream(1, 64 * 64), stream(2, 1 << 24), 0.9, 3);
        let mut stats = TraceStats::new();
        let mut first = 0u64;
        for _ in 0..20_000 {
            let a = mix.next_access();
            stats.record(&a);
            // Second stream quickly leaves the small region.
            if a.addr.bytes() < 64 * 64 {
                first += 1;
            }
        }
        let frac = first as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.05, "first fraction {frac}");
    }

    #[test]
    fn phases_alternate_deterministically() {
        let mut phased = PhasedWorkload::new(stream(1, 64 * 64), stream(2, 1 << 20), 100);
        assert!(phased.in_first_phase());
        for _ in 0..100 {
            phased.next_access();
        }
        assert!(!phased.in_first_phase());
        for _ in 0..100 {
            phased.next_access();
        }
        assert!(phased.in_first_phase());
        assert_eq!(phased.phase_switches(), 2);
    }

    #[test]
    fn composes_with_benchmark_profiles() {
        let mut phased = PhasedWorkload::new(
            Benchmark::Libquantum.build(1),
            Benchmark::Canneal.build(2),
            500,
        );
        for _ in 0..2000 {
            let a = phased.next_access();
            assert!(a.addr.bytes() < phased.footprint_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_mix_probability_rejected() {
        MixWorkload::new(stream(1, 4096), stream(2, 4096), 1.5, 1);
    }

    #[test]
    fn tenant_mix_keeps_regions_disjoint() {
        let mut mix = TenantMix::new(
            vec![stream(1, 3 * 4096 + 100), stream(2, 8192), stream(3, 4096)],
            TenantSchedule::CoreSharded,
        );
        // Region layout is page-aligned and gap-free.
        assert_eq!(mix.region_of(0), (0, 4 * 4096));
        assert_eq!(mix.region_of(1), (4 * 4096, 2 * 4096));
        assert_eq!(mix.region_of(2), (6 * 4096, 4096));
        for _ in 0..3000 {
            let a = mix.next_access();
            let t = mix.current_tenant().0;
            let (base, len) = mix.region_of(t);
            assert!(
                (base..base + len).contains(&a.addr.bytes()),
                "tenant {t} escaped its region: {:#x}",
                a.addr.bytes()
            );
        }
        assert_eq!(mix.footprint_bytes(), 7 * 4096);
    }

    #[test]
    fn tenant_schedules_shape_the_interleaving() {
        let parts = || vec![stream(1, 4096), stream(2, 4096)];
        let mut sliced = TenantMix::new(parts(), TenantSchedule::TimeSliced { slice: 50 });
        for i in 0..200 {
            sliced.next_access();
            assert_eq!(u64::from(sliced.current_tenant().0), (i / 50) % 2);
        }
        let mut sharded = TenantMix::new(parts(), TenantSchedule::CoreSharded);
        for i in 0..200 {
            sharded.next_access();
            assert_eq!(u64::from(sharded.current_tenant().0), i % 2);
        }
    }

    #[test]
    fn tenant_mix_composes_with_profiles() {
        let mut mix = TenantMix::new(
            vec![Benchmark::Gups.build(4), Benchmark::Canneal.build(5)],
            TenantSchedule::TimeSliced { slice: 128 },
        );
        for _ in 0..1000 {
            let a = mix.next_access();
            assert!(a.addr.bytes() < mix.footprint_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "tenant count")]
    fn empty_tenant_mix_rejected() {
        TenantMix::new(Vec::new(), TenantSchedule::CoreSharded);
    }
}
