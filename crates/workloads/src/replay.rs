//! Replay of recorded access traces as a workload.

use maps_trace::{MemAccess, PhysAddr};

use crate::Workload;

/// Replays a recorded trace, optionally looping when exhausted.
///
/// Pairs with [`maps_trace::io`]: record any workload (or an external
/// simulator's trace) to the text format and feed it back through the full
/// secure-memory pipeline.
///
/// # Examples
///
/// ```
/// use maps_trace::{AccessKind, MemAccess, PhysAddr};
/// use maps_workloads::{ReplayWorkload, Workload};
///
/// let trace = vec![MemAccess::new(PhysAddr::new(64), AccessKind::Read, 4)];
/// let mut wl = ReplayWorkload::looping("demo", trace);
/// assert_eq!(wl.next_access().addr.bytes(), 64);
/// assert_eq!(wl.next_access().addr.bytes(), 64); // loops
/// ```
#[derive(Debug, Clone)]
pub struct ReplayWorkload {
    name: &'static str,
    trace: Vec<MemAccess>,
    cursor: usize,
    looping: bool,
    footprint: u64,
    exhausted: bool,
}

impl ReplayWorkload {
    /// Creates a one-shot replay; after the trace ends, the last access is
    /// repeated (and [`ReplayWorkload::is_exhausted`] reports `true`).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(name: &'static str, trace: Vec<MemAccess>) -> Self {
        Self::build(name, trace, false)
    }

    /// Creates a replay that restarts from the beginning when exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn looping(name: &'static str, trace: Vec<MemAccess>) -> Self {
        Self::build(name, trace, true)
    }

    fn build(name: &'static str, trace: Vec<MemAccess>, looping: bool) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let footprint = trace
            .iter()
            .map(|a| a.addr.block().index() + 1)
            .max()
            .unwrap_or(1)
            * maps_trace::BLOCK_BYTES;
        Self {
            name,
            trace,
            cursor: 0,
            looping,
            footprint,
            exhausted: false,
        }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` when the trace holds no records (never: construction
    /// rejects empty traces; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Whether a one-shot replay has run past its end.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Workload for ReplayWorkload {
    fn next_access(&mut self) -> MemAccess {
        if self.cursor >= self.trace.len() {
            if self.looping {
                self.cursor = 0;
            } else {
                self.exhausted = true;
                return *self.trace.last().expect("non-empty trace");
            }
        }
        let access = self.trace[self.cursor];
        self.cursor += 1;
        access
    }

    fn footprint_bytes(&self) -> u64 {
        // Footprint must cover the highest touched block; round up to the
        // next page for the secure-memory layout.
        self.footprint
            .next_multiple_of(maps_trace::PAGE_BYTES)
            .max(PhysAddr::new(0).bytes() + 4096)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::AccessKind;

    fn trace() -> Vec<MemAccess> {
        vec![
            MemAccess::new(PhysAddr::new(0), AccessKind::Read, 1),
            MemAccess::new(PhysAddr::new(8192), AccessKind::Write, 2),
        ]
    }

    #[test]
    fn one_shot_repeats_last_and_reports_exhaustion() {
        let mut wl = ReplayWorkload::new("t", trace());
        wl.next_access();
        wl.next_access();
        assert!(!wl.is_exhausted());
        let tail = wl.next_access();
        assert!(wl.is_exhausted());
        assert_eq!(tail.addr.bytes(), 8192);
    }

    #[test]
    fn looping_restarts() {
        let mut wl = ReplayWorkload::looping("t", trace());
        let a = wl.next_access();
        wl.next_access();
        assert_eq!(wl.next_access(), a);
        assert!(!wl.is_exhausted());
    }

    #[test]
    fn footprint_covers_highest_block() {
        let wl = ReplayWorkload::new("t", trace());
        assert!(wl.footprint_bytes() > 8192);
        assert_eq!(wl.footprint_bytes() % 4096, 0);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        ReplayWorkload::new("t", Vec::new());
    }
}
