//! Per-benchmark workload profiles.
//!
//! Parameters encode the published characteristics the paper's analysis
//! depends on — not the benchmarks' computation. Footprints are scaled to
//! keep simulation fast while remaining far larger than the 2 MB LLC for
//! the memory-intensive set.

use std::fmt;

use crate::engines::{
    FftGen, HotColdGen, PointerChaseGen, RandomGen, StencilGen, StreamGen, TiledPassGen,
    TreeWalkGen, Workload,
};

/// The benchmark profiles used throughout the figure harnesses.
///
/// Named after the PARSEC/SPLASH2/SPEC 2006 workloads whose access-pattern
/// properties they synthesize (see module docs and DESIGN.md).
///
/// # Examples
///
/// ```
/// use maps_workloads::Benchmark;
/// let mut wl = Benchmark::Canneal.build(1);
/// assert_eq!(wl.name(), "canneal");
/// assert!(Benchmark::memory_intensive().contains(&Benchmark::Canneal));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// PARSEC canneal: huge footprint, almost no spatial locality.
    Canneal,
    /// SPEC libquantum: streams repeatedly through a 4 MB array.
    Libquantum,
    /// SPLASH2 fft: butterfly phases, ~20 % writes (most writes in the
    /// memory-intensive set, Figure 5).
    Fft,
    /// SPEC leslie3d: multi-array stencil streams, ~5 % writes.
    Leslie3d,
    /// SPEC mcf: pointer chasing over a large graph.
    Mcf,
    /// SPLASH2 barnes: octree walks, heavy upper-level reuse.
    Barnes,
    /// SPEC cactusADM: large 3D stencil with mid-range reuse distances
    /// (one of the two non-bimodal outliers in Figure 4).
    CactusAdm,
    /// SPEC perlbench: small, cache-resident working set.
    Perl,
    /// SPEC gcc: modest working set with some cold sweeps.
    Gcc,
    /// SPEC milc: 4D lattice sweeps.
    Milc,
    /// SPEC omnetpp: event-queue pointer chasing with a hot core.
    Omnetpp,
    /// SPEC soplex: sparse-matrix column sweeps (strided).
    Soplex,
    /// SPEC lbm: two-grid streaming with a high write share.
    Lbm,
    /// HPCC GUPS-style random read-modify-write, worst-case locality.
    Gups,
}

impl Benchmark {
    /// Every profile, in the order figures list them.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Barnes,
        Benchmark::CactusAdm,
        Benchmark::Canneal,
        Benchmark::Fft,
        Benchmark::Gcc,
        Benchmark::Gups,
        Benchmark::Lbm,
        Benchmark::Leslie3d,
        Benchmark::Libquantum,
        Benchmark::Mcf,
        Benchmark::Milc,
        Benchmark::Omnetpp,
        Benchmark::Perl,
        Benchmark::Soplex,
    ];

    /// The memory-intensive subset (LLC MPKI > 10) the paper focuses on.
    pub fn memory_intensive() -> Vec<Benchmark> {
        Self::ALL
            .iter()
            .copied()
            .filter(|b| b.is_memory_intensive())
            .collect()
    }

    /// Whether this profile's LLC MPKI exceeds the paper's threshold of 10.
    pub const fn is_memory_intensive(self) -> bool {
        !matches!(self, Benchmark::Perl | Benchmark::Gcc)
    }

    /// Lower-case display name (matches the paper's figures).
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Canneal => "canneal",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Fft => "fft",
            Benchmark::Leslie3d => "leslie3d",
            Benchmark::Mcf => "mcf",
            Benchmark::Barnes => "barnes",
            Benchmark::CactusAdm => "cactusADM",
            Benchmark::Perl => "perl",
            Benchmark::Gcc => "gcc",
            Benchmark::Milc => "milc",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::Soplex => "soplex",
            Benchmark::Lbm => "lbm",
            Benchmark::Gups => "gups",
        }
    }

    /// Parses a display name back into a profile.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Self::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Builds the workload generator for this profile.
    pub fn build(self, seed: u64) -> Box<dyn Workload> {
        const KB: u64 = 1024;
        const MB: u64 = 1024 * KB;
        match self {
            // Huge footprint, mostly-random placement walk; a small burst
            // probability models element swaps touching both endpoints.
            Benchmark::Canneal => {
                Box::new(RandomGen::new("canneal", seed, 128 * MB, 0.12, 6, 0.10, 8))
            }
            // Tight streaming loop over a 4 MB array (Section IV-C).
            Benchmark::Libquantum => {
                Box::new(StreamGen::new("libquantum", seed, 4 * MB, 1, 0.02, 8))
            }
            // Butterfly phases with 20% writes.
            Benchmark::Fft => Box::new(FftGen::new("fft", seed, 16 * MB, 0.20, 6)),
            // Multi-array stencil with 5% writes.
            Benchmark::Leslie3d => Box::new(StencilGen::new(
                "leslie3d",
                seed,
                24 * MB,
                256 * KB,
                3,
                0.05,
                7,
            )),
            // Large pointer chase, read-dominated.
            Benchmark::Mcf => Box::new(PointerChaseGen::new(
                "mcf",
                seed,
                48 * MB,
                0.04,
                4,
                0.05,
                512 * KB,
            )),
            // Octree walks: root levels cache-resident, leaves cold.
            Benchmark::Barnes => Box::new(TreeWalkGen::new("barnes", seed, 8 * MB, 8, 0.05, 10)),
            // Blocked multi-pass sweep: tile metadata revisited once per
            // pass at mid-range reuse distances (Figure 4 outlier).
            Benchmark::CactusAdm => Box::new(TiledPassGen::new(
                "cactusADM",
                seed,
                32 * MB,
                128 * KB,
                0.15,
                8,
            )),
            // Small working set: almost everything hits on chip.
            Benchmark::Perl => {
                Box::new(HotColdGen::new("perl", seed, MB, 256 * KB, 0.97, 0.20, 15))
            }
            Benchmark::Gcc => Box::new(HotColdGen::new(
                "gcc",
                seed,
                3 * MB,
                512 * KB,
                0.94,
                0.15,
                12,
            )),
            // Lattice sweeps with moderate stride.
            Benchmark::Milc => {
                Box::new(StencilGen::new("milc", seed, 24 * MB, 512 * KB, 2, 0.08, 7))
            }
            // Pointer chase with a hot event queue.
            Benchmark::Omnetpp => Box::new(PointerChaseGen::new(
                "omnetpp",
                seed,
                24 * MB,
                0.12,
                9,
                0.30,
                MB,
            )),
            // Column sweeps: stride of 8 blocks models sparse row jumps.
            Benchmark::Soplex => Box::new(StreamGen::new("soplex", seed, 12 * MB, 8, 0.06, 8)),
            // Two-grid streaming, write-heavy.
            Benchmark::Lbm => Box::new(StreamGen::new("lbm", seed, 32 * MB, 1, 0.35, 7)),
            // Worst-case random read-modify-write.
            Benchmark::Gups => Box::new(RandomGen::new("gups", seed, 64 * MB, 0.50, 5, 0.0, 1)),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::TraceStats;

    #[test]
    fn all_profiles_build_and_stay_in_footprint() {
        for b in Benchmark::ALL {
            let mut wl = b.build(7);
            assert_eq!(wl.name(), b.name());
            for _ in 0..2000 {
                let a = wl.next_access();
                assert!(
                    a.addr.bytes() < wl.footprint_bytes(),
                    "{b}: access beyond footprint"
                );
            }
        }
    }

    #[test]
    fn name_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("CANNEAL"), Some(Benchmark::Canneal));
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }

    #[test]
    fn write_fractions_match_paper_claims() {
        // fft ~20% writes, leslie3d ~5% (Section IV-E).
        for (b, expect, tol) in [
            (Benchmark::Fft, 0.20, 0.03),
            (Benchmark::Leslie3d, 0.05, 0.02),
        ] {
            let mut wl = b.build(3);
            let mut stats = TraceStats::new();
            for _ in 0..30_000 {
                stats.record(&wl.next_access());
            }
            let wf = stats.write_fraction();
            assert!((wf - expect).abs() < tol, "{b}: write fraction {wf}");
        }
    }

    #[test]
    fn memory_intensive_set_excludes_small_working_sets() {
        let mi = Benchmark::memory_intensive();
        assert!(!mi.contains(&Benchmark::Perl));
        assert!(!mi.contains(&Benchmark::Gcc));
        assert!(mi.contains(&Benchmark::Canneal));
        assert!(mi.len() >= 10);
    }

    #[test]
    fn canneal_has_far_larger_footprint_than_libquantum() {
        let canneal = Benchmark::Canneal.build(1).footprint_bytes();
        let libq = Benchmark::Libquantum.build(1).footprint_bytes();
        assert!(canneal >= 16 * libq);
    }

    #[test]
    fn canneal_spreads_and_perl_concentrates() {
        let spread = |b: Benchmark| {
            let mut wl = b.build(9);
            let mut stats = TraceStats::new();
            for _ in 0..20_000 {
                stats.record(&wl.next_access());
            }
            stats.accesses_per_block()
        };
        assert!(spread(Benchmark::Perl) > 3.0 * spread(Benchmark::Canneal));
    }
}
