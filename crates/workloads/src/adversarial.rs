//! Adversarial generators for differential testing.
//!
//! Unlike the benchmark profiles in [`crate::profiles`], these streams are
//! not meant to resemble any real program: each one is shaped to push a
//! specific engine mechanism to its boundary — counter overflow and page
//! re-encryption, deep eviction-driven update cascades, and the
//! set-dueling partition controller — where divergence between the
//! production engine and the oracle is most likely to hide.

use maps_trace::rng::SmallRng;
use maps_trace::{AccessKind, MemAccess, PhysAddr, BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};

use crate::engines::Workload;

/// Saturates 7-bit split counters as fast as possible: almost every access
/// is a write, and all writes land on a handful of hot blocks, so the
/// 127-write per-block overflow threshold trips every couple hundred
/// accesses and page re-encryption runs constantly.
#[derive(Debug, Clone)]
pub struct OverflowHeavyGen {
    rng: SmallRng,
    hot_blocks: u64,
    pages: u64,
}

impl OverflowHeavyGen {
    /// Creates the generator over `pages` 4 KB pages with `hot_blocks`
    /// write targets (clamped to the footprint).
    ///
    /// # Panics
    ///
    /// Panics if `pages` is 0.
    pub fn new(seed: u64, pages: u64, hot_blocks: u64) -> Self {
        assert!(pages > 0, "need at least one page");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            hot_blocks: hot_blocks.clamp(1, pages * BLOCKS_PER_PAGE),
            pages,
        }
    }
}

impl Workload for OverflowHeavyGen {
    fn next_access(&mut self) -> MemAccess {
        // 90% writes to the hot blocks, 10% reads roaming the footprint so
        // the metadata cache also sees read traffic between overflows.
        let (block, kind) = if self.rng.gen_bool(0.9) {
            (self.rng.gen_range(0..self.hot_blocks), AccessKind::Write)
        } else {
            (
                self.rng.gen_range(0..self.pages * BLOCKS_PER_PAGE),
                AccessKind::Read,
            )
        };
        MemAccess::new(PhysAddr::new(block * BLOCK_BYTES), kind, 4)
    }

    fn footprint_bytes(&self) -> u64 {
        self.pages * PAGE_BYTES
    }

    fn name(&self) -> &'static str {
        "overflow_heavy"
    }
}

/// Provokes deep eviction cascades: writes dirty one block in each of a
/// rotating family of pages spaced `conflict_stride_pages` apart, so their
/// counter blocks (one per page, contiguous in the metadata region) keep
/// colliding in the same metadata-cache sets. Evicting a dirty counter
/// writes its tree leaf, which evicts another dirty line, and so on —
/// exactly the re-entrant cascade path the engine's cascade budget bounds.
#[derive(Debug, Clone)]
pub struct CascadeDeepGen {
    rng: SmallRng,
    pages: u64,
    conflict_stride_pages: u64,
    cursor: u64,
}

impl CascadeDeepGen {
    /// Creates the generator over `pages` pages, striding
    /// `conflict_stride_pages` between successive write targets. Pick the
    /// stride equal to the metadata cache's set count to maximize set
    /// conflicts among counter blocks.
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `conflict_stride_pages` is 0.
    pub fn new(seed: u64, pages: u64, conflict_stride_pages: u64) -> Self {
        assert!(pages > 0, "need at least one page");
        assert!(conflict_stride_pages > 0, "stride must be positive");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            pages,
            conflict_stride_pages,
            cursor: 0,
        }
    }
}

impl Workload for CascadeDeepGen {
    fn next_access(&mut self) -> MemAccess {
        self.cursor = (self.cursor + self.conflict_stride_pages) % self.pages;
        // Mostly writes (dirty counters are what cascade); a sprinkle of
        // reads inserts clean lines between the dirty ones so eviction
        // order is not trivially FIFO.
        let kind = if self.rng.gen_bool(0.8) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let slot = self.rng.gen_range(0..BLOCKS_PER_PAGE);
        let block = self.cursor * BLOCKS_PER_PAGE + slot;
        MemAccess::new(PhysAddr::new(block * BLOCK_BYTES), kind, 4)
    }

    fn footprint_bytes(&self) -> u64 {
        self.pages * PAGE_BYTES
    }

    fn name(&self) -> &'static str {
        "cascade_deep"
    }
}

/// Alternates counter-heavy and hash-heavy phases to whipsaw the
/// set-dueling partition controller across its decision boundary: phase A
/// touches one block per page across many pages (counter blocks dominate),
/// phase B sweeps blocks eight apart within few pages (hash blocks
/// dominate). Each phase lasts `phase_len` accesses.
#[derive(Debug, Clone)]
pub struct PartitionBoundaryGen {
    rng: SmallRng,
    pages: u64,
    phase_len: u64,
    tick: u64,
    cursor: u64,
}

impl PartitionBoundaryGen {
    /// Creates the generator over `pages` pages with `phase_len` accesses
    /// per phase.
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `phase_len` is 0.
    pub fn new(seed: u64, pages: u64, phase_len: u64) -> Self {
        assert!(pages > 0, "need at least one page");
        assert!(phase_len > 0, "phase length must be positive");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            pages,
            phase_len,
            tick: 0,
            cursor: 0,
        }
    }
}

impl Workload for PartitionBoundaryGen {
    fn next_access(&mut self) -> MemAccess {
        let phase_a = (self.tick / self.phase_len).is_multiple_of(2);
        self.tick += 1;
        self.cursor += 1;
        let block = if phase_a {
            // Counter-heavy: one block per page, new page every access.
            (self.cursor % self.pages) * BLOCKS_PER_PAGE
        } else {
            // Hash-heavy: stride 8 within a few pages, so every access
            // lands in a different hash block but few counter blocks.
            let span = self.pages.min(4) * BLOCKS_PER_PAGE;
            (self.cursor * 8) % span
        };
        let kind = if self.rng.gen_bool(0.3) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        MemAccess::new(PhysAddr::new(block * BLOCK_BYTES), kind, 4)
    }

    fn footprint_bytes(&self) -> u64 {
        self.pages * PAGE_BYTES
    }

    fn name(&self) -> &'static str {
        "partition_boundary"
    }
}

/// The attacker half of the metadata-cache occupancy channel: a cyclic
/// one-block-per-page sweep over `probe_pages` pages. Each page owns one
/// counter block, so the sweep touches `probe_pages` *distinct* counter
/// lines per round — a probe set sized against the metadata cache. When a
/// co-resident victim's working set inflates, it evicts probe lines, and
/// the attacker reads its own miss ratio as a measure of the victim's
/// footprint (the channel `fig_occupancy` quantifies).
#[derive(Debug, Clone)]
pub struct OccupancyProbe {
    rng: SmallRng,
    probe_pages: u64,
    cursor: u64,
}

impl OccupancyProbe {
    /// Creates the probe over `probe_pages` pages. Size it so the probe's
    /// counter blocks just fill the metadata cache under test:
    /// `mdc_bytes / 64` pages.
    ///
    /// # Panics
    ///
    /// Panics if `probe_pages` is 0.
    pub fn new(seed: u64, probe_pages: u64) -> Self {
        assert!(probe_pages > 0, "need at least one probe page");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            probe_pages,
            cursor: 0,
        }
    }
}

impl Workload for OccupancyProbe {
    fn next_access(&mut self) -> MemAccess {
        let page = self.cursor % self.probe_pages;
        self.cursor += 1;
        // Vary the block within the page (same counter block either way)
        // so the data hierarchy doesn't trivially absorb the sweep.
        let slot = self.rng.gen_range(0..BLOCKS_PER_PAGE);
        let block = page * BLOCKS_PER_PAGE + slot;
        MemAccess::new(PhysAddr::new(block * BLOCK_BYTES), AccessKind::Read, 2)
    }

    fn footprint_bytes(&self) -> u64 {
        self.probe_pages * PAGE_BYTES
    }

    fn name(&self) -> &'static str {
        "occupancy_probe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within_footprint(w: &mut dyn Workload, n: usize) {
        for _ in 0..n {
            let a = w.next_access();
            assert!(a.addr.bytes() < w.footprint_bytes());
        }
    }

    #[test]
    fn generators_stay_within_footprint() {
        within_footprint(&mut OverflowHeavyGen::new(1, 4, 2), 5000);
        within_footprint(&mut CascadeDeepGen::new(2, 64, 16), 5000);
        within_footprint(&mut PartitionBoundaryGen::new(3, 32, 200), 5000);
        within_footprint(&mut OccupancyProbe::new(4, 16), 5000);
    }

    #[test]
    fn occupancy_probe_sweeps_every_page_each_round() {
        let mut p = OccupancyProbe::new(9, 16);
        let pages: Vec<u64> = (0..32)
            .map(|_| p.next_access().addr.block().page().index())
            .collect();
        // Cyclic: page i, then wrap. Every round covers all 16 probe pages
        // in order, so every counter block is re-touched exactly once.
        for (i, page) in pages.iter().enumerate() {
            assert_eq!(*page, (i as u64) % 16, "sweep broken at {i}: {pages:?}");
        }
    }

    #[test]
    fn overflow_heavy_is_write_dominated_and_concentrated() {
        let mut g = OverflowHeavyGen::new(7, 4, 2);
        let mut writes = 0;
        let mut hot_writes = 0;
        for _ in 0..10_000 {
            let a = g.next_access();
            if a.kind == AccessKind::Write {
                writes += 1;
                if a.addr.block().index() < 2 {
                    hot_writes += 1;
                }
            }
        }
        assert!(writes > 8_500, "writes {writes}");
        assert_eq!(hot_writes, writes, "all writes must target hot blocks");
    }

    #[test]
    fn cascade_deep_rotates_pages_at_stride() {
        let mut g = CascadeDeepGen::new(1, 64, 16);
        let pages: Vec<u64> = (0..8)
            .map(|_| g.next_access().addr.block().page().index())
            .collect();
        for w in pages.windows(2) {
            assert_eq!((w[1] + 64 - w[0]) % 64, 16, "stride broken: {pages:?}");
        }
    }

    #[test]
    fn partition_boundary_alternates_phase_character() {
        let mut g = PartitionBoundaryGen::new(5, 32, 100);
        // Phase A: every access in a different page.
        let a_pages: std::collections::HashSet<u64> = (0..32)
            .map(|_| g.next_access().addr.block().page().index())
            .collect();
        assert!(a_pages.len() >= 30, "phase A pages {}", a_pages.len());
        for _ in 32..100 {
            g.next_access();
        }
        // Phase B: few pages.
        let b_pages: std::collections::HashSet<u64> = (0..32)
            .map(|_| g.next_access().addr.block().page().index())
            .collect();
        assert!(b_pages.len() <= 4, "phase B pages {}", b_pages.len());
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut g = CascadeDeepGen::new(seed, 32, 8);
            (0..64)
                .map(|_| (g.next_access().addr.bytes(), g.next_access().kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }
}
