//! Naive restatements of the production cache containers.
//!
//! [`SpecCache`] keeps one `Vec<Option<Line>>` per set and finds lines by
//! scanning it — no packed tag array, no fused lookup-and-mark entry
//! points, no precomputed way-id slices, no set masks. The *replacement
//! policies themselves* are shared with production ([`AnyPolicy`]): they
//! are part of the specification (reimplementing eleven heuristics
//! bit-exactly would only manufacture false differential alarms), while
//! everything around them — residency tracking, fill/eviction plumbing,
//! statistics, the policy time base — is restated independently.
//!
//! [`SpecRandomizedCache`] restates the MIRAGE-style randomized backend
//! the same way: `Option`-per-slot tag sets and `Option`-per-frame
//! storage instead of the production struct-of-arrays, with tenant
//! occupancy recomputed by scanning rather than a ledger. The keyed index
//! ([`maps_cache::keyed_index`]), key derivation
//! ([`maps_cache::derive_keys`]), and the RNG are shared — they are the
//! specification of *where* things land — while the install decision
//! procedure (tag conflict → quota eviction → global eviction, one draw
//! max) is re-implemented and must draw identically.

use maps_cache::policy::AnyPolicy;
use maps_cache::{
    derive_keys, keyed_index, CacheStats, DuelingController, Line, Partition, Policy,
    TenantPartition, SKEWS,
};
use maps_sim::{CacheContents, MdcConfig, MdcDesign, PartitionMode};
use maps_trace::rng::SmallRng;
use maps_trace::{BlockKind, TenantId, BLOCK_BYTES};

/// Outcome of one access (mirrors `maps_cache::AccessResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecAccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
}

/// Outcome of a metadata-cache access (mirrors `maps_sim::mdcache::MdOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecMdOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
    /// `true` when the kind is not admitted (statistics-only probe).
    pub bypassed: bool,
}

/// The deliberately slow set-associative cache.
#[derive(Debug)]
pub struct SpecCache {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    policy: AnyPolicy,
    partition: Option<Partition>,
    stats: CacheStats,
    time: u64,
}

impl SpecCache {
    /// Creates a cache with `sets * ways` frames.
    pub fn new(sets: usize, ways: usize, mut policy: AnyPolicy) -> Self {
        policy.init(sets, ways);
        Self {
            sets: vec![vec![None; ways]; sets],
            ways,
            policy,
            partition: None,
            stats: CacheStats::default(),
            time: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Installs a static way partition.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        if let Some(p) = &partition {
            p.validate(self.ways);
        }
        self.partition = partition;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Accesses performed so far (the policy time base).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The set index of a key: plain remainder, the definitional form of
    /// the production mask-based `CacheConfig::set_of`.
    pub fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    fn find_way(&self, set: usize, key: u64) -> Option<usize> {
        self.sets[set]
            .iter()
            .position(|l| l.as_ref().is_some_and(|l| l.key == key))
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.find_way(set, key).is_some()
    }

    /// The resident line for `key`, if any.
    pub fn line(&self, key: u64) -> Option<&Line> {
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        self.sets[set][way].as_ref()
    }

    /// Accesses `key`, allocating on miss.
    pub fn access_with(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        partition_override: Option<&Partition>,
    ) -> SpecAccessResult {
        let ways = self.allowed_ways(kind, partition_override);
        self.access_in_ways(key, kind, write, ways)
    }

    /// Accesses `key` with fills confined to the way range `ways` (hits
    /// are range-unrestricted, matching the production per-tenant split).
    pub fn access_in_ways(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        ways: (usize, usize),
    ) -> SpecAccessResult {
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        let set = self.set_of(key);

        if let Some(way) = self.find_way(set, key) {
            {
                let line = self.sets[set][way].as_mut().expect("resident line");
                line.last_at = t;
                if write {
                    line.dirty = true;
                }
            }
            self.policy.on_hit(set, way, t, kind);
            self.stats.record_access(kind, true);
            return SpecAccessResult {
                hit: true,
                evicted: None,
            };
        }

        self.stats.record_access(kind, false);
        let mut new_line = Line::filled(key, kind, t);
        new_line.dirty = write;
        let evicted = self.fill(set, new_line, ways);
        SpecAccessResult {
            hit: false,
            evicted,
        }
    }

    /// Probes without allocating or advancing time.
    pub fn probe(&mut self, key: u64, kind: BlockKind) -> bool {
        let set = self.set_of(key);
        let hit = self.find_way(set, key).is_some();
        self.stats.record_access(kind, hit);
        hit
    }

    /// Hit path of a partial write (the production fused
    /// `access_mark_valid`): a write hit followed by marking `slot` valid,
    /// with the policy observing the line *before* the new bit lands.
    /// `None` (and no state change) when `key` is not resident.
    pub fn access_mark_valid(&mut self, key: u64, kind: BlockKind, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        {
            let line = self.sets[set][way].as_mut().expect("resident line");
            line.last_at = t;
            line.dirty = true;
        }
        self.policy.on_hit(set, way, t, kind);
        self.stats.record_access(kind, true);
        let line = self.sets[set][way].as_mut().expect("resident line");
        line.valid_mask |= 1 << slot;
        Some(line.valid_mask)
    }

    /// Marks a sub-entry valid on a resident line (no time advance).
    pub fn mark_valid(&mut self, key: u64, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        let line = self.sets[set][way].as_mut()?;
        line.valid_mask |= 1 << slot;
        line.dirty = true;
        Some(line.valid_mask)
    }

    /// Inserts a partial-write placeholder (miss path; key must not be
    /// resident). Does not advance time.
    pub fn insert_placeholder(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        partition_override: Option<&Partition>,
    ) -> Option<Line> {
        let ways = self.allowed_ways(kind, partition_override);
        self.insert_placeholder_in_ways(key, kind, slot, ways)
    }

    /// [`insert_placeholder`](Self::insert_placeholder) with the fill
    /// confined to the way range `ways`.
    pub fn insert_placeholder_in_ways(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        ways: (usize, usize),
    ) -> Option<Line> {
        let set = self.set_of(key);
        assert!(
            self.find_way(set, key).is_none(),
            "placeholder insert for resident key {key}"
        );
        let t = self.time;
        self.fill(set, Line::placeholder(key, kind, t, slot), ways)
    }

    /// Drains every resident line in frame order (set-major).
    pub fn drain(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for frame in set.iter_mut() {
                if let Some(line) = frame.take() {
                    out.push(line);
                }
            }
        }
        out
    }

    /// Iterates over resident lines in frame order.
    pub fn resident_lines(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flatten().filter_map(Option::as_ref)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.resident_lines().count()
    }

    fn allowed_ways(
        &self,
        kind: BlockKind,
        partition_override: Option<&Partition>,
    ) -> (usize, usize) {
        match partition_override.or(self.partition.as_ref()) {
            Some(p) => p.ways_for(kind, self.ways),
            None => (0, self.ways),
        }
    }

    fn fill(&mut self, set: usize, new_line: Line, (lo, hi): (usize, usize)) -> Option<Line> {
        if let Some(way) = (lo..hi).find(|&w| self.sets[set][w].is_none()) {
            self.sets[set][way] = Some(new_line);
            self.policy.on_fill(set, way, &new_line);
            return None;
        }

        let candidates: Vec<usize> = (lo..hi).collect();
        let way = self.policy.choose_victim(
            set,
            &candidates,
            &maps_cache::SetView::from_slice(&self.sets[set]),
            self.time,
        );
        assert!((lo..hi).contains(&way), "policy chose non-candidate way");
        let victim = self.sets[set][way].take().expect("victim line");
        self.policy.on_evict(set, way, &victim, self.time);
        self.stats.record_eviction(victim.kind, victim.dirty);
        self.sets[set][way] = Some(new_line);
        self.policy.on_fill(set, way, &new_line);
        Some(victim)
    }
}

/// One occupied frame of the naive randomized cache.
#[derive(Debug, Clone, Copy)]
struct SpecFrame {
    line: Line,
    owner: u8,
    /// The tag slot pointing at this frame.
    slot: usize,
}

/// The deliberately slow MIRAGE-style randomized cache: `Option`-per-slot
/// tag store, `Option`-per-frame data store, and tenant occupancy found
/// by scanning frames instead of a ledger. Shares [`keyed_index`],
/// [`derive_keys`], and the RNG stream with production, and re-implements
/// the one-draw install decision procedure (tag conflict → quota
/// eviction → global eviction); the differential suite holds the two
/// bit-equal.
#[derive(Debug)]
pub struct SpecRandomizedCache {
    ways: usize,
    sets: usize,
    seeds: [u64; SKEWS],
    rng: SmallRng,
    /// `SKEWS * sets` sets of `ways` slots, each holding a resident key
    /// and the frame it points to.
    tags: Vec<Vec<Option<(u64, usize)>>>,
    frames: Vec<Option<SpecFrame>>,
    /// Free-frame stack, same LIFO order as production (pops ascend).
    free: Vec<usize>,
    quota: Option<usize>,
    stats: CacheStats,
    time: u64,
}

impl SpecRandomizedCache {
    /// Creates the cache (same geometry contract as production:
    /// `size_bytes` a positive multiple of `ways * 64`).
    pub fn new(size_bytes: u64, ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert_eq!(size_bytes % (ways as u64 * BLOCK_BYTES), 0);
        let capacity = (size_bytes / BLOCK_BYTES) as usize;
        assert!(capacity > 0, "cache must have at least one frame");
        let sets = capacity.div_ceil(ways).next_power_of_two();
        let (seeds, rng_seed) = derive_keys(seed);
        Self {
            ways,
            sets,
            seeds,
            rng: SmallRng::seed_from_u64(rng_seed),
            tags: vec![vec![None; ways]; SKEWS * sets],
            frames: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            quota: None,
            stats: CacheStats::default(),
            time: 0,
        }
    }

    /// Installs a per-tenant frame quota of `capacity / tenants` frames
    /// (minimum one).
    pub fn set_tenant_quota(&mut self, tenants: usize) {
        assert!(tenants >= 1, "tenant count must be positive");
        self.quota = Some((self.frames.len() / tenants).max(1));
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Accesses performed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.frames.iter().flatten().count()
    }

    /// Live frames owned by `tenant`, by definition: a scan.
    pub fn tenant_occupancy(&self, tenant: u8) -> u64 {
        self.frames
            .iter()
            .flatten()
            .filter(|f| f.owner == tenant)
            .count() as u64
    }

    /// The set index of `key` in `skew`.
    fn set_of(&self, skew: usize, key: u64) -> usize {
        skew * self.sets + keyed_index(self.seeds[skew], key, self.sets)
    }

    /// Finds `key`'s tag slot `(set, way)` and frame, skew 0 first.
    fn locate(&self, key: u64) -> Option<(usize, usize, usize)> {
        for skew in 0..SKEWS {
            let set = self.set_of(skew, key);
            for (way, slot) in self.tags[set].iter().enumerate() {
                if let Some((k, frame)) = slot {
                    if *k == key {
                        return Some((set, way, *frame));
                    }
                }
            }
        }
        None
    }

    /// The resident line for `key`, if any.
    pub fn line(&self, key: u64) -> Option<&Line> {
        let (_, _, frame) = self.locate(key)?;
        self.frames[frame].as_ref().map(|f| &f.line)
    }

    /// Accesses `key` as `tenant`, allocating on miss.
    pub fn access(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        tenant: u8,
    ) -> SpecAccessResult {
        let t = self.time;
        self.time += 1;
        if let Some((_, _, frame)) = self.locate(key) {
            let line = &mut self.frames[frame].as_mut().expect("resident frame").line;
            line.last_at = t;
            if write {
                line.dirty = true;
            }
            self.stats.record_access(kind, true);
            return SpecAccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.stats.record_access(kind, false);
        let mut new_line = Line::filled(key, kind, t);
        new_line.dirty = write;
        let evicted = self.install(new_line, tenant);
        SpecAccessResult {
            hit: false,
            evicted,
        }
    }

    /// Probes without allocating or refreshing recency.
    pub fn probe(&mut self, key: u64, kind: BlockKind) -> bool {
        let hit = self.locate(key).is_some();
        self.stats.record_access(kind, hit);
        hit
    }

    /// Hit path of a partial write (fused write-hit + mark-valid).
    pub fn access_mark_valid(&mut self, key: u64, kind: BlockKind, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let (_, _, frame) = self.locate(key)?;
        let t = self.time;
        self.time += 1;
        let line = &mut self.frames[frame].as_mut().expect("resident frame").line;
        line.last_at = t;
        line.dirty = true;
        self.stats.record_access(kind, true);
        line.valid_mask |= 1 << slot;
        Some(line.valid_mask)
    }

    /// Marks a sub-entry valid on a resident line (no time advance).
    pub fn mark_valid(&mut self, key: u64, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let (_, _, frame) = self.locate(key)?;
        let line = &mut self.frames[frame].as_mut().expect("resident frame").line;
        line.valid_mask |= 1 << slot;
        line.dirty = true;
        Some(line.valid_mask)
    }

    /// Inserts a partial-write placeholder (key must not be resident).
    pub fn insert_placeholder(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        tenant: u8,
    ) -> Option<Line> {
        assert!(
            self.locate(key).is_none(),
            "placeholder insert for resident key {key}"
        );
        let t = self.time;
        self.install(Line::placeholder(key, kind, t, slot), tenant)
    }

    /// Drains every resident line in frame order, resetting the free
    /// list to its initial order.
    pub fn drain(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for frame in self.frames.iter_mut() {
            if let Some(f) = frame.take() {
                self.tags[f.slot / self.ways][f.slot % self.ways] = None;
                out.push(f.line);
            }
        }
        self.free = (0..self.frames.len()).rev().collect();
        out
    }

    /// Iterates over resident lines in frame order.
    pub fn resident_lines(&self) -> impl Iterator<Item = &Line> {
        self.frames.iter().flatten().map(|f| &f.line)
    }

    /// Frees `frame`, clearing its tag slot and returning the line.
    fn evict_frame(&mut self, frame: usize) -> Line {
        let f = self.frames[frame].take().expect("evicting a free frame");
        self.tags[f.slot / self.ways][f.slot % self.ways] = None;
        self.free.push(frame);
        f.line
    }

    /// The install decision procedure, restated: one victim and one RNG
    /// draw at most, in production's order (see
    /// `maps_cache::RandomizedCache::install`).
    fn install(&mut self, new_line: Line, tenant: u8) -> Option<Line> {
        let mut victim = None;

        // 1. Tag slot: both candidate sets full is a tag conflict (one
        //    draw over skew 0's slots then skew 1's); otherwise the skew
        //    with more empties wins, tie to skew 0, first empty slot.
        let sets = [self.set_of(0, new_line.key), self.set_of(1, new_line.key)];
        let empties: Vec<usize> = sets
            .iter()
            .map(|&s| self.tags[s].iter().filter(|w| w.is_none()).count())
            .collect();
        let (set, way) = if empties.iter().all(|&e| e == 0) {
            let r = self.rng.gen_range(0..SKEWS * self.ways);
            let (set, way) = (sets[r / self.ways], r % self.ways);
            let (_, frame) = self.tags[set][way].expect("conflicting slot is full");
            victim = Some(self.evict_frame(frame));
            (set, way)
        } else {
            let skew = usize::from(empties[1] > empties[0]);
            let way = self.tags[sets[skew]]
                .iter()
                .position(Option::is_none)
                .expect("skew with empties has an empty slot");
            (sets[skew], way)
        };

        // 2. Frame: quota eviction, else global random when full.
        if victim.is_none() {
            let over_quota = self
                .quota
                .is_some_and(|q| self.tenant_occupancy(tenant) >= q as u64);
            if over_quota {
                let count = self.tenant_occupancy(tenant);
                let r = self.rng.gen_range(0..count);
                let frame = self
                    .frames
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.as_ref().is_some_and(|f| f.owner == tenant))
                    .map(|(i, _)| i)
                    .nth(r as usize)
                    .expect("tenant occupancy miscounted");
                victim = Some(self.evict_frame(frame));
            } else if self.free.is_empty() {
                let f = self.rng.gen_range(0..self.frames.len());
                victim = Some(self.evict_frame(f));
            }
        }

        let frame = self.free.pop().expect("free list empty after eviction");
        let slot = set * self.ways + way;
        self.frames[frame] = Some(SpecFrame {
            line: new_line,
            owner: tenant,
            slot,
        });
        self.tags[set][way] = Some((new_line.key, frame));
        if let Some(v) = &victim {
            self.stats.record_eviction(v.kind, v.dirty);
        }
        victim
    }
}

/// The pluggable naive cache core (restating `maps_sim`'s backend enum).
/// The variants' sizes differ, but exactly one backend exists per run,
/// so boxing would only add indirection to the spec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SpecBackend {
    Set(SpecCache),
    Rand(SpecRandomizedCache),
}

/// The naive metadata cache: [`SpecCache`] or [`SpecRandomizedCache`]
/// plus contents admission, partial writes, the (shared) set-dueling
/// controller, and the per-tenant way split, restating
/// `maps_sim::MetadataCache` (minus per-tenant stats attribution, which
/// the conservation property tests validate instead).
#[derive(Debug)]
pub struct SpecMetadataCache {
    backend: SpecBackend,
    contents: CacheContents,
    partial_writes: bool,
    dueling: Option<DuelingController>,
    tenant_split: Option<TenantPartition>,
    ways: usize,
}

impl SpecMetadataCache {
    /// Builds the cache, or `None` when the configuration disables it.
    pub fn new(cfg: &MdcConfig) -> Option<Self> {
        if cfg.size_bytes == 0 {
            return None;
        }
        let mut dueling = None;
        let mut tenant_split = None;
        let backend = match cfg.design {
            MdcDesign::SetAssoc => {
                // Definitional geometry: capacity / (ways * 64 B lines) sets.
                let sets = (cfg.size_bytes / (cfg.ways as u64 * 64)) as usize;
                assert!(sets > 0, "metadata cache smaller than one set");
                let mut cache = SpecCache::new(sets, cfg.ways, cfg.policy.build());
                match cfg.partition {
                    PartitionMode::None => {}
                    PartitionMode::Static(p) => cache.set_partition(Some(p)),
                    PartitionMode::Dynamic {
                        a,
                        b,
                        leaders_per_side,
                    } => {
                        dueling = Some(DuelingController::new(
                            sets,
                            cfg.ways,
                            leaders_per_side,
                            a,
                            b,
                        ));
                    }
                    PartitionMode::PerTenant { tenants } => {
                        tenant_split = Some(
                            TenantPartition::new(tenants, cfg.ways)
                                .expect("per-tenant split must give every tenant a way"),
                        );
                    }
                }
                SpecBackend::Set(cache)
            }
            MdcDesign::Randomized { seed } => {
                let mut cache = SpecRandomizedCache::new(cfg.size_bytes, cfg.ways, seed);
                if let PartitionMode::PerTenant { tenants } = cfg.partition {
                    cache.set_tenant_quota(tenants);
                }
                SpecBackend::Rand(cache)
            }
        };
        Some(Self {
            backend,
            contents: cfg.contents,
            partial_writes: cfg.partial_writes,
            dueling,
            tenant_split,
            ways: cfg.ways,
        })
    }

    /// Which metadata types this cache admits.
    pub fn contents(&self) -> CacheContents {
        self.contents
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        match &self.backend {
            SpecBackend::Set(c) => c.stats(),
            SpecBackend::Rand(c) => c.stats(),
        }
    }

    /// Resets statistics after warm-up.
    pub fn reset_stats(&mut self) {
        match &mut self.backend {
            SpecBackend::Set(c) => c.reset_stats(),
            SpecBackend::Rand(c) => c.reset_stats(),
        }
    }

    fn probe_backend(&mut self, key: u64, kind: BlockKind) -> bool {
        match &mut self.backend {
            SpecBackend::Set(c) => c.probe(key, kind),
            SpecBackend::Rand(c) => c.probe(key, kind),
        }
    }

    /// Accesses a metadata block as `tenant`; non-admitted kinds probe
    /// only.
    pub fn access(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        tenant: TenantId,
    ) -> SpecMdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.probe_backend(key, kind);
            return SpecMdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        let r = match &mut self.backend {
            SpecBackend::Set(cache) => {
                if let Some(split) = &self.tenant_split {
                    cache.access_in_ways(key, kind, write, split.ways_for(tenant.0, self.ways))
                } else if self.dueling.is_some() {
                    let set = cache.set_of(key);
                    let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
                    let r = cache.access_with(key, kind, write, partition.as_ref());
                    if !r.hit {
                        if let Some(d) = &mut self.dueling {
                            d.record_miss(set);
                        }
                    }
                    r
                } else {
                    cache.access_with(key, kind, write, None)
                }
            }
            SpecBackend::Rand(cache) => cache.access(key, kind, write, tenant.0),
        };
        SpecMdOutcome {
            hit: r.hit,
            evicted: r.evicted,
            bypassed: false,
        }
    }

    /// Write of a single 8 B sub-entry as `tenant`.
    pub fn write_partial(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        tenant: TenantId,
    ) -> SpecMdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.probe_backend(key, kind);
            return SpecMdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        let resident = match &mut self.backend {
            SpecBackend::Set(c) => c.access_mark_valid(key, kind, slot).is_some(),
            SpecBackend::Rand(c) => c.access_mark_valid(key, kind, slot).is_some(),
        };
        if resident {
            return SpecMdOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }
        if !self.partial_writes {
            return self.access(key, kind, true, tenant);
        }
        let evicted = match &mut self.backend {
            SpecBackend::Set(cache) => {
                let set = cache.set_of(key);
                let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
                cache.probe(key, kind);
                if let Some(d) = &mut self.dueling {
                    d.record_miss(set);
                }
                if let Some(split) = &self.tenant_split {
                    cache.insert_placeholder_in_ways(
                        key,
                        kind,
                        slot,
                        split.ways_for(tenant.0, self.ways),
                    )
                } else {
                    cache.insert_placeholder(key, kind, slot, partition.as_ref())
                }
            }
            SpecBackend::Rand(cache) => {
                cache.probe(key, kind);
                cache.insert_placeholder(key, kind, slot, tenant.0)
            }
        };
        SpecMdOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Valid mask of a resident line, if any.
    pub fn valid_mask(&self, key: u64) -> Option<u8> {
        match &self.backend {
            SpecBackend::Set(c) => c.line(key).map(|l| l.valid_mask),
            SpecBackend::Rand(c) => c.line(key).map(|l| l.valid_mask),
        }
    }

    /// Marks a resident line fully valid.
    pub fn complete_line(&mut self, key: u64) {
        for slot in 0..8 {
            let marked = match &mut self.backend {
                SpecBackend::Set(c) => c.mark_valid(key, slot),
                SpecBackend::Rand(c) => c.mark_valid(key, slot),
            };
            if marked.is_none() {
                break;
            }
        }
    }

    /// Drains all resident lines.
    pub fn drain(&mut self) -> Vec<Line> {
        match &mut self.backend {
            SpecBackend::Set(c) => c.drain(),
            SpecBackend::Rand(c) => c.drain(),
        }
    }

    /// Iterates over resident lines in frame order.
    pub fn resident_lines(&self) -> Box<dyn Iterator<Item = &Line> + '_> {
        match &self.backend {
            SpecBackend::Set(c) => Box::new(c.resident_lines()),
            SpecBackend::Rand(c) => Box::new(c.resident_lines()),
        }
    }

    /// The inner cache's access counter.
    pub fn time(&self) -> u64 {
        match &self.backend {
            SpecBackend::Set(c) => c.time(),
            SpecBackend::Rand(c) => c.time(),
        }
    }
}
