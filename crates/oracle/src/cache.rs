//! Naive restatements of the production cache containers.
//!
//! [`SpecCache`] keeps one `Vec<Option<Line>>` per set and finds lines by
//! scanning it — no packed tag array, no fused lookup-and-mark entry
//! points, no precomputed way-id slices, no set masks. The *replacement
//! policies themselves* are shared with production ([`AnyPolicy`]): they
//! are part of the specification (reimplementing eleven heuristics
//! bit-exactly would only manufacture false differential alarms), while
//! everything around them — residency tracking, fill/eviction plumbing,
//! statistics, the policy time base — is restated independently.

use maps_cache::policy::AnyPolicy;
use maps_cache::{CacheStats, DuelingController, Line, Partition, Policy};
use maps_sim::{CacheContents, MdcConfig, PartitionMode};
use maps_trace::BlockKind;

/// Outcome of one access (mirrors `maps_cache::AccessResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecAccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
}

/// Outcome of a metadata-cache access (mirrors `maps_sim::mdcache::MdOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecMdOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
    /// `true` when the kind is not admitted (statistics-only probe).
    pub bypassed: bool,
}

/// The deliberately slow set-associative cache.
#[derive(Debug)]
pub struct SpecCache {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    policy: AnyPolicy,
    partition: Option<Partition>,
    stats: CacheStats,
    time: u64,
}

impl SpecCache {
    /// Creates a cache with `sets * ways` frames.
    pub fn new(sets: usize, ways: usize, mut policy: AnyPolicy) -> Self {
        policy.init(sets, ways);
        Self {
            sets: vec![vec![None; ways]; sets],
            ways,
            policy,
            partition: None,
            stats: CacheStats::default(),
            time: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Installs a static way partition.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        if let Some(p) = &partition {
            p.validate(self.ways);
        }
        self.partition = partition;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Accesses performed so far (the policy time base).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The set index of a key: plain remainder, the definitional form of
    /// the production mask-based `CacheConfig::set_of`.
    pub fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    fn find_way(&self, set: usize, key: u64) -> Option<usize> {
        self.sets[set]
            .iter()
            .position(|l| l.as_ref().is_some_and(|l| l.key == key))
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.find_way(set, key).is_some()
    }

    /// The resident line for `key`, if any.
    pub fn line(&self, key: u64) -> Option<&Line> {
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        self.sets[set][way].as_ref()
    }

    /// Accesses `key`, allocating on miss.
    pub fn access_with(
        &mut self,
        key: u64,
        kind: BlockKind,
        write: bool,
        partition_override: Option<&Partition>,
    ) -> SpecAccessResult {
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        let set = self.set_of(key);

        if let Some(way) = self.find_way(set, key) {
            {
                let line = self.sets[set][way].as_mut().expect("resident line");
                line.last_at = t;
                if write {
                    line.dirty = true;
                }
            }
            self.policy.on_hit(set, way, t, kind);
            self.stats.record_access(kind, true);
            return SpecAccessResult {
                hit: true,
                evicted: None,
            };
        }

        self.stats.record_access(kind, false);
        let mut new_line = Line::filled(key, kind, t);
        new_line.dirty = write;
        let evicted = self.fill(set, new_line, partition_override);
        SpecAccessResult {
            hit: false,
            evicted,
        }
    }

    /// Probes without allocating or advancing time.
    pub fn probe(&mut self, key: u64, kind: BlockKind) -> bool {
        let set = self.set_of(key);
        let hit = self.find_way(set, key).is_some();
        self.stats.record_access(kind, hit);
        hit
    }

    /// Hit path of a partial write (the production fused
    /// `access_mark_valid`): a write hit followed by marking `slot` valid,
    /// with the policy observing the line *before* the new bit lands.
    /// `None` (and no state change) when `key` is not resident.
    pub fn access_mark_valid(&mut self, key: u64, kind: BlockKind, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        let t = self.time;
        self.time += 1;
        self.policy.begin_access(t, key);
        {
            let line = self.sets[set][way].as_mut().expect("resident line");
            line.last_at = t;
            line.dirty = true;
        }
        self.policy.on_hit(set, way, t, kind);
        self.stats.record_access(kind, true);
        let line = self.sets[set][way].as_mut().expect("resident line");
        line.valid_mask |= 1 << slot;
        Some(line.valid_mask)
    }

    /// Marks a sub-entry valid on a resident line (no time advance).
    pub fn mark_valid(&mut self, key: u64, slot: u8) -> Option<u8> {
        assert!(slot < 8, "sub-block slot {slot} out of range");
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        let line = self.sets[set][way].as_mut()?;
        line.valid_mask |= 1 << slot;
        line.dirty = true;
        Some(line.valid_mask)
    }

    /// Inserts a partial-write placeholder (miss path; key must not be
    /// resident). Does not advance time.
    pub fn insert_placeholder(
        &mut self,
        key: u64,
        kind: BlockKind,
        slot: u8,
        partition_override: Option<&Partition>,
    ) -> Option<Line> {
        let set = self.set_of(key);
        assert!(
            self.find_way(set, key).is_none(),
            "placeholder insert for resident key {key}"
        );
        let t = self.time;
        self.fill(
            set,
            Line::placeholder(key, kind, t, slot),
            partition_override,
        )
    }

    /// Drains every resident line in frame order (set-major).
    pub fn drain(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for frame in set.iter_mut() {
                if let Some(line) = frame.take() {
                    out.push(line);
                }
            }
        }
        out
    }

    /// Iterates over resident lines in frame order.
    pub fn resident_lines(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flatten().filter_map(Option::as_ref)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.resident_lines().count()
    }

    fn allowed_ways(
        &self,
        kind: BlockKind,
        partition_override: Option<&Partition>,
    ) -> (usize, usize) {
        match partition_override.or(self.partition.as_ref()) {
            Some(p) => p.ways_for(kind, self.ways),
            None => (0, self.ways),
        }
    }

    fn fill(
        &mut self,
        set: usize,
        new_line: Line,
        partition_override: Option<&Partition>,
    ) -> Option<Line> {
        let (lo, hi) = self.allowed_ways(new_line.kind, partition_override);

        if let Some(way) = (lo..hi).find(|&w| self.sets[set][w].is_none()) {
            self.sets[set][way] = Some(new_line);
            self.policy.on_fill(set, way, &new_line);
            return None;
        }

        let candidates: Vec<usize> = (lo..hi).collect();
        let way = self.policy.choose_victim(
            set,
            &candidates,
            &maps_cache::SetView::from_slice(&self.sets[set]),
            self.time,
        );
        assert!((lo..hi).contains(&way), "policy chose non-candidate way");
        let victim = self.sets[set][way].take().expect("victim line");
        self.policy.on_evict(set, way, &victim, self.time);
        self.stats.record_eviction(victim.kind, victim.dirty);
        self.sets[set][way] = Some(new_line);
        self.policy.on_fill(set, way, &new_line);
        Some(victim)
    }
}

/// The naive metadata cache: [`SpecCache`] plus contents admission,
/// partial writes, and the (shared) set-dueling controller, restating
/// `maps_sim::MetadataCache`.
#[derive(Debug)]
pub struct SpecMetadataCache {
    cache: SpecCache,
    contents: CacheContents,
    partial_writes: bool,
    dueling: Option<DuelingController>,
}

impl SpecMetadataCache {
    /// Builds the cache, or `None` when the configuration disables it.
    pub fn new(cfg: &MdcConfig) -> Option<Self> {
        if cfg.size_bytes == 0 {
            return None;
        }
        // Definitional geometry: capacity / (ways * 64 B lines) sets.
        let sets = (cfg.size_bytes / (cfg.ways as u64 * 64)) as usize;
        assert!(sets > 0, "metadata cache smaller than one set");
        let mut cache = SpecCache::new(sets, cfg.ways, cfg.policy.build());
        let mut dueling = None;
        match cfg.partition {
            PartitionMode::None => {}
            PartitionMode::Static(p) => cache.set_partition(Some(p)),
            PartitionMode::Dynamic {
                a,
                b,
                leaders_per_side,
            } => {
                dueling = Some(DuelingController::new(
                    sets,
                    cfg.ways,
                    leaders_per_side,
                    a,
                    b,
                ));
            }
        }
        Some(Self {
            cache,
            contents: cfg.contents,
            partial_writes: cfg.partial_writes,
            dueling,
        })
    }

    /// Which metadata types this cache admits.
    pub fn contents(&self) -> CacheContents {
        self.contents
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Resets statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Accesses a metadata block; non-admitted kinds probe only.
    pub fn access(&mut self, key: u64, kind: BlockKind, write: bool) -> SpecMdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.cache.probe(key, kind);
            return SpecMdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        let r = if self.dueling.is_some() {
            let set = self.cache.set_of(key);
            let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
            let r = self.cache.access_with(key, kind, write, partition.as_ref());
            if !r.hit {
                if let Some(d) = &mut self.dueling {
                    d.record_miss(set);
                }
            }
            r
        } else {
            self.cache.access_with(key, kind, write, None)
        };
        SpecMdOutcome {
            hit: r.hit,
            evicted: r.evicted,
            bypassed: false,
        }
    }

    /// Write of a single 8 B sub-entry.
    pub fn write_partial(&mut self, key: u64, kind: BlockKind, slot: u8) -> SpecMdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.cache.probe(key, kind);
            return SpecMdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        if self.cache.access_mark_valid(key, kind, slot).is_some() {
            return SpecMdOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }
        if !self.partial_writes {
            return self.access(key, kind, true);
        }
        let set = self.cache.set_of(key);
        let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
        self.cache.probe(key, kind);
        if let Some(d) = &mut self.dueling {
            d.record_miss(set);
        }
        let evicted = self
            .cache
            .insert_placeholder(key, kind, slot, partition.as_ref());
        SpecMdOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Valid mask of a resident line, if any.
    pub fn valid_mask(&self, key: u64) -> Option<u8> {
        self.cache.line(key).map(|l| l.valid_mask)
    }

    /// Marks a resident line fully valid.
    pub fn complete_line(&mut self, key: u64) {
        for slot in 0..8 {
            if self.cache.mark_valid(key, slot).is_none() {
                break;
            }
        }
    }

    /// Drains all resident lines.
    pub fn drain(&mut self) -> Vec<Line> {
        self.cache.drain()
    }

    /// Iterates over resident lines in frame order.
    pub fn resident_lines(&self) -> impl Iterator<Item = &Line> {
        self.cache.resident_lines()
    }

    /// The inner cache's access counter.
    pub fn time(&self) -> u64 {
        self.cache.time()
    }
}
