//! A value-level Bonsai Merkle Tree model.
//!
//! The production engine tracks *which* tree blocks are touched, never
//! what they contain. This model assigns every counter block and tree node
//! an actual digest computed from the encryption-counter values it covers,
//! so invariants about tree *content* become checkable — most importantly
//! that incrementally maintaining digests across writes and overflow-driven
//! page re-encryptions always agrees with recomputing the whole tree from
//! the counter store ([`OracleBmt::root`] vs [`OracleBmt::recompute_root`]).
//!
//! Digests are not cryptographic: a SplitMix64-style mix stands in for the
//! HMAC. The model only needs collision-resistance against the simulator's
//! own bookkeeping bugs, not an adversary.

use maps_secure::spec;
use maps_secure::SecureConfig;
use maps_trace::BlockAddr;

use crate::engine::OracleCounters;

/// Full-avalanche 64-bit mix (SplitMix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-sensitive combine of a child digest into an accumulator.
fn fold(acc: u64, child: u64) -> u64 {
    mix(acc.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ child)
}

/// The tree of digests: one per counter block, one per in-memory tree
/// node, plus the on-chip root.
#[derive(Debug, Clone)]
pub struct OracleBmt {
    cfg: SecureConfig,
    /// Digest of each counter block, indexed by offset in the counter
    /// region.
    counter_digests: Vec<u64>,
    /// Digest of each tree node, `levels[level][offset]`, leaves first.
    levels: Vec<Vec<u64>>,
    root: u64,
}

impl OracleBmt {
    /// Builds the tree over an (empty) counter store.
    pub fn new(cfg: SecureConfig, counters: &OracleCounters) -> Self {
        let n_counters = spec::counter_blocks(&cfg);
        let shape = spec::tree_levels(&cfg);
        let mut bmt = Self {
            counter_digests: vec![0; n_counters as usize],
            levels: shape.iter().map(|&(_, n)| vec![0; n as usize]).collect(),
            root: 0,
            cfg,
        };
        bmt.rebuild(counters);
        bmt
    }

    /// The current root digest.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Digest of a counter block's contents: page counters and per-block
    /// counters of every data block it covers, position-mixed.
    fn counter_block_digest(&self, counters: &OracleCounters, offset: u64) -> u64 {
        let per_ctr = self.cfg.mode.data_blocks_per_counter_block();
        let first = offset * per_ctr;
        let last = (first + per_ctr).min(spec::data_blocks(&self.cfg));
        let mut acc = mix(offset);
        for d in first..last {
            let data = BlockAddr::new(d);
            acc = fold(acc, mix(d) ^ counters.block_counter(data));
            acc = fold(acc, counters.page_counter(data.page().index()));
        }
        acc
    }

    /// Digest of a tree node from its (already computed) children.
    fn node_digest(&self, level: usize, offset: u64) -> u64 {
        let arity = self.cfg.tree_arity;
        let first = offset * arity;
        let children: &[u64] = if level == 0 {
            &self.counter_digests
        } else {
            &self.levels[level - 1]
        };
        let last = (first + arity).min(children.len() as u64);
        let mut acc = mix(offset ^ (level as u64) << 56);
        for c in first..last {
            acc = fold(acc, children[c as usize]);
        }
        acc
    }

    /// Root digest from the topmost stored level (or straight from the
    /// counter digests when the tree has no in-memory levels).
    fn fold_root(&self) -> u64 {
        let top: &[u64] = match self.levels.last() {
            Some(level) => level,
            None => &self.counter_digests,
        };
        let mut acc = mix(0xB0ED);
        for &d in top {
            acc = fold(acc, d);
        }
        acc
    }

    /// Recomputes every digest from the counter store.
    pub fn rebuild(&mut self, counters: &OracleCounters) {
        for off in 0..self.counter_digests.len() as u64 {
            self.counter_digests[off as usize] = self.counter_block_digest(counters, off);
        }
        for level in 0..self.levels.len() {
            for off in 0..self.levels[level].len() as u64 {
                self.levels[level][off as usize] = self.node_digest(level, off);
            }
        }
        self.root = self.fold_root();
    }

    /// Incrementally refreshes the digest chain of one counter block:
    /// leaf-to-root path recomputation, exactly what a hardware walk does.
    pub fn update_counter_block(&mut self, counters: &OracleCounters, counter: BlockAddr) {
        let base = spec::counter_base(&self.cfg);
        let offset = counter.index() - base;
        self.counter_digests[offset as usize] = self.counter_block_digest(counters, offset);
        let mut child_offset = offset;
        for level in 0..self.levels.len() {
            let node_offset = child_offset / self.cfg.tree_arity;
            self.levels[level][node_offset as usize] = self.node_digest(level, node_offset);
            child_offset = node_offset;
        }
        self.root = self.fold_root();
    }

    /// Refreshes every counter block covering one 4 KB data page (page
    /// re-encryption touches all of the page's counters at once).
    pub fn update_page(&mut self, counters: &OracleCounters, page: u64) {
        let first_data = page * maps_trace::BLOCKS_PER_PAGE;
        let last_data =
            (first_data + maps_trace::BLOCKS_PER_PAGE).min(spec::data_blocks(&self.cfg));
        let mut prev = None;
        for d in first_data..last_data {
            let cb = spec::counter_block_of(&self.cfg, BlockAddr::new(d));
            if prev != Some(cb) {
                self.update_counter_block(counters, cb);
                prev = Some(cb);
            }
        }
    }

    /// The root recomputed from scratch, without touching stored state.
    /// Disagreement with [`OracleBmt::root`] means incremental maintenance
    /// lost an update.
    pub fn recompute_root(&self, counters: &OracleCounters) -> u64 {
        let mut fresh = self.clone();
        fresh.rebuild(counters);
        fresh.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_secure::CounterMode;

    fn setup(mode: CounterMode) -> (SecureConfig, OracleCounters, OracleBmt) {
        let cfg = SecureConfig::new(16 * 4096, mode);
        let counters = OracleCounters::new(mode);
        let bmt = OracleBmt::new(cfg, &counters);
        (cfg, counters, bmt)
    }

    #[test]
    fn incremental_matches_rebuild_over_writes() {
        for mode in [CounterMode::SplitPi, CounterMode::SgxMonolithic] {
            let (cfg, mut counters, mut bmt) = setup(mode);
            for i in 0..500u64 {
                let data = BlockAddr::new((i * 37) % spec::data_blocks(&cfg));
                counters.record_write(data);
                bmt.update_counter_block(&counters, spec::counter_block_of(&cfg, data));
                assert_eq!(bmt.root(), bmt.recompute_root(&counters), "write {i}");
            }
        }
    }

    #[test]
    fn overflow_page_update_keeps_root_consistent() {
        let (cfg, mut counters, mut bmt) = setup(CounterMode::SplitPi);
        let hot = BlockAddr::new(0);
        let sibling = BlockAddr::new(5);
        counters.record_write(sibling);
        bmt.update_counter_block(&counters, spec::counter_block_of(&cfg, sibling));
        for _ in 0..128 {
            let outcome = counters.record_write(hot);
            match outcome {
                maps_secure::WriteOutcome::PageOverflow { page } => {
                    bmt.update_page(&counters, page)
                }
                maps_secure::WriteOutcome::Incremented => {
                    bmt.update_counter_block(&counters, spec::counter_block_of(&cfg, hot))
                }
            }
        }
        assert_eq!(bmt.root(), bmt.recompute_root(&counters));
    }

    #[test]
    fn root_changes_on_writes() {
        let (cfg, mut counters, mut bmt) = setup(CounterMode::SplitPi);
        let before = bmt.root();
        counters.record_write(BlockAddr::new(9));
        bmt.update_counter_block(&counters, spec::counter_block_of(&cfg, BlockAddr::new(9)));
        assert_ne!(before, bmt.root());
    }

    #[test]
    fn stale_incremental_state_is_detected() {
        let (_cfg, mut counters, bmt) = setup(CounterMode::SplitPi);
        // A write the tree never hears about must surface as a root
        // mismatch — this is the failure the invariant exists to catch.
        counters.record_write(BlockAddr::new(3));
        assert_ne!(bmt.root(), bmt.recompute_root(&counters));
    }
}
