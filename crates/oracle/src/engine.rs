//! The oracle metadata engine: a naive restatement of
//! `maps_sim::MetadataEngine`.
//!
//! Every address computation goes through [`maps_secure::spec`] (plain
//! division/remainder, no precomputation), tree walks collect into fresh
//! `Vec`s, the eviction cascade allocates its work queue per event, and
//! the counter store is an independent hash-map implementation (on the
//! workspace's deterministic hasher). The observable contract — observer callback order,
//! statistics, DRAM traffic — restates the production engine's documented
//! behaviour step for step; the differential harness asserts the two stay
//! identical on every access.

use maps_secure::spec;
use maps_secure::{CounterMode, SecureConfig, WriteOutcome};
use maps_sim::{EngineStats, MdcConfig, MetaObserver};
use maps_trace::det::DetHashMap;
use maps_trace::{AccessKind, BlockAddr, BlockKind, MetaAccess, TenantId, BLOCKS_PER_PAGE};

use crate::bmt::OracleBmt;
use crate::cache::SpecMetadataCache;

/// Independent restatement of `maps_secure::CounterStore`: flat
/// deterministic maps and per-page `Vec`s, agreeing only on the documented
/// write-outcome semantics (7-bit split counters overflowing at 128 writes,
/// monolithic 64-bit SGX counters never overflowing).
#[derive(Debug, Clone)]
pub struct OracleCounters {
    mode: CounterMode,
    /// Split-counter state: page index -> (page counter, 64 block counters).
    pages: DetHashMap<u64, (u64, Vec<u8>)>,
    /// SGX monolithic counters: data block index -> counter.
    blocks: DetHashMap<u64, u64>,
    writes: u64,
    overflows: u64,
}

impl OracleCounters {
    /// Creates an empty store.
    pub fn new(mode: CounterMode) -> Self {
        Self {
            mode,
            pages: DetHashMap::default(),
            blocks: DetHashMap::default(),
            writes: 0,
            overflows: 0,
        }
    }

    /// Records a write to a data block, incrementing its counter.
    pub fn record_write(&mut self, data: BlockAddr) -> WriteOutcome {
        self.writes += 1;
        match self.mode {
            CounterMode::SplitPi => {
                let page = data.page().index();
                let slot = data.slot_in_page() as usize;
                let entry = self
                    .pages
                    .entry(page)
                    .or_insert_with(|| (0, vec![0; BLOCKS_PER_PAGE as usize]));
                // A 7-bit counter overflows when it would reach 128; the
                // overflow bumps the page counter and resets every block
                // counter in the page (the written block included).
                if entry.1[slot] >= 127 {
                    entry.0 += 1;
                    entry.1.iter_mut().for_each(|c| *c = 0);
                    self.overflows += 1;
                    WriteOutcome::PageOverflow { page }
                } else {
                    entry.1[slot] += 1;
                    WriteOutcome::Incremented
                }
            }
            CounterMode::SgxMonolithic => {
                *self.blocks.entry(data.index()).or_insert(0) += 1;
                WriteOutcome::Incremented
            }
        }
    }

    /// Per-block counter value (page counter excluded in split mode).
    pub fn block_counter(&self, data: BlockAddr) -> u64 {
        match self.mode {
            CounterMode::SplitPi => self
                .pages
                .get(&data.page().index())
                .map_or(0, |(_, blocks)| {
                    u64::from(blocks[data.slot_in_page() as usize])
                }),
            CounterMode::SgxMonolithic => self.blocks.get(&data.index()).copied().unwrap_or(0),
        }
    }

    /// Per-page counter value (always 0 in SGX mode).
    pub fn page_counter(&self, page: u64) -> u64 {
        match self.mode {
            CounterMode::SplitPi => self.pages.get(&page).map_or(0, |(pc, _)| *pc),
            CounterMode::SgxMonolithic => 0,
        }
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total page overflows.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

/// Cascade depth bound; beyond it updates are written through (must equal
/// the production engine's budget for lockstep equality).
const CASCADE_BUDGET: usize = 64;

/// The oracle engine.
#[derive(Debug)]
pub struct OracleEngine {
    secure: SecureConfig,
    counters: OracleCounters,
    bmt: OracleBmt,
    mdc: Option<SpecMetadataCache>,
    partial_writes: bool,
    dram_latency: u64,
    hash_latency: u64,
    speculation: bool,
    speculation_window: u64,
    stats: EngineStats,
}

impl OracleEngine {
    /// Creates an engine over the given protected-memory configuration
    /// (mirrors `MetadataEngine::with_speculation_window`).
    pub fn new(
        secure: SecureConfig,
        mdc_cfg: &MdcConfig,
        dram_latency: u64,
        hash_latency: u64,
        speculation: bool,
        speculation_window: u64,
    ) -> Self {
        let counters = OracleCounters::new(secure.mode);
        let bmt = OracleBmt::new(secure, &counters);
        Self {
            counters,
            bmt,
            mdc: SpecMetadataCache::new(mdc_cfg),
            partial_writes: mdc_cfg.partial_writes,
            dram_latency,
            hash_latency,
            speculation,
            speculation_window,
            stats: EngineStats::default(),
            secure,
        }
    }

    /// The secure-memory configuration.
    pub fn secure_config(&self) -> &SecureConfig {
        &self.secure
    }

    /// The metadata cache, if enabled.
    pub fn mdc(&self) -> Option<&SpecMetadataCache> {
        self.mdc.as_ref()
    }

    /// The counter store.
    pub fn counters(&self) -> &OracleCounters {
        &self.counters
    }

    /// The value-level tree model.
    pub fn bmt(&self) -> &OracleBmt {
        &self.bmt
    }

    /// Statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Resets statistics (cache, counter, and tree state persist).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
        if let Some(mdc) = &mut self.mdc {
            mdc.reset_stats();
        }
    }

    /// Handles an LLC demand miss, returning the core-visible stall
    /// (attributed to [`TenantId::HOST`]).
    pub fn handle_read<O: MetaObserver + ?Sized>(&mut self, data: BlockAddr, obs: &mut O) -> u64 {
        self.handle_read_from(data, TenantId::HOST, obs)
    }

    /// [`handle_read`](Self::handle_read) on behalf of `tenant`.
    pub fn handle_read_from<O: MetaObserver + ?Sized>(
        &mut self,
        data: BlockAddr,
        tenant: TenantId,
        obs: &mut O,
    ) -> u64 {
        self.stats.reads += 1;
        self.stats.dram_data.reads += 1;

        let hash_hit = self.meta_read(
            spec::hash_block_of(&self.secure, data),
            BlockKind::Hash,
            tenant,
            obs,
        );
        let counter = spec::counter_block_of(&self.secure, data);
        let ctr_hit = self.meta_read(counter, BlockKind::Counter, tenant, obs);
        let walk_misses = if ctr_hit {
            0
        } else {
            self.verify_counter(counter, tenant, obs)
        };

        // Timing model restated from the production engine: decrypt is
        // gated by data and counter, verify by data, the walk, and the
        // hash; speculation hides verify up to the window.
        let t_data = self.dram_latency;
        let t_ctr = if ctr_hit { 0 } else { self.dram_latency };
        let t_decrypt = t_data.max(t_ctr + self.hash_latency);
        let t_hash = if hash_hit { 0 } else { self.dram_latency };
        let t_verify = t_data
            .max(t_ctr + walk_misses * self.dram_latency)
            .max(t_hash)
            + self.hash_latency;
        let stall = if self.speculation {
            t_decrypt.max(t_verify.saturating_sub(self.speculation_window))
        } else {
            t_decrypt.max(t_verify)
        };
        self.stats.stall_cycles += stall;
        stall
    }

    /// Handles an LLC dirty writeback (attributed to [`TenantId::HOST`]).
    pub fn handle_write<O: MetaObserver + ?Sized>(&mut self, data: BlockAddr, obs: &mut O) {
        self.handle_write_from(data, TenantId::HOST, obs);
    }

    /// [`handle_write`](Self::handle_write) on behalf of `tenant`.
    pub fn handle_write_from<O: MetaObserver + ?Sized>(
        &mut self,
        data: BlockAddr,
        tenant: TenantId,
        obs: &mut O,
    ) {
        self.stats.writes += 1;
        self.stats.dram_data.writes += 1;

        match self.counters.record_write(data) {
            WriteOutcome::PageOverflow { page } => {
                self.bmt.update_page(&self.counters, page);
                self.stats.page_overflows += 1;
                self.reencrypt_page(page, tenant, obs);
            }
            WriteOutcome::Incremented => {
                self.bmt.update_counter_block(
                    &self.counters,
                    spec::counter_block_of(&self.secure, data),
                );
            }
        }
        let counter = spec::counter_block_of(&self.secure, data);
        self.counter_write(counter, tenant, obs);

        let hash_block = spec::hash_block_of(&self.secure, data);
        let slot = spec::hash_slot_of(&self.secure, data);
        self.meta_write_slot(hash_block, BlockKind::Hash, slot, tenant, obs);
    }

    /// Flushes the metadata cache, accounting final writebacks.
    pub fn flush<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        let Some(mdc) = &mut self.mdc else { return };
        for line in mdc.drain() {
            if !line.dirty {
                continue;
            }
            if !line.is_complete() {
                self.stats.dram_meta.reads += 1;
                self.stats.partial_fill_reads += 1;
            }
            self.stats.dram_meta.writes += 1;
            let block = BlockAddr::new(line.key);
            match line.kind {
                BlockKind::Counter => {
                    self.write_through_tree_update(spec::tree_leaf_of(&self.secure, block), 0, obs);
                }
                BlockKind::Tree(level) => {
                    if let Some(parent) = spec::tree_parent(&self.secure, block) {
                        self.write_through_tree_update(parent, level + 1, obs);
                    }
                }
                _ => {}
            }
        }
    }

    fn meta_read<O: MetaObserver + ?Sized>(
        &mut self,
        block: BlockAddr,
        kind: BlockKind,
        tenant: TenantId,
        obs: &mut O,
    ) -> bool {
        obs.observe(&MetaAccess::new(block, kind, AccessKind::Read));
        match &mut self.mdc {
            Some(mdc) => {
                let out = mdc.access(block.index(), kind, false, tenant);
                self.stats.meta.record_access(kind, out.hit);
                if out.hit {
                    if self.partial_writes && mdc.valid_mask(block.index()) != Some(0xFF) {
                        self.stats.dram_meta.reads += 1;
                        self.stats.partial_fill_reads += 1;
                        mdc.complete_line(block.index());
                    }
                    true
                } else {
                    self.stats.dram_meta.reads += 1;
                    if let Some(victim) = out.evicted {
                        self.process_eviction(victim, tenant, obs);
                    }
                    false
                }
            }
            None => {
                self.stats.meta.record_access(kind, false);
                self.stats.dram_meta.reads += 1;
                false
            }
        }
    }

    fn verify_counter<O: MetaObserver + ?Sized>(
        &mut self,
        counter: BlockAddr,
        tenant: TenantId,
        obs: &mut O,
    ) -> u64 {
        self.stats.tree_walks += 1;
        let path = spec::tree_path_of_counter(&self.secure, counter);
        let mut misses = 0;
        for (level, node) in path.into_iter().enumerate() {
            let hit = self.meta_read(node, BlockKind::Tree(level as u8), tenant, obs);
            if hit {
                break;
            }
            misses += 1;
        }
        self.stats.tree_walk_level_misses += misses;
        misses
    }

    fn counter_write<O: MetaObserver + ?Sized>(
        &mut self,
        counter: BlockAddr,
        tenant: TenantId,
        obs: &mut O,
    ) {
        obs.observe(&MetaAccess::new(
            counter,
            BlockKind::Counter,
            AccessKind::Write,
        ));
        match &mut self.mdc {
            Some(mdc) if mdc.contents().counters => {
                let out = mdc.access(counter.index(), BlockKind::Counter, true, tenant);
                self.stats.meta.record_access(BlockKind::Counter, out.hit);
                if let Some(victim) = out.evicted {
                    self.process_eviction(victim, tenant, obs);
                }
                if !out.hit {
                    self.stats.dram_meta.reads += 1;
                    self.verify_counter(counter, tenant, obs);
                }
            }
            _ => {
                self.stats.meta.record_access(BlockKind::Counter, false);
                self.stats.dram_meta.reads += 1;
                self.stats.dram_meta.writes += 1;
                let path = spec::tree_path_of_counter(&self.secure, counter);
                let mut slot = spec::child_slot_of_counter(&self.secure, counter);
                for (level, node) in path.into_iter().enumerate() {
                    self.meta_write_slot(node, BlockKind::Tree(level as u8), slot, tenant, obs);
                    slot = spec::child_slot_of_tree(&self.secure, node);
                }
            }
        }
    }

    fn meta_write_slot<O: MetaObserver + ?Sized>(
        &mut self,
        block: BlockAddr,
        kind: BlockKind,
        slot: u8,
        tenant: TenantId,
        obs: &mut O,
    ) {
        obs.observe(&MetaAccess::new(block, kind, AccessKind::Write));
        match &mut self.mdc {
            Some(mdc) => {
                let out = mdc.write_partial(block.index(), kind, slot, tenant);
                if out.bypassed {
                    self.stats.meta.record_access(kind, false);
                    self.stats.dram_meta.reads += 1;
                    self.stats.dram_meta.writes += 1;
                    return;
                }
                self.stats.meta.record_access(kind, out.hit);
                if !out.hit && !self.partial_writes {
                    self.stats.dram_meta.reads += 1;
                }
                if let Some(victim) = out.evicted {
                    self.process_eviction(victim, tenant, obs);
                }
            }
            None => {
                self.stats.meta.record_access(kind, false);
                self.stats.dram_meta.reads += 1;
                self.stats.dram_meta.writes += 1;
            }
        }
    }

    fn meta_write_full<O: MetaObserver + ?Sized>(
        &mut self,
        block: BlockAddr,
        kind: BlockKind,
        tenant: TenantId,
        obs: &mut O,
    ) {
        obs.observe(&MetaAccess::new(block, kind, AccessKind::Write));
        match &mut self.mdc {
            Some(mdc) if mdc.contents().admits(kind) => {
                let out = mdc.access(block.index(), kind, true, tenant);
                self.stats.meta.record_access(kind, out.hit);
                if let Some(victim) = out.evicted {
                    self.process_eviction(victim, tenant, obs);
                }
            }
            _ => {
                self.stats.meta.record_access(kind, false);
                self.stats.dram_meta.writes += 1;
            }
        }
    }

    fn process_eviction<O: MetaObserver + ?Sized>(
        &mut self,
        first: maps_cache::Line,
        tenant: TenantId,
        obs: &mut O,
    ) {
        // LIFO work queue, freshly allocated (the production engine reuses
        // a buffer; the traversal order is the contract).
        let mut queue = vec![first];
        let mut depth = 0usize;
        while let Some(line) = queue.pop() {
            if !line.dirty {
                continue;
            }
            if !line.is_complete() {
                self.stats.dram_meta.reads += 1;
                self.stats.partial_fill_reads += 1;
            }
            self.stats.dram_meta.writes += 1;
            let block = BlockAddr::new(line.key);
            let update = match line.kind {
                BlockKind::Counter => Some((
                    spec::tree_leaf_of(&self.secure, block),
                    0u8,
                    spec::child_slot_of_counter(&self.secure, block),
                )),
                BlockKind::Tree(level) => spec::tree_parent(&self.secure, block)
                    .map(|p| (p, level + 1, spec::child_slot_of_tree(&self.secure, block))),
                _ => None,
            };
            let Some((node, level, slot)) = update else {
                continue;
            };
            depth += 1;
            if depth > CASCADE_BUDGET {
                self.write_through_tree_update(node, level, obs);
                continue;
            }
            obs.observe(&MetaAccess::new(
                node,
                BlockKind::Tree(level),
                AccessKind::Write,
            ));
            if let Some(mdc) = &mut self.mdc {
                let out = mdc.write_partial(node.index(), BlockKind::Tree(level), slot, tenant);
                if out.bypassed {
                    self.stats.meta.record_access(BlockKind::Tree(level), false);
                    self.stats.dram_meta.reads += 1;
                    self.stats.dram_meta.writes += 1;
                } else {
                    self.stats
                        .meta
                        .record_access(BlockKind::Tree(level), out.hit);
                    if !out.hit && !self.partial_writes {
                        self.stats.dram_meta.reads += 1;
                    }
                    if let Some(victim) = out.evicted {
                        queue.push(victim);
                    }
                }
            } else {
                self.stats.meta.record_access(BlockKind::Tree(level), false);
                self.stats.dram_meta.reads += 1;
                self.stats.dram_meta.writes += 1;
            }
        }
        self.stats.max_cascade_depth = self.stats.max_cascade_depth.max(depth as u64);
    }

    fn write_through_tree_update<O: MetaObserver + ?Sized>(
        &mut self,
        mut node: BlockAddr,
        mut level: u8,
        obs: &mut O,
    ) {
        loop {
            obs.observe(&MetaAccess::new(
                node,
                BlockKind::Tree(level),
                AccessKind::Write,
            ));
            self.stats.meta.record_access(BlockKind::Tree(level), false);
            self.stats.dram_meta.reads += 1;
            self.stats.dram_meta.writes += 1;
            match spec::tree_parent(&self.secure, node) {
                Some(parent) => {
                    node = parent;
                    level += 1;
                }
                None => break,
            }
        }
    }

    fn reencrypt_page<O: MetaObserver + ?Sized>(
        &mut self,
        page: u64,
        tenant: TenantId,
        obs: &mut O,
    ) {
        self.stats.dram_data.reads += BLOCKS_PER_PAGE;
        self.stats.dram_data.writes += BLOCKS_PER_PAGE;
        for hb in spec::hash_blocks_of_page(&self.secure, page) {
            self.meta_write_full(hb, BlockKind::Hash, tenant, obs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_sim::RecordingObserver;

    fn engine(mdc: &MdcConfig) -> OracleEngine {
        OracleEngine::new(
            SecureConfig::poison_ivy(16 << 20),
            mdc,
            200,
            40,
            true,
            u64::MAX,
        )
    }

    #[test]
    fn oracle_counters_match_production_store() {
        let mut spec_ctrs = OracleCounters::new(CounterMode::SplitPi);
        let mut prod = maps_secure::CounterStore::new(CounterMode::SplitPi);
        let mut state = 99u64;
        for _ in 0..2000 {
            // Cheap LCG over a few pages so overflows happen.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let block = BlockAddr::new((state >> 33) % 192);
            assert_eq!(spec_ctrs.record_write(block), prod.record_write(block));
            assert_eq!(spec_ctrs.block_counter(block), prod.block_counter(block));
        }
        assert_eq!(spec_ctrs.overflows(), prod.overflows());
        assert_eq!(spec_ctrs.writes(), prod.writes());
    }

    #[test]
    fn cold_read_walks_whole_tree() {
        let mut e = engine(&MdcConfig::paper_default());
        let mut rec = RecordingObserver::new();
        e.handle_read(BlockAddr::new(0), &mut rec);
        let kinds: Vec<BlockKind> = rec.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Hash,
                BlockKind::Counter,
                BlockKind::Tree(0),
                BlockKind::Tree(1),
                BlockKind::Tree(2)
            ]
        );
        assert_eq!(e.stats().tree_walks, 1);
        assert_eq!(e.stats().dram_meta.reads, 5);
    }

    #[test]
    fn overflow_triggers_page_reencryption_and_consistent_root() {
        let mut e = engine(&MdcConfig::paper_default());
        let mut obs = maps_sim::NullObserver;
        for _ in 0..128 {
            e.handle_write(BlockAddr::new(0), &mut obs);
        }
        assert_eq!(e.stats().page_overflows, 1);
        assert!(e.stats().dram_data.reads >= 64);
        assert_eq!(e.bmt().root(), e.bmt().recompute_root(e.counters()));
    }
}
