//! Naive data-cache hierarchy and the end-to-end oracle simulation.

use maps_cache::policy::AnyPolicy;
use maps_secure::SecureConfig;
use maps_sim::{HierarchyStats, MemEvent, MetaObserver, SimConfig};
use maps_trace::{AccessKind, BlockAddr, BlockKind, MemAccess, TenantId};
use maps_workloads::Workload;

use crate::cache::SpecCache;
use crate::engine::OracleEngine;

/// Set count for a level: capacity / (ways × 64 B blocks), the
/// definitional form of `CacheConfig::from_bytes`.
fn sets_of(bytes: u64, ways: usize) -> usize {
    let sets = (bytes / (ways as u64 * 64)) as usize;
    assert!(sets > 0, "cache smaller than one set");
    sets
}

/// L1 → L2 → LLC write-back hierarchy over [`SpecCache`]s, restating
/// `maps_sim::Hierarchy` (all levels true LRU, dirty evictions installed
/// into the next level, only LLC traffic reaches memory).
#[derive(Debug)]
pub struct SpecHierarchy {
    l1: SpecCache,
    l2: SpecCache,
    llc: SpecCache,
    stats: HierarchyStats,
}

impl SpecHierarchy {
    /// Builds the hierarchy from a simulation configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            l1: SpecCache::new(
                sets_of(cfg.l1_bytes, cfg.l1_ways),
                cfg.l1_ways,
                AnyPolicy::true_lru(),
            ),
            l2: SpecCache::new(
                sets_of(cfg.l2_bytes, cfg.l2_ways),
                cfg.l2_ways,
                AnyPolicy::true_lru(),
            ),
            llc: SpecCache::new(
                sets_of(cfg.llc_bytes, cfg.llc_ways),
                cfg.llc_ways,
                AnyPolicy::true_lru(),
            ),
            stats: HierarchyStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets statistics (cache contents persist).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Runs one core access as [`TenantId::HOST`], appending memory events
    /// to `events` (cleared first). Returns `true` on an LLC demand miss.
    pub fn access(&mut self, access: &MemAccess, events: &mut Vec<MemEvent>) -> bool {
        self.access_from(access, TenantId::HOST, events)
    }

    /// Runs one core access on behalf of `tenant`, restating
    /// `maps_sim::Hierarchy::access_from`: every emitted event — the demand
    /// read and any writebacks its fills displace — is charged to the
    /// requesting tenant (requester-pays attribution).
    pub fn access_from(
        &mut self,
        access: &MemAccess,
        tenant: TenantId,
        events: &mut Vec<MemEvent>,
    ) -> bool {
        events.clear();
        self.stats.accesses += 1;
        self.stats.instructions += u64::from(access.icount);
        let block = access.addr.block();
        let write = access.kind == AccessKind::Write;

        let r1 = self
            .l1
            .access_with(block.index(), BlockKind::Data, write, None);
        if let Some(victim) = r1.evicted {
            if victim.dirty {
                self.writeback_to_l2(BlockAddr::new(victim.key), tenant, events);
            }
        }
        if r1.hit {
            return false;
        }
        self.stats.l1_misses += 1;

        let r2 = self
            .l2
            .access_with(block.index(), BlockKind::Data, false, None);
        if let Some(victim) = r2.evicted {
            if victim.dirty {
                self.writeback_to_llc(BlockAddr::new(victim.key), tenant, events);
            }
        }
        if r2.hit {
            return false;
        }
        self.stats.l2_misses += 1;

        let r3 = self
            .llc
            .access_with(block.index(), BlockKind::Data, false, None);
        if let Some(victim) = r3.evicted {
            if victim.dirty {
                self.stats.llc_writebacks += 1;
                events.push(MemEvent::Write(BlockAddr::new(victim.key), tenant));
            }
        }
        if r3.hit {
            return false;
        }
        self.stats.llc_demand_misses += 1;
        events.push(MemEvent::Read(block, tenant));
        true
    }

    fn writeback_to_l2(&mut self, block: BlockAddr, tenant: TenantId, events: &mut Vec<MemEvent>) {
        let r = self
            .l2
            .access_with(block.index(), BlockKind::Data, true, None);
        if let Some(victim) = r.evicted {
            if victim.dirty {
                self.writeback_to_llc(BlockAddr::new(victim.key), tenant, events);
            }
        }
    }

    fn writeback_to_llc(&mut self, block: BlockAddr, tenant: TenantId, events: &mut Vec<MemEvent>) {
        let r = self
            .llc
            .access_with(block.index(), BlockKind::Data, true, None);
        if let Some(victim) = r.evicted {
            if victim.dirty {
                self.stats.llc_writebacks += 1;
                events.push(MemEvent::Write(BlockAddr::new(victim.key), tenant));
            }
        }
    }
}

/// End-to-end oracle simulation mirroring `maps_sim::SecureSim`'s stepping
/// contract: one [`OracleSim::step_observed`] call per core access, data
/// hierarchy first, then the memory events in order (writebacks before the
/// demand read), each charged to the [`OracleEngine`].
pub struct OracleSim<W> {
    cfg: SimConfig,
    workload: W,
    hierarchy: SpecHierarchy,
    engine: Option<OracleEngine>,
    cycles: u64,
    insecure_dram: maps_mem::DramCounters,
}

impl<W: Workload> OracleSim<W> {
    /// Builds the simulation; protected memory is grown to the workload's
    /// footprint exactly as `SecureSim::new` does.
    pub fn new(cfg: SimConfig, workload: W) -> Self {
        let memory_bytes = cfg.memory_bytes.max(workload.footprint_bytes()).max(4096);
        let secure_cfg = SecureConfig::new(
            memory_bytes.next_multiple_of(maps_trace::PAGE_BYTES),
            cfg.counter_mode,
        );
        let engine = cfg.secure.then(|| {
            OracleEngine::new(
                secure_cfg,
                &cfg.mdc,
                cfg.dram.latency_cycles,
                cfg.hash_latency,
                cfg.speculation,
                cfg.speculation_window,
            )
        });
        Self {
            hierarchy: SpecHierarchy::new(&cfg),
            engine,
            cfg,
            workload,
            cycles: 0,
            insecure_dram: maps_mem::DramCounters::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The metadata engine (if secure memory is enabled).
    pub fn engine(&self) -> Option<&OracleEngine> {
        self.engine.as_ref()
    }

    /// Cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Hierarchy statistics so far.
    pub fn hierarchy_stats(&self) -> &HierarchyStats {
        self.hierarchy.stats()
    }

    /// DRAM transfers in insecure mode.
    pub fn insecure_dram(&self) -> &maps_mem::DramCounters {
        &self.insecure_dram
    }

    /// Flushes the metadata engine's cache, feeding `obs` the final
    /// writeback stream.
    pub fn flush_observed<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        if let Some(engine) = &mut self.engine {
            engine.flush(obs);
        }
    }

    /// Executes one core access, feeding `obs` the metadata stream.
    pub fn step_observed<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        let access = self.workload.next_access();
        let tenant = self.workload.current_tenant();
        self.cycles += u64::from(access.icount);
        let mut events = Vec::new();
        self.hierarchy.access_from(&access, tenant, &mut events);
        for event in &events {
            match (event, &mut self.engine) {
                (MemEvent::Write(block, t), Some(engine)) => {
                    engine.handle_write_from(*block, *t, obs)
                }
                (MemEvent::Read(block, t), Some(engine)) => {
                    self.cycles += engine.handle_read_from(*block, *t, obs);
                }
                (MemEvent::Write(..), None) => self.insecure_dram.writes += 1,
                (MemEvent::Read(..), None) => {
                    self.insecure_dram.reads += 1;
                    self.cycles += self.cfg.dram.latency_cycles;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_sim::NullObserver;
    use maps_trace::PhysAddr;
    use maps_workloads::Benchmark;

    fn acc(block: u64, kind: AccessKind) -> MemAccess {
        MemAccess::new(PhysAddr::new(block * 64), kind, 4)
    }

    #[test]
    fn first_touch_misses_everywhere() {
        let mut h = SpecHierarchy::new(&SimConfig::paper_default());
        let mut ev = Vec::new();
        assert!(h.access(&acc(1, AccessKind::Read), &mut ev));
        assert_eq!(ev, vec![MemEvent::Read(BlockAddr::new(1), TenantId::HOST)]);
        assert!(!h.access(&acc(1, AccessKind::Read), &mut ev));
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn oracle_sim_runs_secure_and_insecure() {
        let mut secure = OracleSim::new(SimConfig::paper_default(), Benchmark::Gups.build(3));
        let mut insecure = OracleSim::new(SimConfig::insecure_baseline(), Benchmark::Gups.build(3));
        for _ in 0..5000 {
            secure.step_observed(&mut NullObserver);
            insecure.step_observed(&mut NullObserver);
        }
        assert!(secure.engine().unwrap().stats().reads > 0);
        assert!(insecure.insecure_dram().reads > 0);
        assert!(secure.cycles() >= insecure.cycles());
    }
}
