//! Executable specification and differential oracle for the MAPS
//! secure-memory pipeline.
//!
//! Everything in this crate is deliberately slow and obviously correct: a
//! linear-scan cache with no packed tag arrays ([`SpecCache`]), a metadata
//! engine that recomputes every layout equation from
//! [`maps_secure::spec`]'s plain-arithmetic forms on each access
//! ([`OracleEngine`]), a `HashMap`-backed counter store, and a value-level
//! Bonsai Merkle Tree whose digests are really recomputed from counter
//! values ([`OracleBmt`]). The production simulator earns its optimizations
//! — packed tags, shift/mask address math, stack-allocated tree walks,
//! reusable cascade buffers — only as long as it stays observably equal to
//! this crate: the differential harness ([`diff`]) drives both
//! implementations in lockstep and asserts equality of the metadata touch
//! stream, per-level hit/miss statistics, DRAM traffic, stall cycles, and
//! cache contents after every access.
//!
//! ## One deliberate divergence from "fully associative"
//!
//! The oracle's caches mirror the production set-associative geometry
//! (same set count, same ways) instead of being fully associative: the
//! differential contract includes per-set effects (conflict misses, way
//! partitions, set dueling), which a fully-associative model could not
//! reproduce. The *storage* is still naive — a `Vec<Option<Line>>` per set
//! found by linear scan — and set selection is plain remainder rather than
//! mask arithmetic. Replacement policies are shared with production by
//! design: the policy objects are the specification of replacement, and
//! the oracle checks everything wrapped around them.
//!
//! ## Failure artifacts
//!
//! When lockstep disagreement is detected, [`diff`] shrinks the driving
//! trace with a delta-debugging loop and writes a replayable `.trace`
//! artifact (config and seed embedded) under `results/failures/`; see
//! [`diff::replay_artifact`].

pub mod bmt;
pub mod cache;
pub mod diff;
pub mod engine;
pub mod hierarchy;

pub use bmt::OracleBmt;
pub use cache::{SpecAccessResult, SpecCache, SpecMdOutcome, SpecMetadataCache};
pub use diff::{DiffCase, DiffError, TraceOp};
pub use engine::{OracleCounters, OracleEngine};
pub use hierarchy::{OracleSim, SpecHierarchy};
