//! Differential harness: production [`maps_sim::SecureSim`] vs the oracle
//! [`OracleSim`], in lockstep, with trace minimization and replayable
//! failure artifacts.
//!
//! A [`DiffCase`] is a configuration plus a core-level trace of
//! reads/writes ([`TraceOp`]). [`run_lockstep`] replays the trace through
//! both simulators one access at a time and, after *every* access, asserts
//! equality of the observed metadata touch stream, the accumulated cycles,
//! the hierarchy counters, the full engine statistics (per-kind hits and
//! misses, DRAM traffic, tree walks, overflows, stalls, cascade depth),
//! and a running digest of the BMT write stream (the "root evolution"
//! witness); cache contents are compared line-for-line — timestamps
//! included — at a fixed cadence and at the end, after a final flush.
//!
//! On divergence, [`check_case`] shrinks the trace with a delta-debugging
//! loop ([`minimize`]) and dumps a self-contained `.trace` artifact under
//! `results/failures/` that [`replay_artifact`] can re-execute verbatim.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use maps_cache::{Line, Partition, TenantPartition};
use maps_sim::{
    CacheContents, MdcConfig, MdcDesign, PartitionMode, PolicyChoice, RecordingObserver, SecureSim,
    SimConfig,
};
use maps_trace::rng::SmallRng;
use maps_trace::{AccessKind, BlockKind, MemAccess, MetaAccess, PhysAddr, TenantId, BLOCK_BYTES};
use maps_workloads::Workload;

use crate::hierarchy::OracleSim;

/// One core-level memory operation on a data block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Load from a data block.
    Read(u64),
    /// Store to a data block.
    Write(u64),
}

impl TraceOp {
    /// The data block index.
    pub fn block(self) -> u64 {
        match self {
            TraceOp::Read(b) | TraceOp::Write(b) => b,
        }
    }

    /// Whether this is a store.
    pub fn is_write(self) -> bool {
        matches!(self, TraceOp::Write(_))
    }
}

/// Replays a fixed op list as a workload (icount 1 per access). With more
/// than one tenant, accesses are attributed round-robin by position — a
/// deterministic interleaving that exercises tenant attribution, per-tenant
/// partitions, and randomized-backend quotas in lockstep.
#[derive(Debug, Clone)]
pub struct OpsWorkload {
    ops: Vec<TraceOp>,
    pos: usize,
    footprint: u64,
    tenants: usize,
    tenant: TenantId,
}

impl OpsWorkload {
    /// Wraps an op list; the footprint covers the highest touched block.
    pub fn new(ops: &[TraceOp]) -> Self {
        Self::with_tenants(ops, 1)
    }

    /// Wraps an op list with accesses attributed round-robin across
    /// `tenants` tenant IDs (`tenants == 1` means everything is HOST).
    pub fn with_tenants(ops: &[TraceOp], tenants: usize) -> Self {
        assert!(
            (1..=usize::from(u8::MAX)).contains(&tenants),
            "tenant count must fit a TenantId"
        );
        let footprint = ops
            .iter()
            .map(|op| (op.block() + 1) * BLOCK_BYTES)
            .max()
            .unwrap_or(0)
            .max(4096);
        Self {
            ops: ops.to_vec(),
            pos: 0,
            footprint,
            tenants,
            tenant: TenantId::HOST,
        }
    }
}

impl Workload for OpsWorkload {
    fn next_access(&mut self) -> MemAccess {
        assert!(!self.ops.is_empty(), "stepping an empty op trace");
        let op = self.ops[self.pos % self.ops.len()];
        self.tenant = TenantId((self.pos % self.tenants) as u8);
        self.pos += 1;
        let kind = if op.is_write() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        MemAccess::new(PhysAddr::new(op.block() * BLOCK_BYTES), kind, 1)
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &'static str {
        "ops-replay"
    }

    fn current_tenant(&self) -> TenantId {
        self.tenant
    }
}

/// A differential test case: label, seed (provenance only — the trace is
/// already materialized), configuration, and the driving trace.
#[derive(Debug, Clone)]
pub struct DiffCase {
    /// Human-readable case name (used in artifact file names).
    pub label: String,
    /// Seed the trace was generated from.
    pub seed: u64,
    /// Simulation configuration. A `PolicyChoice::Min`/`TraceMin` with an
    /// *empty* embedded trace is a sentinel: the oracle trace is re-derived
    /// deterministically from the ops (see [`derive_oracle_trace`]), so
    /// minimization and artifact replay stay self-contained.
    pub cfg: SimConfig,
    /// The driving trace.
    pub ops: Vec<TraceOp>,
    /// Tenants the ops are attributed to, round-robin by position
    /// (`1` = everything runs as HOST, the classic single-tenant case).
    pub tenants: usize,
}

/// A lockstep divergence.
#[derive(Debug, Clone)]
pub struct DiffError {
    /// Index of the first diverging access (`ops.len()` for end-of-run
    /// flush/counter divergence).
    pub step: usize,
    /// What diverged.
    pub what: String,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence at step {}: {}", self.step, self.what)
    }
}

impl std::error::Error for DiffError {}

/// Uniform random trace over `blocks` data blocks, `write_pct`% stores.
pub fn random_ops(seed: u64, blocks: u64, n: usize, write_pct: u32) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let b = rng.gen_range(0..blocks);
            if rng.gen_ratio(write_pct, 100) {
                TraceOp::Write(b)
            } else {
                TraceOp::Read(b)
            }
        })
        .collect()
}

/// Captures `n` accesses from any workload generator as a replayable trace.
pub fn ops_from_workload<W: Workload>(mut workload: W, n: usize) -> Vec<TraceOp> {
    (0..n)
        .map(|_| {
            let a = workload.next_access();
            let block = a.addr.block().index();
            if a.kind == AccessKind::Write {
                TraceOp::Write(block)
            } else {
                TraceOp::Read(block)
            }
        })
        .collect()
}

/// Scales a bounded-tier trace length for the `MAPS_DEEP_DIFF=1` long-fuzz
/// tier (50× longer traces; anything unset/`0` means the bounded tier).
pub fn scaled_len(base: usize) -> usize {
    match std::env::var("MAPS_DEEP_DIFF") {
        Ok(v) if !v.is_empty() && v != "0" => base * 50,
        _ => base,
    }
}

/// The MIN-oracle key trace for a case, derived deterministically: a
/// true-LRU pre-run of the production simulator over the same ops (with
/// the same tenant interleaving) records the metadata key stream MIN
/// receives as future knowledge.
pub fn derive_oracle_trace(cfg: &SimConfig, ops: &[TraceOp], tenants: usize) -> Vec<u64> {
    let mut pre = cfg.clone();
    pre.mdc = pre.mdc.with_policy(PolicyChoice::TrueLru);
    let mut sim = SecureSim::new(pre, OpsWorkload::with_tenants(ops, tenants));
    let mut rec = RecordingObserver::new();
    for _ in 0..ops.len() {
        sim.step_observed(&mut rec);
    }
    rec.keys().collect()
}

/// Replaces a `Min([])`/`TraceMin([])` sentinel policy with one fed the
/// derived oracle trace; other policies pass through untouched.
fn materialize_policy(cfg: &SimConfig, ops: &[TraceOp], tenants: usize) -> SimConfig {
    let needs_trace = matches!(&cfg.mdc.policy, PolicyChoice::Min(t) if t.is_empty())
        || matches!(&cfg.mdc.policy, PolicyChoice::TraceMin(t) if t.is_empty());
    if !needs_trace {
        return cfg.clone();
    }
    let trace = derive_oracle_trace(cfg, ops, tenants);
    let mut out = cfg.clone();
    out.mdc.policy = match &cfg.mdc.policy {
        PolicyChoice::Min(_) => PolicyChoice::Min(trace),
        PolicyChoice::TraceMin(_) => PolicyChoice::TraceMin(trace),
        _ => unreachable!(),
    };
    out
}

/// Folds the tree-write portion of an observed stream into a running
/// digest — a compressed witness of how each side's BMT root evolves.
fn fold_root_evolution(mut acc: u64, records: &[MetaAccess]) -> u64 {
    for r in records {
        if matches!(r.kind, BlockKind::Tree(_)) && r.access == AccessKind::Write {
            let mut x = acc ^ r.block.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            acc = x ^ (x >> 27);
        }
    }
    acc
}

/// How often lockstep compares full cache contents (every access would be
/// quadratic; every 64th keeps it cheap while still localizing bugs).
const RESIDENT_CHECK_PERIOD: usize = 64;

fn compare_streams(step: usize, prod: &[MetaAccess], orac: &[MetaAccess]) -> Result<(), DiffError> {
    if prod == orac {
        return Ok(());
    }
    let i = prod
        .iter()
        .zip(orac.iter())
        .position(|(a, b)| a != b)
        .unwrap_or(prod.len().min(orac.len()));
    Err(DiffError {
        step,
        what: format!(
            "metadata streams diverge at record {i}: production {:?} vs oracle {:?} \
             (lengths {} vs {})",
            prod.get(i),
            orac.get(i),
            prod.len(),
            orac.len()
        ),
    })
}

fn compare_residents<W: Workload>(
    step: usize,
    prod: &SecureSim<W>,
    orac: &OracleSim<W>,
) -> Result<(), DiffError> {
    let prod_lines: Option<Vec<Line>> = prod
        .engine()
        .and_then(|e| e.mdc())
        .map(|m| m.resident_lines().collect());
    let orac_lines: Option<Vec<Line>> = orac
        .engine()
        .and_then(|e| e.mdc())
        .map(|m| m.resident_lines().copied().collect());
    if prod_lines != orac_lines {
        let (p, o) = (
            prod_lines.as_deref().unwrap_or(&[]),
            orac_lines.as_deref().unwrap_or(&[]),
        );
        let i = p
            .iter()
            .zip(o.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(p.len().min(o.len()));
        return Err(DiffError {
            step,
            what: format!(
                "metadata cache contents diverge at frame {i}: production {:?} vs oracle {:?} \
                 (occupancy {} vs {})",
                p.get(i),
                o.get(i),
                p.len(),
                o.len()
            ),
        });
    }
    Ok(())
}

/// Replays `case` through both simulators in lockstep.
///
/// # Errors
///
/// Returns the first [`DiffError`] observed; `Ok(())` means every
/// per-access and end-of-run comparison held.
pub fn run_lockstep(case: &DiffCase) -> Result<(), DiffError> {
    let cfg = materialize_policy(&case.cfg, &case.ops, case.tenants);
    let mut prod = SecureSim::new(
        cfg.clone(),
        OpsWorkload::with_tenants(&case.ops, case.tenants),
    );
    let mut orac = OracleSim::new(cfg, OpsWorkload::with_tenants(&case.ops, case.tenants));
    let mut root_prod = 0u64;
    let mut root_orac = 0u64;

    for step in 0..case.ops.len() {
        let mut rec_prod = RecordingObserver::new();
        let mut rec_orac = RecordingObserver::new();
        prod.step_observed(&mut rec_prod);
        orac.step_observed(&mut rec_orac);

        compare_streams(step, &rec_prod.records, &rec_orac.records)?;
        root_prod = fold_root_evolution(root_prod, &rec_prod.records);
        root_orac = fold_root_evolution(root_orac, &rec_orac.records);
        if root_prod != root_orac {
            return Err(DiffError {
                step,
                what: format!("BMT root evolution diverges: {root_prod:#x} vs {root_orac:#x}"),
            });
        }
        if prod.cycles() != orac.cycles() {
            return Err(DiffError {
                step,
                what: format!(
                    "cycles diverge: production {} vs oracle {}",
                    prod.cycles(),
                    orac.cycles()
                ),
            });
        }
        if prod.hierarchy_stats() != orac.hierarchy_stats() {
            return Err(DiffError {
                step,
                what: format!(
                    "hierarchy stats diverge: production {:?} vs oracle {:?}",
                    prod.hierarchy_stats(),
                    orac.hierarchy_stats()
                ),
            });
        }
        match (prod.engine(), orac.engine()) {
            (Some(pe), Some(oe)) => {
                if pe.stats() != oe.stats() {
                    return Err(DiffError {
                        step,
                        what: format!(
                            "engine stats diverge: production {:?} vs oracle {:?}",
                            pe.stats(),
                            oe.stats()
                        ),
                    });
                }
            }
            (None, None) => {}
            _ => {
                return Err(DiffError {
                    step,
                    what: "one side has a metadata engine, the other does not".into(),
                })
            }
        }
        if step % RESIDENT_CHECK_PERIOD == RESIDENT_CHECK_PERIOD - 1 {
            compare_residents(step, &prod, &orac)?;
        }
    }

    // End of run: final contents, flush streams, and counter agreement.
    let end = case.ops.len();
    compare_residents(end, &prod, &orac)?;
    let mut rec_prod = RecordingObserver::new();
    let mut rec_orac = RecordingObserver::new();
    prod.flush_observed(&mut rec_prod);
    orac.flush_observed(&mut rec_orac);
    compare_streams(end, &rec_prod.records, &rec_orac.records)?;
    if let (Some(pe), Some(oe)) = (prod.engine(), orac.engine()) {
        if pe.stats() != oe.stats() {
            return Err(DiffError {
                step: end,
                what: format!(
                    "post-flush engine stats diverge: production {:?} vs oracle {:?}",
                    pe.stats(),
                    oe.stats()
                ),
            });
        }
        if pe.counters().overflows() != oe.counters().overflows()
            || pe.counters().writes() != oe.counters().writes()
        {
            return Err(DiffError {
                step: end,
                what: format!(
                    "counter store totals diverge: overflows {} vs {}, writes {} vs {}",
                    pe.counters().overflows(),
                    oe.counters().overflows(),
                    pe.counters().writes(),
                    oe.counters().writes()
                ),
            });
        }
        for op in &case.ops {
            let block = maps_trace::BlockAddr::new(op.block());
            if pe.counters().block_counter(block) != oe.counters().block_counter(block) {
                return Err(DiffError {
                    step: end,
                    what: format!(
                        "counter value diverges for block {}: {} vs {}",
                        op.block(),
                        pe.counters().block_counter(block),
                        oe.counters().block_counter(block)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Shrinks a failing case to a (locally) minimal op trace with a greedy
/// delta-debugging loop: repeatedly drop chunks, halving the chunk size,
/// keeping any candidate that still diverges. Returns the input unchanged
/// if it does not fail.
pub fn minimize(case: &DiffCase) -> DiffCase {
    let fails = |ops: &[TraceOp]| {
        run_lockstep(&DiffCase {
            ops: ops.to_vec(),
            ..case.clone()
        })
        .is_err()
    };
    let mut ops = case.ops.clone();
    if ops.is_empty() || !fails(&ops) {
        return case.clone();
    }
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < ops.len() && ops.len() > 1 {
            let mut candidate = ops.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if !candidate.is_empty() && fails(&candidate) {
                ops = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    DiffCase {
        ops,
        ..case.clone()
    }
}

/// Where failure artifacts are written: `results/failures/` at the
/// workspace root (compile-time anchored, so it does not depend on the
/// test runner's working directory).
pub fn failures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/failures")
}

fn policy_token(policy: &PolicyChoice) -> String {
    match policy {
        PolicyChoice::Random(seed) => format!("random:{seed}"),
        PolicyChoice::CostAware(cost) => format!("cost-aware:{cost}"),
        other => other.name().to_string(),
    }
}

fn parse_policy(token: &str) -> Result<PolicyChoice, String> {
    let (name, param) = match token.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (token, None),
    };
    let num = || -> Result<u64, String> {
        param
            .ok_or_else(|| format!("policy {name} needs a parameter"))?
            .parse()
            .map_err(|e| format!("bad policy parameter: {e}"))
    };
    Ok(match name {
        "pseudo-lru" => PolicyChoice::PseudoLru,
        "true-lru" => PolicyChoice::TrueLru,
        "fifo" => PolicyChoice::Fifo,
        "random" => PolicyChoice::Random(num()?),
        "srrip" => PolicyChoice::Srrip,
        "eva" => PolicyChoice::Eva,
        "min" => PolicyChoice::Min(Vec::new()),
        "trace-min" => PolicyChoice::TraceMin(Vec::new()),
        "cost-aware" => PolicyChoice::CostAware(num()?),
        "drrip" => PolicyChoice::Drrip,
        "eva-per-type" => PolicyChoice::EvaPerType,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn contents_token(contents: CacheContents) -> String {
    contents.label().to_string()
}

fn parse_contents(token: &str) -> Result<CacheContents, String> {
    Ok(match token {
        "all" => CacheContents::ALL,
        "counters" => CacheContents::COUNTERS_ONLY,
        "counters+hashes" => CacheContents::COUNTERS_AND_HASHES,
        "none" => CacheContents::NONE,
        other => return Err(format!("unknown contents {other:?}")),
    })
}

fn partition_token(mode: &PartitionMode) -> String {
    match mode {
        PartitionMode::None => "none".to_string(),
        PartitionMode::Static(p) => format!("static:{}", p.counter_way_count()),
        PartitionMode::Dynamic {
            a,
            b,
            leaders_per_side,
        } => format!(
            "dynamic:{}:{}:{}",
            a.counter_way_count(),
            b.counter_way_count(),
            leaders_per_side
        ),
        PartitionMode::PerTenant { tenants } => format!("per-tenant:{tenants}"),
    }
}

fn parse_partition(token: &str) -> Result<PartitionMode, String> {
    let mut parts = token.split(':');
    let head = parts.next().unwrap_or("");
    let mut num = || -> Result<usize, String> {
        parts
            .next()
            .ok_or_else(|| format!("partition {token:?} is missing a field"))?
            .parse()
            .map_err(|e| format!("bad partition field: {e}"))
    };
    Ok(match head {
        "none" => PartitionMode::None,
        "static" => PartitionMode::Static(Partition::counter_ways(num()?)),
        "dynamic" => PartitionMode::Dynamic {
            a: Partition::counter_ways(num()?),
            b: Partition::counter_ways(num()?),
            leaders_per_side: num()?,
        },
        "per-tenant" => PartitionMode::PerTenant { tenants: num()? },
        other => return Err(format!("unknown partition {other:?}")),
    })
}

fn design_token(design: &MdcDesign) -> String {
    match design {
        MdcDesign::SetAssoc => "set-assoc".to_string(),
        MdcDesign::Randomized { seed } => format!("randomized:{seed}"),
    }
}

fn parse_design(token: &str) -> Result<MdcDesign, String> {
    let (name, param) = match token.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (token, None),
    };
    Ok(match name {
        "set-assoc" => MdcDesign::SetAssoc,
        "randomized" => MdcDesign::Randomized {
            seed: param
                .ok_or_else(|| "randomized design needs a seed".to_string())?
                .parse()
                .map_err(|e| format!("bad design seed: {e}"))?,
        },
        other => return Err(format!("unknown design {other:?}")),
    })
}

fn counter_mode_token(mode: maps_secure::CounterMode) -> &'static str {
    match mode {
        maps_secure::CounterMode::SplitPi => "split-pi",
        maps_secure::CounterMode::SgxMonolithic => "sgx",
    }
}

fn parse_counter_mode(token: &str) -> Result<maps_secure::CounterMode, String> {
    Ok(match token {
        "split-pi" => maps_secure::CounterMode::SplitPi,
        "sgx" => maps_secure::CounterMode::SgxMonolithic,
        other => return Err(format!("unknown counter mode {other:?}")),
    })
}

/// Serializes a case (with the divergence it reproduces) to a `.trace`
/// artifact in `dir`, returning the file path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_artifact(case: &DiffCase, err: &DiffError, dir: &Path) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let cfg = &case.cfg;
    let mut text = String::new();
    text.push_str("# MAPS differential failure artifact; replay with\n");
    text.push_str("#   cargo test -q --test differential replay_failure_artifacts\n");
    text.push_str(&format!("# {err}\n"));
    text.push_str(&format!("label = {}\n", case.label));
    text.push_str(&format!("seed = {}\n", case.seed));
    text.push_str(&format!("secure = {}\n", cfg.secure));
    text.push_str(&format!(
        "counter_mode = {}\n",
        counter_mode_token(cfg.counter_mode)
    ));
    text.push_str(&format!("memory_bytes = {}\n", cfg.memory_bytes));
    text.push_str(&format!("l1 = {}/{}\n", cfg.l1_bytes, cfg.l1_ways));
    text.push_str(&format!("l2 = {}/{}\n", cfg.l2_bytes, cfg.l2_ways));
    text.push_str(&format!("llc = {}/{}\n", cfg.llc_bytes, cfg.llc_ways));
    text.push_str(&format!("mdc = {}/{}\n", cfg.mdc.size_bytes, cfg.mdc.ways));
    text.push_str(&format!(
        "contents = {}\n",
        contents_token(cfg.mdc.contents)
    ));
    text.push_str(&format!("policy = {}\n", policy_token(&cfg.mdc.policy)));
    text.push_str(&format!("design = {}\n", design_token(&cfg.mdc.design)));
    text.push_str(&format!(
        "partition = {}\n",
        partition_token(&cfg.mdc.partition)
    ));
    text.push_str(&format!("tenants = {}\n", case.tenants));
    text.push_str(&format!("partial_writes = {}\n", cfg.mdc.partial_writes));
    text.push_str(&format!("dram_latency = {}\n", cfg.dram.latency_cycles));
    text.push_str(&format!("hash_latency = {}\n", cfg.hash_latency));
    text.push_str(&format!("speculation = {}\n", cfg.speculation));
    text.push_str(&format!(
        "speculation_window = {}\n",
        cfg.speculation_window
    ));
    text.push_str("ops:\n");
    for op in &case.ops {
        match op {
            TraceOp::Read(b) => text.push_str(&format!("R {b}\n")),
            TraceOp::Write(b) => text.push_str(&format!("W {b}\n")),
        }
    }
    let path = dir.join(format!("{}-seed{}.trace", case.label, case.seed));
    fs::write(&path, text)?;
    Ok(path)
}

/// Parses a `.trace` artifact back into a case.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_artifact(text: &str) -> Result<DiffCase, String> {
    let mut cfg = SimConfig::paper_default();
    let mut label = String::from("artifact");
    let mut seed = 0u64;
    let mut tenants = 1usize;
    let mut ops = Vec::new();
    let mut in_ops = false;
    let parse_pair = |v: &str| -> Result<(u64, usize), String> {
        let (bytes, ways) = v
            .split_once('/')
            .ok_or_else(|| format!("expected bytes/ways, got {v:?}"))?;
        Ok((
            bytes.trim().parse().map_err(|e| format!("{e}"))?,
            ways.trim().parse().map_err(|e| format!("{e}"))?,
        ))
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if in_ops {
            let (tag, block) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad op line {line:?}"))?;
            let block: u64 = block.trim().parse().map_err(|e| format!("{e}"))?;
            ops.push(match tag {
                "R" => TraceOp::Read(block),
                "W" => TraceOp::Write(block),
                other => return Err(format!("unknown op tag {other:?}")),
            });
            continue;
        }
        if line == "ops:" {
            in_ops = true;
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("bad header line {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "label" => label = value.to_string(),
            "seed" => seed = value.parse().map_err(|e| format!("{e}"))?,
            "secure" => cfg.secure = value.parse().map_err(|e| format!("{e}"))?,
            "counter_mode" => cfg.counter_mode = parse_counter_mode(value)?,
            "memory_bytes" => cfg.memory_bytes = value.parse().map_err(|e| format!("{e}"))?,
            "l1" => (cfg.l1_bytes, cfg.l1_ways) = parse_pair(value)?,
            "l2" => (cfg.l2_bytes, cfg.l2_ways) = parse_pair(value)?,
            "llc" => (cfg.llc_bytes, cfg.llc_ways) = parse_pair(value)?,
            "mdc" => {
                (cfg.mdc.size_bytes, cfg.mdc.ways) = {
                    let (b, w) = parse_pair(value)?;
                    (b, w)
                }
            }
            "contents" => cfg.mdc.contents = parse_contents(value)?,
            "policy" => cfg.mdc.policy = parse_policy(value)?,
            "design" => cfg.mdc.design = parse_design(value)?,
            "partition" => cfg.mdc.partition = parse_partition(value)?,
            "tenants" => {
                tenants = value.parse().map_err(|e| format!("{e}"))?;
                if !(1..=usize::from(u8::MAX)).contains(&tenants) {
                    return Err(format!("tenant count {tenants} does not fit a TenantId"));
                }
            }
            "partial_writes" => {
                cfg.mdc.partial_writes = value.parse().map_err(|e| format!("{e}"))?
            }
            "dram_latency" => {
                cfg.dram.latency_cycles = value.parse().map_err(|e| format!("{e}"))?
            }
            "hash_latency" => cfg.hash_latency = value.parse().map_err(|e| format!("{e}"))?,
            "speculation" => cfg.speculation = value.parse().map_err(|e| format!("{e}"))?,
            "speculation_window" => {
                cfg.speculation_window = value.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown header key {other:?}")),
        }
    }
    if !cfg.secure {
        cfg.mdc = MdcConfig::disabled();
    }
    // `partition =` may appear before `mdc = bytes/ways` in the artifact,
    // so the split can only be checked against the final associativity
    // here. An invalid split must be a parse error: in release builds it
    // would otherwise clamp into a starved/overlapping way range and the
    // replayed case would silently diverge from the dumped one.
    let check = |p: &Partition| -> Result<(), String> {
        p.try_validate(cfg.mdc.ways)
            .map_err(|e| format!("bad partition: {e}"))
    };
    match &cfg.mdc.partition {
        PartitionMode::None => {}
        PartitionMode::Static(p) => check(p)?,
        PartitionMode::Dynamic { a, b, .. } => {
            check(a)?;
            check(b)?;
        }
        // A per-tenant way split must honor the same checked-construction
        // rule (the randomized design enforces quotas instead, so any
        // tenant count is valid there).
        PartitionMode::PerTenant { tenants } => {
            if matches!(cfg.mdc.design, MdcDesign::SetAssoc) {
                TenantPartition::new(*tenants, cfg.mdc.ways)
                    .map_err(|e| format!("bad partition: {e}"))?;
            }
        }
    }
    Ok(DiffCase {
        label,
        seed,
        cfg,
        ops,
        tenants,
    })
}

/// Re-executes a dumped artifact, returning the (expected) divergence.
///
/// # Errors
///
/// `Err(Ok(diff))` is impossible — the outer error is an unreadable or
/// malformed file; the inner result is the lockstep outcome.
pub fn replay_artifact(path: &Path) -> Result<Result<(), DiffError>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let case = parse_artifact(&text)?;
    Ok(run_lockstep(&case))
}

/// Runs a case; on divergence, minimizes it, writes an artifact to
/// [`failures_dir`], and returns an error naming both.
///
/// # Errors
///
/// The [`DiffError`] of the minimized case, with the artifact path
/// appended to `what`.
pub fn check_case(case: &DiffCase) -> Result<(), DiffError> {
    let Err(first) = run_lockstep(case) else {
        return Ok(());
    };
    let minimized = minimize(case);
    let err = run_lockstep(&minimized).err().unwrap_or(first);
    let where_dumped = match dump_artifact(&minimized, &err, &failures_dir()) {
        Ok(path) => format!("artifact: {}", path.display()),
        Err(io) => format!("artifact dump failed: {io}"),
    };
    Err(DiffError {
        step: err.step,
        what: format!(
            "[{}] {} (minimized to {} of {} ops; {})",
            case.label,
            err.what,
            minimized.ops.len(),
            case.ops.len(),
            where_dumped
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.l1_bytes = 1024;
        cfg.l2_bytes = 2048;
        cfg.llc_bytes = 4096;
        cfg.memory_bytes = 1 << 20;
        cfg.mdc = MdcConfig::paper_default().with_size(2048);
        cfg
    }

    #[test]
    fn identical_sims_pass_lockstep() {
        let case = DiffCase {
            label: "smoke".into(),
            seed: 1,
            cfg: small_cfg(),
            ops: random_ops(1, 2048, 600, 40),
            tenants: 1,
        };
        run_lockstep(&case).expect("production and oracle must agree");
    }

    #[test]
    fn artifact_roundtrips() {
        let mut cfg = small_cfg();
        cfg.mdc.partition = PartitionMode::Dynamic {
            a: Partition::counter_ways(2),
            b: Partition::counter_ways(6),
            leaders_per_side: 1,
        };
        cfg.mdc.policy = PolicyChoice::Random(77);
        let case = DiffCase {
            label: "roundtrip".into(),
            seed: 9,
            cfg,
            ops: vec![TraceOp::Read(3), TraceOp::Write(5), TraceOp::Read(3)],
            tenants: 1,
        };
        let err = DiffError {
            step: 0,
            what: "synthetic".into(),
        };
        let dir = std::env::temp_dir().join("maps-oracle-artifact-test");
        let path = dump_artifact(&case, &err, &dir).unwrap();
        let parsed = parse_artifact(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.ops, case.ops);
        assert_eq!(parsed.cfg, case.cfg);
        assert_eq!(parsed.label, case.label);
        assert_eq!(parsed.seed, case.seed);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn artifact_with_invalid_partition_is_rejected() {
        // Regression: parse_artifact used to rebuild partitions through
        // the unchecked `Partition::counter_ways`, so a hand-edited or
        // corrupted artifact with a starving split (k == ways or k == 0)
        // replayed with a clamped way range instead of erroring. This
        // must hold in release builds too, where `ways_for` only clamps.
        let base = "mdc = 2048/8\npartition = static:8\nops:\nR 1\n";
        let err = parse_artifact(base).unwrap_err();
        assert!(err.contains("partition"), "unexpected error: {err}");
        let zero = "mdc = 2048/8\npartition = static:0\nops:\nR 1\n";
        assert!(parse_artifact(zero).is_err());
        let dynamic = "mdc = 2048/8\npartition = dynamic:2:9:1\nops:\nR 1\n";
        assert!(parse_artifact(dynamic).is_err());
        // Header order must not matter: partition before mdc still
        // validates against the final associativity.
        let reordered = "partition = static:4\nmdc = 2048/4\nops:\nR 1\n";
        assert!(parse_artifact(reordered).is_err());
        let ok = "partition = static:4\nmdc = 2048/8\nops:\nR 1\n";
        assert!(parse_artifact(ok).is_ok());
    }

    #[test]
    fn minimize_shrinks_synthetic_failure() {
        // A case whose cfg cannot fail lockstep; force failure by giving
        // the two sides different traces is impossible through the public
        // API, so instead check minimize() is the identity on passers.
        let case = DiffCase {
            label: "passing".into(),
            seed: 3,
            cfg: small_cfg(),
            ops: random_ops(3, 1024, 120, 30),
            tenants: 1,
        };
        let out = minimize(&case);
        assert_eq!(out.ops, case.ops, "passing cases must not shrink");
    }

    #[test]
    fn min_sentinel_is_materialized() {
        let mut cfg = small_cfg();
        cfg.mdc.policy = PolicyChoice::Min(Vec::new());
        let case = DiffCase {
            label: "min-sentinel".into(),
            seed: 4,
            cfg,
            ops: random_ops(4, 1024, 400, 35),
            tenants: 1,
        };
        run_lockstep(&case).expect("MIN with derived trace must agree");
    }

    #[test]
    fn randomized_design_passes_lockstep() {
        let mut cfg = small_cfg();
        cfg.mdc = cfg.mdc.with_design(MdcDesign::Randomized { seed: 0xA5 });
        let case = DiffCase {
            label: "randomized-smoke".into(),
            seed: 5,
            cfg,
            ops: random_ops(5, 2048, 600, 40),
            tenants: 1,
        };
        run_lockstep(&case).expect("randomized backend must agree with its spec");
    }

    #[test]
    fn multi_tenant_artifact_roundtrips() {
        let mut cfg = small_cfg();
        cfg.mdc = cfg
            .mdc
            .with_design(MdcDesign::Randomized { seed: 31 })
            .with_partition(PartitionMode::PerTenant { tenants: 3 });
        let case = DiffCase {
            label: "tenant-roundtrip".into(),
            seed: 6,
            cfg,
            ops: vec![TraceOp::Write(1), TraceOp::Read(2)],
            tenants: 3,
        };
        let err = DiffError {
            step: 0,
            what: "synthetic".into(),
        };
        let dir = std::env::temp_dir().join("maps-oracle-artifact-test-tenant");
        let path = dump_artifact(&case, &err, &dir).unwrap();
        let parsed = parse_artifact(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.cfg, case.cfg);
        assert_eq!(parsed.tenants, case.tenants);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn artifact_with_starving_tenant_split_is_rejected() {
        // Set-associative per-tenant splits obey checked construction:
        // more tenants than ways would starve someone. The randomized
        // design has no such limit (quotas, not way ranges).
        let starving = "mdc = 2048/4\npartition = per-tenant:5\nops:\nR 1\n";
        let err = parse_artifact(starving).unwrap_err();
        assert!(err.contains("partition"), "unexpected error: {err}");
        let ok = "mdc = 2048/4\npartition = per-tenant:4\ntenants = 4\nops:\nR 1\n";
        assert_eq!(parse_artifact(ok).unwrap().tenants, 4);
        let randomized =
            "mdc = 2048/4\ndesign = randomized:7\npartition = per-tenant:5\nops:\nR 1\n";
        assert!(parse_artifact(randomized).is_ok());
        let bad_tenants = "tenants = 0\nops:\nR 1\n";
        assert!(parse_artifact(bad_tenants).is_err());
    }
}
