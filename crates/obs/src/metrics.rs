//! The metrics registry: named counters, gauges, and log₂ histograms.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;

/// Number of histogram buckets: one per possible `u64` bit length
/// (0 through 64), so bucketing never saturates or loses the tail.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram over `u64` samples.
///
/// Bucket `i` holds samples whose bit length is `i`: bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, and
/// so on. The bucket layout is fixed, so histograms from different runs
/// merge bucket-by-bucket without rebinning.
///
/// # Examples
///
/// ```
/// use maps_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [0, 1, 2, 3, 4, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bucket(2), 2); // 2 and 3
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Whether `sum` ever overflowed `u64` and clamped. Week-long farm
    /// campaigns merge many per-run histograms; a clamped sum silently
    /// under-reports unless flagged.
    saturated: bool,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            saturated: false,
        }
    }

    /// Bucket index of a sample: its bit length.
    pub const fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i` (0 for the zero bucket).
    pub const fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = match self.sum.checked_add(value) {
            Some(s) => s,
            None => {
                self.saturated = true;
                u64::MAX
            }
        };
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples; check [`Histogram::saturated`] before
    /// trusting it in long aggregations.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether the sum ever overflowed and clamped to `u64::MAX`. Sticky:
    /// merging a saturated histogram marks the destination saturated.
    pub const fn saturated(&self) -> bool {
        self.saturated
    }

    /// Smallest sample (0 when empty).
    pub const fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Non-empty `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Adds another histogram bucket-by-bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = match self.sum.checked_add(other.sum) {
            Some(s) => s,
            None => {
                self.saturated = true;
                u64::MAX
            }
        };
        self.saturated |= other.saturated;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// JSON form: count/sum/min/max/mean plus the non-empty buckets keyed
    /// by their inclusive lower bound.
    pub fn to_json(&self) -> Json {
        let mut buckets = Vec::new();
        for (i, c) in self.nonzero_buckets() {
            buckets.push((Self::bucket_lo(i).to_string(), Json::UInt(c)));
        }
        Json::Obj(vec![
            ("count".into(), Json::UInt(self.count)),
            ("sum".into(), Json::UInt(self.sum)),
            ("saturated".into(), Json::Bool(self.saturated)),
            ("min".into(), Json::UInt(self.min())),
            ("max".into(), Json::UInt(self.max)),
            ("mean".into(), Json::Float(self.mean())),
            ("buckets".into(), Json::Obj(buckets)),
        ])
    }
}

/// The metrics registry.
///
/// Counters accumulate (`merge` adds), gauges hold a point value (`merge`
/// keeps the maximum — the only aggregation that makes sense without a
/// time base), histograms merge bucket-wise. Iteration and JSON output are
/// sorted by name, so snapshots are deterministic.
///
/// # Examples
///
/// ```
/// use maps_obs::Metrics;
/// let mut m = Metrics::new();
/// m.counter_add("mdc.counter.hits", 3);
/// m.gauge_set("rowbuffer.hit_ratio", 0.75);
/// m.hist_record("engine.walk_depth", 2);
/// assert_eq!(m.counter_value("mdc.counter.hits"), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, value: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += value;
        } else {
            self.counters.insert(name.to_string(), value);
        }
    }

    /// Current counter value (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into a histogram, creating it when absent.
    pub fn hist_record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merges a whole histogram into the named slot (bucket-wise, exact).
    pub fn hist_merge(&mut self, name: &str, other: &Histogram) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.merge(other);
        } else {
            self.histograms.insert(name.to_string(), other.clone());
        }
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter `(name, value)` pairs, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauge `(name, value)` pairs, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry: counters add, gauges keep the max,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            self.counter_add(k, v);
        }
        for (k, &v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// The snapshot as JSON: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}`, every map sorted by name.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::UInt(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Float(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k} = {{count {}, mean {:.2}, max {}}}",
                h.count(),
                h.mean(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(4), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert_eq!(h.sum(), 24);
        assert!((h.mean() - 24.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(6);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(3), 2); // 5 and 6
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn saturated_sums_are_flagged_and_sticky() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert!(!h.saturated());
        assert_eq!(h.sum(), u64::MAX);
        h.record(1);
        assert!(h.saturated());
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(
            h.to_json().get("saturated").map(|j| j == &Json::Bool(true)),
            Some(true)
        );
        // A clean histogram stays unflagged and reports saturated: false.
        let clean = Histogram::new();
        assert!(!clean.saturated());
        assert_eq!(
            clean
                .to_json()
                .get("saturated")
                .map(|j| j == &Json::Bool(false)),
            Some(true)
        );
    }

    #[test]
    fn hist_merge_propagates_saturation() {
        // Merging two near-full sums overflows: the merged sum clamps and
        // the flag is set even though neither input was saturated.
        let mut m = Metrics::new();
        let mut a = Histogram::new();
        a.record(u64::MAX - 1);
        let mut b = Histogram::new();
        b.record(u64::MAX - 1);
        m.hist_merge("wide", &a);
        assert!(!m.histogram("wide").unwrap().saturated());
        m.hist_merge("wide", &b);
        let merged = m.histogram("wide").unwrap();
        assert!(merged.saturated());
        assert_eq!(merged.sum(), u64::MAX);
        assert_eq!(merged.count(), 2);
        // Sticky through further merges of clean histograms.
        let mut c = Histogram::new();
        c.record(7);
        m.hist_merge("wide", &c);
        assert!(m.histogram("wide").unwrap().saturated());
        // And an already-saturated input marks a clean destination.
        let mut d = Histogram::new();
        d.record(u64::MAX);
        d.record(u64::MAX);
        assert!(d.saturated());
        m.hist_merge("fresh", &c);
        m.hist_merge("fresh", &d);
        assert!(m.histogram("fresh").unwrap().saturated());
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.counter_add("x", 2);
        b.counter_add("x", 3);
        b.counter_add("y", 1);
        a.merge(&b);
        assert_eq!(a.counter_value("x"), 5);
        assert_eq!(a.counter_value("y"), 1);
        assert_eq!(a.counter_value("absent"), 0);
    }

    #[test]
    fn gauges_merge_by_max() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.gauge_set("g", 1.5);
        b.gauge_set("g", 0.5);
        a.merge(&b);
        assert_eq!(a.gauge_value("g"), Some(1.5));
        b.gauge_set("g", 9.0);
        a.merge(&b);
        assert_eq!(a.gauge_value("g"), Some(9.0));
    }

    #[test]
    fn json_snapshot_is_sorted_and_typed() {
        let mut m = Metrics::new();
        m.counter_add("b", 1);
        m.counter_add("a", 2);
        m.hist_record("h", 3);
        let j = m.to_json();
        let counters = j.get("counters").unwrap();
        let keys: Vec<&str> = match counters {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => panic!("counters must be an object"),
        };
        assert_eq!(keys, ["a", "b"]);
        let h = j.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
    }
}
