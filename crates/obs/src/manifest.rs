//! Schema-versioned JSON run manifests.
//!
//! Every `maps-bench` binary writes one manifest per run: what was run
//! (name, git revision, config, seed), how long it took (wall clock plus
//! per-phase timings), and everything it measured (the full metrics
//! snapshot). The schema is versioned so downstream tooling can reject
//! manifests it does not understand instead of misreading them.
//!
//! Required top-level fields (checked by [`validate_manifest`]):
//! `schema_version`, `name`, `git`, `created_unix`, `wall_seconds`,
//! `phases`, `params`, `config`, `metrics`.

use std::io;
use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::timer::Phases;

/// Current manifest schema version. Bump on any breaking field change.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// Top-level fields every manifest must carry.
const REQUIRED_FIELDS: [&str; 9] = [
    "schema_version",
    "name",
    "git",
    "created_unix",
    "wall_seconds",
    "phases",
    "params",
    "config",
    "metrics",
];

/// Builder for a run manifest.
#[derive(Debug)]
pub struct Manifest {
    name: String,
    git: String,
    created_unix: u64,
    wall: Duration,
    phases: Vec<(String, f64, u64)>,
    params: Vec<(String, Json)>,
    config: Json,
    metrics: Json,
}

impl Manifest {
    /// Starts a manifest for the named run (e.g. `"fig2"`), stamping the
    /// creation time and git revision now.
    pub fn new(name: &str) -> Self {
        Manifest {
            name: name.to_string(),
            git: git_describe(),
            created_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            wall: Duration::ZERO,
            phases: Vec::new(),
            params: Vec::new(),
            config: Json::Obj(Vec::new()),
            metrics: Json::Obj(Vec::new()),
        }
    }

    /// The run name this manifest was opened with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the total wall-clock duration of the run.
    pub fn set_wall(&mut self, wall: Duration) -> &mut Self {
        self.wall = wall;
        self
    }

    /// Copies per-phase timings out of a [`Phases`] table.
    pub fn set_phases(&mut self, phases: &Phases) -> &mut Self {
        self.phases = phases
            .snapshot()
            .map(|(path, d, n)| (path.to_string(), d.as_secs_f64(), n))
            .collect();
        self
    }

    /// Records a run parameter (seed, access count, flags…).
    pub fn param(&mut self, key: &str, value: Json) -> &mut Self {
        self.params.push((key.to_string(), value));
        self
    }

    /// Records the full simulation configuration as a JSON object.
    pub fn set_config(&mut self, config: Json) -> &mut Self {
        self.config = config;
        self
    }

    /// Records the metrics snapshot.
    pub fn set_metrics(&mut self, metrics: &Metrics) -> &mut Self {
        self.metrics = metrics.to_json();
        self
    }

    /// Assembles the manifest JSON document.
    pub fn to_json(&self) -> Json {
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|(path, secs, entries)| {
                    Json::Obj(vec![
                        ("path".to_string(), Json::Str(path.clone())),
                        ("seconds".to_string(), Json::Float(*secs)),
                        ("entries".to_string(), Json::UInt(*entries)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::UInt(MANIFEST_SCHEMA_VERSION),
            ),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("git".to_string(), Json::Str(self.git.clone())),
            ("created_unix".to_string(), Json::UInt(self.created_unix)),
            (
                "wall_seconds".to_string(),
                Json::Float(self.wall.as_secs_f64()),
            ),
            ("phases".to_string(), phases),
            ("params".to_string(), Json::Obj(self.params.clone())),
            ("config".to_string(), self.config.clone()),
            ("metrics".to_string(), self.metrics.clone()),
        ])
    }

    /// Zeroes every volatile (wall-clock) field so two runs of the same
    /// work compare byte-identical: creation time, total wall seconds,
    /// and per-phase seconds. Phase paths and entry counts are kept —
    /// they are deterministic and meaningful. Used by the
    /// `MAPS_DETERMINISTIC` mode that the kill/resume equivalence tests
    /// rely on.
    pub fn strip_volatile(&mut self) -> &mut Self {
        self.created_unix = 0;
        self.wall = Duration::ZERO;
        for (_, secs, _) in &mut self.phases {
            *secs = 0.0;
        }
        self
    }

    /// A stable string identifying *what* this run computes — name,
    /// parameters, and configuration, excluding every volatile field.
    /// Checkpoints fingerprint this string so a resume with different
    /// parameters discards stale points instead of mixing them in.
    pub fn identity(&self) -> String {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("params".to_string(), Json::Obj(self.params.clone())),
            ("config".to_string(), self.config.clone()),
        ]);
        doc.to_pretty()
    }

    /// Writes the manifest to `path` atomically (temp file + rename),
    /// creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        crate::atomic::write_atomic(path, self.to_json().to_pretty().as_bytes())
    }
}

/// Checks that a parsed manifest carries every required top-level field
/// and a schema version this code understands. Returns the list of
/// problems (empty = valid).
pub fn validate_manifest(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    if !doc.is_obj() {
        return vec!["manifest root is not an object".to_string()];
    }
    for field in REQUIRED_FIELDS {
        if doc.get(field).is_none() {
            problems.push(format!("missing required field '{field}'"));
        }
    }
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == MANIFEST_SCHEMA_VERSION => {}
        Some(v) => problems.push(format!(
            "unsupported schema_version {v} (expected {MANIFEST_SCHEMA_VERSION})"
        )),
        None if doc.get("schema_version").is_some() => {
            problems.push("schema_version is not an unsigned integer".to_string())
        }
        None => {}
    }
    for obj_field in ["params", "config", "metrics"] {
        if let Some(v) = doc.get(obj_field) {
            if !v.is_obj() {
                problems.push(format!("'{obj_field}' is not an object"));
            }
        }
    }
    if let Some(v) = doc.get("phases") {
        if !matches!(v, Json::Arr(_)) {
            problems.push("'phases' is not an array".to_string());
        }
    }
    problems
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable (e.g. a source tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample() -> Manifest {
        let mut metrics = Metrics::new();
        metrics.counter_add("llc.hits", 7);
        metrics.hist_record("walk.depth", 3);

        let mut phases = Phases::new();
        {
            let _g = phases.enter("sweep");
        }

        let mut m = Manifest::new("fig2");
        m.set_wall(Duration::from_millis(1500))
            .set_phases(&phases)
            .param("seed", Json::UInt(0x4D41_5053))
            .param("accesses", Json::UInt(1000))
            .set_config(Json::Obj(vec![("mdc_kib".to_string(), Json::UInt(128))]))
            .set_metrics(&metrics);
        m
    }

    #[test]
    fn round_trips_and_validates() {
        let doc = Json::parse(&sample().to_json().to_pretty()).unwrap();
        assert_eq!(validate_manifest(&doc), Vec::<String>::new());
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(MANIFEST_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("name").unwrap().as_str(), Some("fig2"));
        assert_eq!(
            doc.get("params").unwrap().get("accesses").unwrap().as_u64(),
            Some(1000)
        );
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("llc.hits")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn validation_flags_missing_fields() {
        let doc = Json::Obj(vec![(
            "schema_version".to_string(),
            Json::UInt(MANIFEST_SCHEMA_VERSION),
        )]);
        let problems = validate_manifest(&doc);
        assert!(
            problems.iter().any(|p| p.contains("'name'")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("'metrics'")),
            "{problems:?}"
        );
    }

    #[test]
    fn validation_flags_wrong_schema_version() {
        let mut m = sample().to_json();
        if let Json::Obj(pairs) = &mut m {
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::UInt(99);
                }
            }
        }
        let problems = validate_manifest(&m);
        assert!(
            problems.iter().any(|p| p.contains("unsupported")),
            "{problems:?}"
        );
    }

    #[test]
    fn validation_rejects_non_object_root() {
        assert!(!validate_manifest(&Json::Arr(vec![])).is_empty());
    }

    #[test]
    fn write_to_creates_directories() {
        let dir =
            std::env::temp_dir().join(format!("maps-obs-manifest-test-{}", std::process::id()));
        let path = dir.join("nested").join("fig2.manifest.json");
        sample().write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert!(validate_manifest(&doc).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
