//! Scoped wall-clock phase timers with nesting.
//!
//! A [`PhaseGuard`] measures from creation to drop and records the
//! elapsed time under a `/`-joined path of the phases active at creation
//! (`"sweep"`, `"sweep/replay"`, …). Re-entering a path accumulates, so
//! per-iteration scopes inside a loop sum naturally.

use std::time::{Duration, Instant};

/// Accumulated wall-clock time per phase path.
#[derive(Debug, Default)]
pub struct Phases {
    /// (path, accumulated, entry count), ordered by first entry.
    acc: Vec<(String, Duration, u64)>,
    stack: Vec<String>,
}

impl Phases {
    /// Creates an empty phase table.
    pub fn new() -> Self {
        Phases::default()
    }

    /// Enters a phase; time accrues to it until the guard drops.
    /// Phases nest: a guard created while another is live records under
    /// the joined path `outer/inner`.
    pub fn enter<'p>(&'p mut self, name: &str) -> PhaseGuard<'p> {
        let path = match self.stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        self.stack.push(path);
        PhaseGuard {
            phases: self,
            start: Instant::now(),
        }
    }

    fn record(&mut self, path: String, elapsed: Duration) {
        match self.acc.iter_mut().find(|(p, _, _)| *p == path) {
            Some((_, total, n)) => {
                *total += elapsed;
                *n += 1;
            }
            None => self.acc.push((path, elapsed, 1)),
        }
    }

    /// Adds an externally measured duration to a phase path (one entry).
    /// Closure-style timing helpers use this when a borrowing guard
    /// cannot span the timed region.
    pub fn add(&mut self, path: &str, elapsed: Duration) {
        self.record(path.to_string(), elapsed);
    }

    /// Accumulated time for a phase path, if it was ever entered.
    pub fn elapsed(&self, path: &str) -> Option<Duration> {
        self.acc
            .iter()
            .find(|(p, _, _)| p == path)
            .map(|(_, d, _)| *d)
    }

    /// All recorded phases as `(path, total, entries)`, in first-entry order.
    pub fn snapshot(&self) -> impl Iterator<Item = (&str, Duration, u64)> {
        self.acc.iter().map(|(p, d, n)| (p.as_str(), *d, *n))
    }

    /// Whether any phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }
}

/// Records elapsed time into its [`Phases`] when dropped.
#[must_use = "a phase guard measures until it is dropped"]
pub struct PhaseGuard<'p> {
    phases: &'p mut Phases,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        if let Some(path) = self.phases.stack.pop() {
            self.phases.record(path, elapsed);
        }
    }
}

impl PhaseGuard<'_> {
    /// Enters a nested phase under this one.
    pub fn enter(&mut self, name: &str) -> PhaseGuard<'_> {
        self.phases.enter(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let mut p = Phases::new();
        {
            let _g = p.enter("build");
        }
        assert!(p.elapsed("build").is_some());
        assert_eq!(p.elapsed("missing"), None);
    }

    #[test]
    fn nesting_joins_paths() {
        let mut p = Phases::new();
        {
            let mut outer = p.enter("sweep");
            {
                let _inner = outer.enter("replay");
            }
            {
                let _inner = outer.enter("report");
            }
        }
        let paths: Vec<_> = p.snapshot().map(|(path, _, _)| path.to_string()).collect();
        assert_eq!(paths, vec!["sweep/replay", "sweep/report", "sweep"]);
    }

    #[test]
    fn reentry_accumulates() {
        let mut p = Phases::new();
        for _ in 0..3 {
            let _g = p.enter("iter");
        }
        let (_, _, n) = p.snapshot().next().unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn outer_includes_inner_time() {
        let mut p = Phases::new();
        {
            let mut outer = p.enter("outer");
            let _inner = outer.enter("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let outer = p.elapsed("outer").unwrap();
        let inner = p.elapsed("outer/inner").unwrap();
        assert!(outer >= inner);
    }
}
