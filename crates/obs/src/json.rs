//! A dependency-free JSON value: exact-integer writer plus a strict
//! parser, enough for run manifests and their schema tests.
//!
//! Objects preserve insertion order (they are `Vec<(String, Json)>`), so a
//! manifest reads in the order it was assembled and serialization is
//! deterministic. Numbers distinguish unsigned integers (written exactly —
//! counters can exceed 2⁵³, where `f64` would round) from floats.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written without rounding.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip formatting; force a
                    // fractional part so the value re-parses as a float.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value plus optional whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => s.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Decodes the code units after a `\u` escape into a character,
    /// pairing UTF-16 surrogates: a high surrogate must be followed by a
    /// `\uDC00`–`\uDFFF` escape, and the two combine into one astral-plane
    /// character. Lone or reversed surrogates are typed parse errors, not
    /// replacement characters — externally-authored documents containing
    /// `"😀"` must round-trip as 😀, not corrupt to two U+FFFD.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let code = self.hex4()?;
        match code {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') {
                    return Err(self.err("unpaired high surrogate"));
                }
                self.pos += 1;
                if self.peek() != Some(b'u') {
                    return Err(self.err("unpaired high surrogate"));
                }
                self.pos += 1;
                let low = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&low) {
                    return Err(self.err("unpaired high surrogate"));
                }
                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))
            }
            0xDC00..=0xDFFF => Err(self.err("lone low surrogate")),
            _ => char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape")),
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonParseError {
                at: start,
                message: "invalid number".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(j: &Json) -> Json {
        Json::parse(&j.to_pretty()).expect("own output must parse")
    }

    #[test]
    fn scalars_round_trip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-42),
            Json::Float(0.1),
            Json::Float(-1.5e300),
            Json::Str("hello".into()),
        ] {
            assert_eq!(round_trip(&j), j);
        }
    }

    #[test]
    fn huge_counters_survive_exactly() {
        let v = (1u64 << 60) + 12345; // beyond f64's 2^53 integer range
        assert_eq!(round_trip(&Json::UInt(v)), Json::UInt(v));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t control \u{1} unicode ✓";
        assert_eq!(round_trip(&Json::Str(s.into())), Json::Str(s.into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            (
                "b".into(),
                Json::Obj(vec![("empty".into(), Json::Obj(vec![]))]),
            ),
            ("c".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(round_trip(&j), j);
    }

    #[test]
    fn object_order_is_preserved() {
        let j = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match &j {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_pretty().trim(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_pretty().trim(), "null");
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{\"a\": }",
            "\"bad \\q escape\"",
            "\"\\u12",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_characters() {
        // 😀 is U+1F600 = \uD83D\uDE00 in UTF-16.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // Mixed case hex and surrounding text.
        assert_eq!(
            Json::parse("\"a\\uD83D\\uDE00b\"").unwrap(),
            Json::Str("a😀b".into())
        );
        // Boundary pairs: U+10000 and U+10FFFF.
        assert_eq!(
            Json::parse("\"\\ud800\\udc00\"").unwrap(),
            Json::Str("\u{10000}".into())
        );
        assert_eq!(
            Json::parse("\"\\udbff\\udfff\"").unwrap(),
            Json::Str("\u{10FFFF}".into())
        );
    }

    #[test]
    fn lone_surrogates_are_typed_errors() {
        for bad in [
            "\"\\ud83d\"",        // high surrogate, string ends
            "\"\\ud83d then\"",   // high surrogate, plain text follows
            "\"\\ud83d\\n\"",     // high surrogate, non-\u escape follows
            "\"\\ud83d\\ud83d\"", // two high surrogates
            "\"\\ude00\"",        // low surrogate first
            "\"\\ud83d\\u0041\"", // high surrogate + non-surrogate escape
            "\"\\ud83d\\ude0",    // truncated low half
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(
                err.message.contains("surrogate") || err.message.contains("\\u escape"),
                "{bad:?} produced unexpected error {err}"
            );
        }
    }

    #[test]
    fn astral_strings_round_trip_through_writer_and_parser() {
        // The writer emits astral characters as raw UTF-8; the parser must
        // accept both that form and the escaped surrogate-pair form.
        let s = "emoji 😀 music 𝄞 flag 🏳️ plain ascii";
        assert_eq!(round_trip(&Json::Str(s.into())), Json::Str(s.into()));
    }

    #[test]
    fn unicode_escape_round_trip_fuzz() {
        // Deterministic fuzz: random code points (including astral ones)
        // built into strings, written, re-parsed, and compared — plus the
        // same strings spelled entirely with explicit \u escapes. The
        // crate is dependency-free, so the generator is a local SplitMix64.
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..200 {
            let len = (next() % 12) as usize;
            let s: String = (0..len)
                .map(|_| loop {
                    if let Some(c) = char::from_u32((next() % 0x110000) as u32) {
                        return c;
                    }
                })
                .collect();
            assert_eq!(round_trip(&Json::Str(s.clone())), Json::Str(s.clone()));
            // Every character spelled as UTF-16 code-unit escapes, which
            // exercises the surrogate-pair path for astral characters.
            let mut escaped = String::from('"');
            for c in s.chars() {
                let mut units = [0u16; 2];
                for u in c.encode_utf16(&mut units) {
                    escaped.push_str(&format!("\\u{u:04x}"));
                }
            }
            escaped.push('"');
            assert_eq!(Json::parse(&escaped).unwrap(), Json::Str(s));
        }
    }

    #[test]
    fn getters() {
        let j = Json::parse(r#"{"n": 3, "s": "x", "f": 1.5}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("missing"), None);
        assert!(j.is_obj());
    }
}
