//! Atomic result-file writes: temp file in the target directory + rename.
//!
//! Every result artifact the workspace emits — TSV tables, run manifests,
//! sweep checkpoints, serialized captures — goes through [`write_atomic`].
//! A reader (or a re-invocation after a crash) therefore sees either the
//! previous complete file or the new complete file, never a torn prefix:
//! the bytes are staged in a sibling temp file, flushed, and published
//! with a single `rename`, which POSIX guarantees to be atomic within a
//! filesystem.
//!
//! The `maps-lint` IO-001 rule enforces the funnel: raw `File::create` /
//! `fs::write` calls under the `maps-bench`/`maps-obs` output paths fail
//! the gate, so a torn-write regression cannot slip back in.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files of concurrent writers within one process
/// (cross-process collisions are already separated by the pid).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Sibling temp path for `path`: same directory (rename must not cross a
/// filesystem), name extended with a pid+sequence suffix.
fn tmp_path(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file = path.file_name().map(|f| f.to_string_lossy().into_owned());
    let tmp = format!(
        "{}.tmp.{}.{}",
        file.unwrap_or_else(|| "out".to_string()),
        std::process::id(),
        seq
    );
    path.with_file_name(tmp)
}

/// Writes `bytes` to `path` atomically: parent directories are created,
/// the bytes are staged in a sibling temp file, synced, and renamed over
/// `path`. On any failure the temp file is removed (best effort) and the
/// destination keeps its previous contents.
///
/// # Errors
///
/// Any I/O failure from directory creation, staging, sync, or the final
/// rename. The destination is never left truncated or half-written.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    let staged = stage(&tmp, bytes);
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Creates the temp file, writes every byte, and syncs it to disk.
fn stage(tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = std::fs::File::create(tmp)?;
    file.write_all(bytes)?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("maps-obs-atomic-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_bytes_and_creates_parents() {
        let dir = scratch("parents");
        let path = dir.join("a").join("b").join("out.tsv");
        write_atomic(&path, b"row\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"row\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrites_previous_contents_completely() {
        let dir = scratch("overwrite");
        let path = dir.join("out.tsv");
        write_atomic(&path, b"old contents, quite long\n").unwrap();
        write_atomic(&path, b"new\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch("tmpfiles");
        let path = dir.join("out.json");
        write_atomic(&path, b"{}").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_is_a_typed_error_and_preserves_destination() {
        let dir = scratch("fail");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"file").unwrap();
        // Parent "directory" is a regular file: creation must fail with a
        // typed io::Error, not a panic, and must not disturb the blocker.
        let path = blocker.join("out.tsv");
        assert!(write_atomic(&path, b"x").is_err());
        assert_eq!(std::fs::read(&blocker).unwrap(), b"file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
