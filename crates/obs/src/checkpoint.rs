//! Schema-versioned sweep checkpoints.
//!
//! A long sweep records every finished point here so a killed run can be
//! re-invoked and resume where it stopped instead of recomputing the whole
//! figure. The format is deliberately boring: one JSON object mapping a
//! stable point key (chosen by the sweep harness) to that point's result,
//! plus a schema version and a *fingerprint* of the run identity (binary
//! name, parameters, configuration). A checkpoint whose fingerprint does
//! not match the resuming run is stale — different seed, access count, or
//! config — and must be discarded, never partially reused.
//!
//! Saves go through [`crate::atomic::write_atomic`], so a crash mid-save
//! leaves the previous complete checkpoint, and point keys are kept
//! sorted, so saving is deterministic byte-for-byte.

use std::io;
use std::path::Path;

use crate::atomic::write_atomic;
use crate::json::{Json, JsonParseError};

/// Current checkpoint schema version. Bump on any breaking field change.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Value of the `kind` field marking a file as a sweep checkpoint.
const CHECKPOINT_KIND: &str = "maps-checkpoint";

/// Why a checkpoint file could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Reading the file failed (other than it not existing).
    Io(io::Error),
    /// The file is not valid JSON.
    Parse(JsonParseError),
    /// The JSON is not a checkpoint this code understands.
    Schema(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "reading checkpoint: {e}"),
            CheckpointError::Parse(e) => write!(f, "parsing checkpoint: {e}"),
            CheckpointError::Schema(what) => write!(f, "invalid checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse(e) => Some(e),
            CheckpointError::Schema(_) => None,
        }
    }
}

/// Finished sweep points of one run, keyed by stable point identifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    name: String,
    fingerprint: u64,
    /// `(key, result)` pairs, kept sorted by key.
    points: Vec<(String, Json)>,
}

impl Checkpoint {
    /// Starts an empty checkpoint for the named run with the given
    /// identity fingerprint (see [`fingerprint64`]).
    pub fn new(name: &str, fingerprint: u64) -> Self {
        Checkpoint {
            name: name.to_string(),
            fingerprint,
            points: Vec::new(),
        }
    }

    /// The run name the checkpoint belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The run-identity fingerprint recorded at creation.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of finished points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has finished yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored result for a point key, if that point finished.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.points
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.points[i].1)
    }

    /// Records (or replaces) a finished point's result.
    pub fn insert(&mut self, key: &str, value: Json) {
        match self.points.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.points[i].1 = value,
            Err(i) => self.points.insert(i, (key.to_string(), value)),
        }
    }

    /// Assembles the checkpoint document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::UInt(CHECKPOINT_SCHEMA_VERSION),
            ),
            ("kind".to_string(), Json::Str(CHECKPOINT_KIND.to_string())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("fingerprint".to_string(), Json::UInt(self.fingerprint)),
            ("points".to_string(), Json::Obj(self.points.clone())),
        ])
    }

    /// Reconstructs a checkpoint from a parsed document.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Schema`] when any required field is missing,
    /// mistyped, or carries an unsupported schema version.
    pub fn from_json(doc: &Json) -> Result<Self, CheckpointError> {
        let schema = |what: &str| CheckpointError::Schema(what.to_string());
        if !doc.is_obj() {
            return Err(schema("root is not an object"));
        }
        match doc.get("schema_version").and_then(Json::as_u64) {
            Some(v) if v == CHECKPOINT_SCHEMA_VERSION => {}
            Some(v) => {
                return Err(CheckpointError::Schema(format!(
                    "unsupported schema_version {v} (expected {CHECKPOINT_SCHEMA_VERSION})"
                )))
            }
            None => return Err(schema("missing or non-integer schema_version")),
        }
        if doc.get("kind").and_then(Json::as_str) != Some(CHECKPOINT_KIND) {
            return Err(schema("missing or wrong kind marker"));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing or non-string name"))?
            .to_string();
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_u64)
            .ok_or_else(|| schema("missing or non-integer fingerprint"))?;
        let mut points = match doc.get("points") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => return Err(schema("missing or non-object points")),
        };
        points.sort_by(|(a, _), (b, _)| a.cmp(b));
        if points.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(schema("duplicate point key"));
        }
        Ok(Checkpoint {
            name,
            fingerprint,
            points,
        })
    }

    /// Writes the checkpoint atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure; the previous checkpoint file, if any,
    /// is preserved intact in that case.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.to_json().to_pretty().as_bytes())
    }

    /// Loads a checkpoint if one exists: `Ok(None)` when the file is
    /// absent (fresh run), `Ok(Some(_))` on success.
    ///
    /// # Errors
    ///
    /// I/O failures other than absence, malformed JSON, and schema
    /// mismatches — the caller decides whether to discard and start fresh.
    pub fn load(path: &Path) -> Result<Option<Self>, CheckpointError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        let doc = Json::parse(&text).map_err(CheckpointError::Parse)?;
        Ok(Some(Self::from_json(&doc)?))
    }
}

/// 64-bit fingerprint of a run-identity string (SplitMix64 finalizer
/// folded over the bytes). Stable across processes and platforms; used to
/// tie a checkpoint to the exact run parameters that produced it.
pub fn fingerprint64(text: &str) -> u64 {
    let mut acc = 0x4D41_5053_C5EC_4B01u64; // "MAPS" + odd tail
    for &b in text.as_bytes() {
        acc = mix64(acc ^ u64::from(b));
    }
    mix64(acc ^ text.len() as u64)
}

/// SplitMix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new("fig2", fingerprint64("fig2|seed=1"));
        c.insert("sweep/llc=1m,mdc=64k", Json::UInt(42));
        c.insert("baselines/gups", Json::Obj(vec![]));
        c
    }

    #[test]
    fn round_trips_through_json() {
        let c = sample();
        let doc = Json::parse(&c.to_json().to_pretty()).unwrap();
        assert_eq!(Checkpoint::from_json(&doc).unwrap(), c);
    }

    #[test]
    fn keys_stay_sorted_and_lookups_work() {
        let c = sample();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("sweep/llc=1m,mdc=64k"), Some(&Json::UInt(42)));
        assert_eq!(c.get("missing"), None);
        let keys: Vec<_> = match c.to_json().get("points") {
            Some(Json::Obj(pairs)) => pairs.iter().map(|(k, _)| k.clone()).collect(),
            _ => panic!("points must be an object"),
        };
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut c = sample();
        c.insert("baselines/gups", Json::UInt(7));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("baselines/gups"), Some(&Json::UInt(7)));
    }

    #[test]
    fn save_load_round_trips_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("maps-obs-ckpt-{}", std::process::id()));
        let path = dir.join("fig2.ckpt");
        assert!(Checkpoint::load(&path).unwrap().is_none());
        let c = sample();
        c.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(c));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serialization_is_deterministic() {
        // Same logical contents, different insertion order.
        let mut a = Checkpoint::new("x", 9);
        a.insert("b", Json::UInt(2));
        a.insert("a", Json::UInt(1));
        let mut b = Checkpoint::new("x", 9);
        b.insert("a", Json::UInt(1));
        b.insert("b", Json::UInt(2));
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        for (doc, expect) in [
            (Json::Arr(vec![]), "not an object"),
            (Json::Obj(vec![]), "schema_version"),
            (
                Json::Obj(vec![("schema_version".into(), Json::UInt(99))]),
                "unsupported",
            ),
            (
                Json::Obj(vec![
                    (
                        "schema_version".into(),
                        Json::UInt(CHECKPOINT_SCHEMA_VERSION),
                    ),
                    ("kind".into(), Json::Str("something-else".into())),
                ]),
                "kind",
            ),
        ] {
            match Checkpoint::from_json(&doc) {
                Err(CheckpointError::Schema(msg)) => {
                    assert!(msg.contains(expect), "{msg:?} vs {expect:?}")
                }
                other => panic!("expected schema error, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_point_keys_are_rejected() {
        let doc = Json::Obj(vec![
            (
                "schema_version".into(),
                Json::UInt(CHECKPOINT_SCHEMA_VERSION),
            ),
            ("kind".into(), Json::Str(CHECKPOINT_KIND.into())),
            ("name".into(), Json::Str("x".into())),
            ("fingerprint".into(), Json::UInt(1)),
            (
                "points".into(),
                Json::Obj(vec![
                    ("k".into(), Json::UInt(1)),
                    ("k".into(), Json::UInt(2)),
                ]),
            ),
        ]);
        assert!(matches!(
            Checkpoint::from_json(&doc),
            Err(CheckpointError::Schema(_))
        ));
    }

    #[test]
    fn fingerprints_separate_runs() {
        assert_ne!(fingerprint64("fig2|seed=1"), fingerprint64("fig2|seed=2"));
        assert_eq!(fingerprint64("same"), fingerprint64("same"));
    }
}
