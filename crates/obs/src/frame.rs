//! Length-prefixed, schema-versioned message frames for the farm's
//! daemon/worker/client wire protocol.
//!
//! A frame is `MAGIC(4) ‖ length(4, LE) ‖ payload(length)` where the
//! payload is a UTF-8 [`Json`] document. The magic bytes carry the frame
//! format version (`b"MFR\x01"`), so a reader connected to a future
//! daemon fails with a typed [`FrameError::BadMagic`] instead of
//! misparsing; the *semantic* schema version rides inside the payload
//! (`maps-farm`'s `proto` field) and is checked there.
//!
//! Decoding never panics and never blocks past the underlying reader:
//! every malformed input — wrong magic, an oversized or truncated length,
//! a payload cut mid-byte, invalid UTF-8, malformed JSON — surfaces as a
//! typed [`FrameError`], mirroring the hardened `read_varint` discipline
//! of the trace codec. A *clean* EOF at a frame boundary is not an error:
//! [`read_frame`] returns `Ok(None)`, so stream consumers can tell an
//! orderly shutdown from a torn one.

use std::io::{Read, Write};

use crate::json::{Json, JsonParseError};

/// Frame format marker + version byte.
pub const FRAME_MAGIC: [u8; 4] = *b"MFR\x01";

/// Upper bound on a frame payload. Large enough for any campaign
/// document (plans with every figure stay well under a megabyte), small
/// enough that a corrupted length field cannot make a reader attempt a
/// multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Why a frame could not be read. Every variant is a typed, recoverable
/// condition; decoding never panics.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream does not start with [`FRAME_MAGIC`] (wrong protocol,
    /// garbage injection, or a reader desynchronized mid-stream).
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared length.
        declared: u32,
    },
    /// The stream ended inside a frame (torn write or killed peer).
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The payload is not valid UTF-8.
    Utf8,
    /// The payload is not a valid JSON document.
    Json(JsonParseError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic {found:02x?} (expected {FRAME_MAGIC:02x?})"
                )
            }
            FrameError::Oversized { declared } => write!(
                f,
                "frame declares {declared} bytes (limit {MAX_FRAME_BYTES})"
            ),
            FrameError::Truncated { missing } => {
                write!(f, "stream ended inside a frame ({missing} bytes missing)")
            }
            FrameError::Utf8 => write!(f, "frame payload is not valid UTF-8"),
            FrameError::Json(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame and flushes the writer, so a frame is either fully
/// buffered in the kernel or the write errored — the sender never leaves
/// a half-frame in userspace buffers.
///
/// # Errors
///
/// Any I/O failure from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &Json) -> std::io::Result<()> {
    let body = payload.to_pretty();
    let len = u32::try_from(body.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload too large",
        ));
    }
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads either a full buffer or, at a clean boundary, nothing at all.
/// Returns `Ok(false)` when the stream was already at EOF; EOF *inside*
/// the buffer is [`FrameError::Truncated`].
fn read_full_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: buf.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads exactly `buf.len()` bytes; EOF anywhere is a truncation.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: buf.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame. `Ok(None)` means the stream ended cleanly *between*
/// frames; every torn, corrupt, or oversized input is a typed
/// [`FrameError`].
///
/// # Errors
///
/// See [`FrameError`] — one variant per failure mode, never a panic.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, FrameError> {
    let mut magic = [0u8; 4];
    if !read_full_or_eof(r, &mut magic)? {
        return Ok(None);
    }
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let mut len_bytes = [0u8; 4];
    read_full(r, &mut len_bytes)?;
    let declared = u32::from_le_bytes(len_bytes);
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { declared });
    }
    let mut body = vec![0u8; declared as usize];
    read_full(r, &mut body)?;
    let text = std::str::from_utf8(&body).map_err(|_| FrameError::Utf8)?;
    Json::parse(text).map(Some).map_err(FrameError::Json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &Json) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).expect("write frame");
        buf
    }

    fn sample() -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("event".into())),
            ("seq".into(), Json::UInt(u64::MAX)),
            (
                "nested".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true)]),
            ),
        ])
    }

    #[test]
    fn frames_round_trip() {
        let bytes = frame_bytes(&sample());
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor).expect("read").expect("one frame");
        assert_eq!(decoded, sample());
        assert!(read_frame(&mut cursor).expect("clean eof").is_none());
    }

    #[test]
    fn back_to_back_frames_stream() {
        let mut bytes = frame_bytes(&Json::UInt(1));
        bytes.extend(frame_bytes(&Json::UInt(2)));
        let mut cursor = &bytes[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Json::UInt(1)));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Json::UInt(2)));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = frame_bytes(&sample());
        // Cut after the first byte through one-short-of-complete: all
        // torn, none clean, none panic.
        for cut in 1..bytes.len() {
            let mut cursor = &bytes[..cut];
            match read_frame(&mut cursor) {
                Err(FrameError::Truncated { missing }) => assert!(missing > 0),
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected_with_the_found_bytes() {
        let mut bytes = frame_bytes(&sample());
        bytes[0] = b'X';
        let err = read_frame(&mut &bytes[..]).expect_err("bad magic");
        match err {
            FrameError::BadMagic { found } => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend(FRAME_MAGIC);
        bytes.extend(u32::MAX.to_le_bytes());
        bytes.extend([0u8; 8]);
        let err = read_frame(&mut &bytes[..]).expect_err("oversized");
        assert!(matches!(
            err,
            FrameError::Oversized { declared } if declared == u32::MAX
        ));
    }

    #[test]
    fn garbage_payloads_are_typed_errors() {
        // Valid header, payload that is not UTF-8.
        let mut bytes = Vec::new();
        bytes.extend(FRAME_MAGIC);
        bytes.extend(4u32.to_le_bytes());
        bytes.extend([0xFF, 0xFE, 0x80, 0x81]);
        assert!(matches!(read_frame(&mut &bytes[..]), Err(FrameError::Utf8)));
        // Valid header, payload that is not JSON.
        let mut bytes = Vec::new();
        bytes.extend(FRAME_MAGIC);
        bytes.extend(3u32.to_le_bytes());
        bytes.extend(b"{x}");
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::Json(_))
        ));
    }

    #[test]
    fn trailing_garbage_after_a_frame_is_the_next_reads_problem() {
        let mut bytes = frame_bytes(&Json::UInt(7));
        bytes.extend(b"junk");
        let mut cursor = &bytes[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Json::UInt(7)));
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::BadMagic { .. })
        ));
    }
}
