//! A bounded ring buffer for metadata-stream tracing.
//!
//! Holds the most recent `capacity` events, overwriting the oldest when
//! full and counting how many were displaced. The intended use is "keep
//! the tail of the metadata access stream around a point of interest"
//! (e.g. the deepest cascade seen) without unbounded memory growth.

/// Fixed-capacity ring that keeps the newest entries.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    /// Total pushes ever, including dropped ones.
    pushed: u64,
}

impl<T> EventRing<T> {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends an event, displacing the oldest if the ring is full.
    pub fn push(&mut self, event: T) {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Events displaced to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Iterates the retained events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Clears the ring (the lifetime push count is retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps() {
        let mut r = EventRing::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);

        r.push(3);
        r.push(4);
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total_pushed(), 5);
    }

    #[test]
    fn wraps_many_times_in_order() {
        let mut r = EventRing::new(4);
        for i in 0..103u32 {
            r.push(i);
        }
        assert_eq!(
            r.iter().copied().collect::<Vec<_>>(),
            vec![99, 100, 101, 102]
        );
        assert_eq!(r.dropped(), 99);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn clear_keeps_lifetime_counts() {
        let mut r = EventRing::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 3);
        r.push(4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![4]);
    }
}
