//! Observability for the MAPS reproduction: a metrics registry, scoped
//! phase timers, a bounded event ring buffer, and schema-versioned JSON
//! run manifests.
//!
//! MAPS is a characterization study — its value is in *measured* metadata
//! access patterns — so the instrumentation itself deserves the same care
//! as the simulator. This crate provides the pieces the rest of the stack
//! composes:
//!
//! * [`Metrics`] — named counters, gauges, and fixed-log₂-bucket
//!   [`Histogram`]s with deterministic (sorted) iteration order and a
//!   `merge` operation, so parallel sweep workers can aggregate.
//! * [`MetricSink`] — the push-side trait with an inert [`NullSink`].
//!   Instrumented code is generic over the sink and monomorphizes; with
//!   `NullSink` every recording call compiles to nothing, mirroring the
//!   `MetaObserver`/`NullObserver` pattern `maps-sim` already uses on its
//!   hot path. That is the disabled-path guarantee: not "cheap", *absent*.
//! * [`Phases`] — scoped wall-clock phase timers with nesting
//!   (`capture/record`, `sweep/replay`, …).
//! * [`EventRing`] — a bounded ring buffer for metadata-stream tracing
//!   that overwrites the oldest entries and counts what it dropped.
//! * [`Json`] / [`Manifest`] — a dependency-free JSON value type (writer
//!   *and* parser) and the schema-versioned run manifest every
//!   `maps-bench` binary emits.
//! * [`write_atomic`] / [`Checkpoint`] — crash-safe result publication
//!   (temp file + rename) and the schema-versioned sweep checkpoint that
//!   lets an interrupted figure run resume bit-identically.
//!
//! Nothing in this crate feeds back into simulation state, so instrumented
//! runs are bit-identical to bare runs by construction.
//!
//! # Examples
//!
//! ```
//! use maps_obs::{Metrics, MetricSink};
//!
//! fn hot_loop<S: MetricSink>(sink: &mut S) {
//!     for i in 0..100u64 {
//!         sink.counter_add("loop.iterations", 1);
//!         sink.hist_record("loop.value", i);
//!     }
//! }
//!
//! let mut m = Metrics::new();
//! hot_loop(&mut m); // recording sink
//! assert_eq!(m.counter_value("loop.iterations"), 100);
//! hot_loop(&mut maps_obs::NullSink); // compiles to an empty loop
//! ```

pub mod atomic;
pub mod checkpoint;
pub mod frame;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod timer;

pub use atomic::write_atomic;
pub use checkpoint::{fingerprint64, Checkpoint, CheckpointError, CHECKPOINT_SCHEMA_VERSION};
pub use frame::{read_frame, write_frame, FrameError, FRAME_MAGIC, MAX_FRAME_BYTES};
pub use json::{Json, JsonParseError};
pub use manifest::{git_describe, validate_manifest, Manifest, MANIFEST_SCHEMA_VERSION};
pub use metrics::{Histogram, Metrics};
pub use ring::EventRing;
pub use sink::{MetricSink, NullSink};
pub use timer::{PhaseGuard, Phases};
