//! The push-side recording trait and its inert implementation.
//!
//! Instrumented code takes `&mut S where S: MetricSink` and the compiler
//! monomorphizes one copy per sink. The [`NullSink`] copy has every
//! recording call inlined to an empty body, so the disabled path carries
//! no branches, no atomics, and no string hashing — the same idiom as
//! `maps-sim`'s `MetaObserver`/`NullObserver` pair.

use crate::metrics::{Histogram, Metrics};

/// Receives metric recordings from instrumented code.
///
/// Names are `.`-separated lowercase paths (`"llc.counter.hits"`,
/// `"engine.walk_depth"`). Implementations must not feed information back
/// to the caller: a sink observes, it never steers, which is what keeps
/// instrumented simulation runs bit-identical to bare ones.
pub trait MetricSink {
    /// Adds `delta` to the named counter.
    fn counter_add(&mut self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (merge keeps the max).
    fn gauge_set(&mut self, name: &str, value: f64);

    /// Records `value` into the named log₂ histogram.
    fn hist_record(&mut self, name: &str, value: u64);

    /// Merges a pre-accumulated histogram into the named slot. The default
    /// replays each bucket's lower bound, which preserves bucket counts but
    /// approximates sum/min/max; [`Metrics`] overrides with an exact merge.
    fn hist_merge(&mut self, name: &str, hist: &Histogram) {
        for (i, count) in hist.nonzero_buckets() {
            for _ in 0..count {
                self.hist_record(name, Histogram::bucket_lo(i));
            }
        }
    }

    /// Whether recordings are retained. `false` lets callers skip
    /// expensive derivations feeding a sink that discards them; the
    /// per-call fast path needs no such guard.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; the metrics-disabled path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    #[inline(always)]
    fn counter_add(&mut self, _name: &str, _delta: u64) {}

    #[inline(always)]
    fn gauge_set(&mut self, _name: &str, _value: f64) {}

    #[inline(always)]
    fn hist_record(&mut self, _name: &str, _value: u64) {}

    #[inline(always)]
    fn hist_merge(&mut self, _name: &str, _hist: &Histogram) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl MetricSink for Metrics {
    #[inline]
    fn counter_add(&mut self, name: &str, delta: u64) {
        Metrics::counter_add(self, name, delta);
    }

    #[inline]
    fn gauge_set(&mut self, name: &str, value: f64) {
        Metrics::gauge_set(self, name, value);
    }

    #[inline]
    fn hist_record(&mut self, name: &str, value: u64) {
        Metrics::hist_record(self, name, value);
    }

    #[inline]
    fn hist_merge(&mut self, name: &str, hist: &Histogram) {
        Metrics::hist_merge(self, name, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_into<S: MetricSink>(sink: &mut S) {
        sink.counter_add("c", 2);
        sink.gauge_set("g", 1.5);
        sink.hist_record("h", 8);
    }

    #[test]
    fn metrics_sink_records() {
        let mut m = Metrics::new();
        record_into(&mut m);
        assert!(m.enabled());
        assert_eq!(m.counter_value("c"), 2);
        assert_eq!(m.gauge_value("g"), Some(1.5));
        assert_eq!(m.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn null_sink_discards() {
        let mut n = NullSink;
        record_into(&mut n);
        assert!(!n.enabled());
    }

    #[test]
    fn metrics_hist_merge_is_exact() {
        let mut src = Histogram::new();
        src.record(5);
        src.record(1000);
        let mut m = Metrics::new();
        MetricSink::hist_merge(&mut m, "h", &src);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1005);
    }
}
