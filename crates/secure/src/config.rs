//! Secure-memory configuration.

use maps_trace::{BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};

/// Counter organization (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// PoisonIvy-style split counter: one 8 B per-page counter and 64
    /// seven-bit per-block counters per 64 B counter block. One counter
    /// block covers one 4 KB page.
    SplitPi,
    /// Intel SGX-style monolithic counter: eight 8 B per-block counters per
    /// 64 B counter block. One counter block covers 512 B of data.
    SgxMonolithic,
}

impl CounterMode {
    /// Number of data blocks covered by one 64 B counter block.
    pub const fn data_blocks_per_counter_block(self) -> u64 {
        match self {
            CounterMode::SplitPi => BLOCKS_PER_PAGE,
            CounterMode::SgxMonolithic => 8,
        }
    }

    /// Bytes of data covered by one 64 B counter block.
    pub const fn data_bytes_per_counter_block(self) -> u64 {
        self.data_blocks_per_counter_block() * BLOCK_BYTES
    }
}

/// Configuration of the protected memory and its metadata structures.
///
/// # Examples
///
/// ```
/// use maps_secure::SecureConfig;
/// let cfg = SecureConfig::poison_ivy(4 << 30); // 4 GB, Table I
/// assert_eq!(cfg.data_blocks(), (4u64 << 30) / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecureConfig {
    /// Bytes of protected data memory.
    pub memory_bytes: u64,
    /// Counter organization.
    pub mode: CounterMode,
    /// Integrity-tree arity (children per node); 8 for 8 × 8 B HMACs per
    /// 64 B node.
    pub tree_arity: u64,
}

impl SecureConfig {
    /// PoisonIvy-style configuration over `memory_bytes` of data.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is not a positive multiple of 4 KB.
    pub fn poison_ivy(memory_bytes: u64) -> Self {
        Self::new(memory_bytes, CounterMode::SplitPi)
    }

    /// SGX-style configuration over `memory_bytes` of data.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is not a positive multiple of 4 KB.
    pub fn sgx(memory_bytes: u64) -> Self {
        Self::new(memory_bytes, CounterMode::SgxMonolithic)
    }

    /// Creates a configuration with the default 8-ary tree.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is not a positive multiple of 4 KB.
    pub fn new(memory_bytes: u64, mode: CounterMode) -> Self {
        assert!(memory_bytes > 0, "protected memory must be non-empty");
        assert_eq!(
            memory_bytes % PAGE_BYTES,
            0,
            "protected memory ({memory_bytes} B) must be page-aligned"
        );
        Self {
            memory_bytes,
            mode,
            tree_arity: 8,
        }
    }

    /// Number of 64 B data blocks protected.
    pub const fn data_blocks(&self) -> u64 {
        self.memory_bytes / BLOCK_BYTES
    }

    /// Number of 4 KB data pages protected.
    pub const fn data_pages(&self) -> u64 {
        self.memory_bytes / PAGE_BYTES
    }

    /// Number of 64 B counter blocks required.
    pub const fn counter_blocks(&self) -> u64 {
        self.data_blocks()
            .div_ceil(self.mode.data_blocks_per_counter_block())
    }

    /// Number of 64 B hash blocks required (eight 8 B HMACs each).
    pub const fn hash_blocks(&self) -> u64 {
        self.data_blocks().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_counter_coverage_is_a_page() {
        assert_eq!(CounterMode::SplitPi.data_bytes_per_counter_block(), 4096);
    }

    #[test]
    fn sgx_counter_coverage_is_512b() {
        assert_eq!(
            CounterMode::SgxMonolithic.data_bytes_per_counter_block(),
            512
        );
    }

    #[test]
    fn block_counts_for_paper_memory() {
        let pi = SecureConfig::poison_ivy(4 << 30);
        // 4 GB: 64 Mi data blocks, 1 Mi counter blocks (one per page),
        // 8 Mi hash blocks.
        assert_eq!(pi.data_blocks(), 1 << 26);
        assert_eq!(pi.counter_blocks(), 1 << 20);
        assert_eq!(pi.hash_blocks(), 1 << 23);

        let sgx = SecureConfig::sgx(4 << 30);
        assert_eq!(sgx.counter_blocks(), 1 << 23);
    }

    #[test]
    fn pi_counter_space_matches_paper_claim() {
        // Section II-A: per-page + per-block counters reduce 4 GB's counter
        // storage from 512 MB down to 64 MB.
        let pi = SecureConfig::poison_ivy(4 << 30);
        assert_eq!(pi.counter_blocks() * 64, 64 << 20);
        let monolithic_8b_per_block = pi.data_blocks() * 8;
        assert_eq!(monolithic_8b_per_block, 512 << 20);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_memory_rejected() {
        SecureConfig::poison_ivy(4096 + 64);
    }
}
