//! Executable specification of the metadata layout equations.
//!
//! Every function here restates one Section III address-map equation with
//! plain integer division and remainder, recomputing region bases on every
//! call. Nothing is precomputed, shifted, or masked — the point is to be
//! obviously equal to the paper's equations so [`crate::Layout`]'s
//! precomputed/shift-based implementation can be diffed against it.
//!
//! The memory image is laid out block-granular as
//!
//! ```text
//! | data | counters | hashes | tree level 0 | tree level 1 | ... |
//! ```
//!
//! with the single-node top level (the root) held on chip and therefore
//! absent from memory.

use maps_trace::{BlockAddr, BlockKind, BLOCKS_PER_PAGE};

use crate::SecureConfig;

/// Number of protected data blocks.
pub fn data_blocks(cfg: &SecureConfig) -> u64 {
    cfg.data_blocks()
}

/// First counter block: counters start right after the data region.
pub fn counter_base(cfg: &SecureConfig) -> u64 {
    data_blocks(cfg)
}

/// Number of counter blocks: one per `data_blocks_per_counter_block` data
/// blocks, rounded up.
pub fn counter_blocks(cfg: &SecureConfig) -> u64 {
    data_blocks(cfg).div_ceil(cfg.mode.data_blocks_per_counter_block())
}

/// First hash block: hashes follow the counters.
pub fn hash_base(cfg: &SecureConfig) -> u64 {
    counter_base(cfg) + counter_blocks(cfg)
}

/// Number of hash blocks: eight 8 B HMACs per block, so one hash block per
/// eight data blocks, rounded up.
pub fn hash_blocks(cfg: &SecureConfig) -> u64 {
    data_blocks(cfg).div_ceil(8)
}

/// `(base, node count)` of every in-memory tree level, leaves first.
///
/// The tree is built bottom-up over the counter region: each level has
/// `ceil(span / arity)` nodes where `span` is the size of the level below
/// (the counters, for the leaves). The first level that would hold a
/// single node is the root; it stays on chip and is not included.
pub fn tree_levels(cfg: &SecureConfig) -> Vec<(u64, u64)> {
    let mut levels = Vec::new();
    let mut span = counter_blocks(cfg);
    let mut base = hash_base(cfg) + hash_blocks(cfg);
    loop {
        let nodes = span.div_ceil(cfg.tree_arity);
        if nodes <= 1 {
            break;
        }
        levels.push((base, nodes));
        base += nodes;
        span = nodes;
    }
    levels
}

/// Counter block protecting a data block: data block `d` is covered by
/// counter block `counter_base + d / per_ctr`.
pub fn counter_block_of(cfg: &SecureConfig, data: BlockAddr) -> BlockAddr {
    assert!(data.index() < data_blocks(cfg));
    BlockAddr::new(counter_base(cfg) + data.index() / cfg.mode.data_blocks_per_counter_block())
}

/// Hash block holding the HMAC of a data block: `hash_base + d / 8`.
pub fn hash_block_of(cfg: &SecureConfig, data: BlockAddr) -> BlockAddr {
    assert!(data.index() < data_blocks(cfg));
    BlockAddr::new(hash_base(cfg) + data.index() / 8)
}

/// Slot of a data block's HMAC within its hash block: `d % 8`.
pub fn hash_slot_of(_cfg: &SecureConfig, data: BlockAddr) -> u8 {
    (data.index() % 8) as u8
}

/// Offset of a counter block within the counter region.
fn counter_offset(cfg: &SecureConfig, counter: BlockAddr) -> u64 {
    let base = counter_base(cfg);
    assert!((base..base + counter_blocks(cfg)).contains(&counter.index()));
    counter.index() - base
}

/// `(level, offset within level)` of a tree node.
pub fn tree_position(cfg: &SecureConfig, node: BlockAddr) -> (usize, u64) {
    for (level, (base, size)) in tree_levels(cfg).into_iter().enumerate() {
        if (base..base + size).contains(&node.index()) {
            return (level, node.index() - base);
        }
    }
    panic!("{node} is not a tree node");
}

/// Leaf tree node protecting a counter block: leaf `off / arity` where
/// `off` is the counter's offset within the counter region.
pub fn tree_leaf_of(cfg: &SecureConfig, counter: BlockAddr) -> BlockAddr {
    let levels = tree_levels(cfg);
    assert!(!levels.is_empty(), "no in-memory tree levels");
    BlockAddr::new(levels[0].0 + counter_offset(cfg, counter) / cfg.tree_arity)
}

/// Parent of a tree node, or `None` when the parent is the on-chip root.
pub fn tree_parent(cfg: &SecureConfig, node: BlockAddr) -> Option<BlockAddr> {
    let levels = tree_levels(cfg);
    let (level, off) = tree_position(cfg, node);
    let parent = level + 1;
    if parent >= levels.len() {
        return None;
    }
    Some(BlockAddr::new(levels[parent].0 + off / cfg.tree_arity))
}

/// Full tree walk for a counter block, leaf upward, root excluded.
pub fn tree_path_of_counter(cfg: &SecureConfig, counter: BlockAddr) -> Vec<BlockAddr> {
    let mut path = Vec::new();
    if tree_levels(cfg).is_empty() {
        return path;
    }
    let mut node = tree_leaf_of(cfg, counter);
    loop {
        path.push(node);
        match tree_parent(cfg, node) {
            Some(parent) => node = parent,
            None => break,
        }
    }
    path
}

/// Slot of a counter block's HMAC within its leaf node: `off % arity`.
pub fn child_slot_of_counter(cfg: &SecureConfig, counter: BlockAddr) -> u8 {
    (counter_offset(cfg, counter) % cfg.tree_arity) as u8
}

/// Slot of a tree node's HMAC within its parent: `off % arity`.
pub fn child_slot_of_tree(cfg: &SecureConfig, node: BlockAddr) -> u8 {
    let (_, off) = tree_position(cfg, node);
    (off % cfg.tree_arity) as u8
}

/// Classifies any block address into data / counter / hash / tree by
/// walking the region bounds in layout order.
pub fn kind_of(cfg: &SecureConfig, block: BlockAddr) -> BlockKind {
    let i = block.index();
    if i < counter_base(cfg) {
        BlockKind::Data
    } else if i < hash_base(cfg) {
        BlockKind::Counter
    } else if i < hash_base(cfg) + hash_blocks(cfg) {
        BlockKind::Hash
    } else {
        let (level, _) = tree_position(cfg, block);
        BlockKind::Tree(level as u8)
    }
}

/// The eight hash blocks covering one 4 KB data page.
pub fn hash_blocks_of_page(cfg: &SecureConfig, page: u64) -> Vec<BlockAddr> {
    let first_data = page * BLOCKS_PER_PAGE;
    (0..8)
        .map(|i| hash_block_of(cfg, BlockAddr::new(first_data + i * 8)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;

    /// Configurations chosen to stress both arms of the optimized layout:
    /// power-of-two and non-power-of-two arity, SGX vs PI counter ratios,
    /// and odd (non-power-of-two) page-multiple memory sizes.
    fn configs() -> Vec<SecureConfig> {
        let mut cfgs = vec![
            SecureConfig::poison_ivy(64 << 10),
            SecureConfig::poison_ivy(16 << 20),
            SecureConfig::sgx(64 << 10),
            SecureConfig::sgx(16 << 20),
            SecureConfig::poison_ivy(52 * 4096), // 52 pages: odd region sizes
            SecureConfig::sgx(13 * 4096),
        ];
        let mut arity3 = SecureConfig::poison_ivy(3 << 20);
        arity3.tree_arity = 3;
        cfgs.push(arity3);
        let mut arity5 = SecureConfig::sgx(520 * 4096);
        arity5.tree_arity = 5;
        cfgs.push(arity5);
        cfgs
    }

    #[test]
    fn spec_matches_layout_geometry() {
        for cfg in configs() {
            let l = Layout::new(cfg);
            assert_eq!(data_blocks(&cfg), l.data_blocks(), "{cfg:?}");
            assert_eq!(counter_blocks(&cfg), l.counter_blocks(), "{cfg:?}");
            assert_eq!(hash_blocks(&cfg), l.hash_blocks(), "{cfg:?}");
            let levels = tree_levels(&cfg);
            assert_eq!(levels.len(), l.tree_levels(), "{cfg:?}");
            for (level, (_, size)) in levels.iter().enumerate() {
                assert_eq!(*size, l.tree_level_size(level), "{cfg:?} level {level}");
            }
        }
    }

    #[test]
    fn spec_matches_layout_per_data_block() {
        for cfg in configs() {
            let l = Layout::new(cfg);
            // Stride through the data region so every page and hash block
            // boundary in small configs is crossed.
            let n = data_blocks(&cfg);
            for i in (0..n).step_by(7).chain([n - 1]) {
                let d = BlockAddr::new(i);
                assert_eq!(counter_block_of(&cfg, d), l.counter_block_of(d));
                assert_eq!(hash_block_of(&cfg, d), l.hash_block_of(d));
                assert_eq!(hash_slot_of(&cfg, d), l.hash_slot_of(d));
            }
        }
    }

    #[test]
    fn spec_matches_layout_tree_walks() {
        for cfg in configs() {
            let l = Layout::new(cfg);
            let base = counter_base(&cfg);
            for off in (0..counter_blocks(&cfg)).step_by(3) {
                let ctr = BlockAddr::new(base + off);
                let spec_path = tree_path_of_counter(&cfg, ctr);
                let impl_path: Vec<_> = l.tree_path_of_counter(ctr).collect();
                assert_eq!(spec_path, impl_path, "{cfg:?} ctr {ctr}");
                assert_eq!(
                    child_slot_of_counter(&cfg, ctr),
                    l.child_slot_of_counter(ctr)
                );
                for node in spec_path {
                    assert_eq!(child_slot_of_tree(&cfg, node), l.child_slot_of_tree(node));
                    assert_eq!(tree_position(&cfg, node), l.tree_position(node));
                    assert_eq!(tree_parent(&cfg, node), l.tree_parent(node));
                }
            }
        }
    }

    #[test]
    fn spec_matches_layout_kind_classification() {
        for cfg in configs() {
            let l = Layout::new(cfg);
            let total = hash_base(&cfg)
                + hash_blocks(&cfg)
                + tree_levels(&cfg).iter().map(|(_, n)| n).sum::<u64>();
            for i in (0..total).step_by(5).chain([total - 1]) {
                let b = BlockAddr::new(i);
                assert_eq!(kind_of(&cfg, b), l.kind_of(b), "{cfg:?} block {b}");
            }
        }
    }

    #[test]
    fn spec_matches_layout_page_hash_blocks() {
        for cfg in configs() {
            let l = Layout::new(cfg);
            let pages = data_blocks(&cfg) / BLOCKS_PER_PAGE;
            for page in (0..pages).step_by(11).chain([pages - 1]) {
                let spec: Vec<_> = hash_blocks_of_page(&cfg, page);
                let imp: Vec<_> = l.hash_blocks_of_page(page).collect();
                assert_eq!(spec, imp, "{cfg:?} page {page}");
            }
        }
    }
}
