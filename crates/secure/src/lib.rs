//! Secure-memory metadata organization: counter-mode encryption counters,
//! per-block data hashes, and the Bonsai Merkle Tree (BMT) that protects
//! the counters.
//!
//! This crate is purely *geometric*: it answers "which metadata blocks does
//! data block X need?" and "how much data does metadata block Y protect?"
//! (Table II of the paper). The simulation of when those blocks are
//! fetched, cached, and written back lives in `maps-sim`.
//!
//! Two counter organizations are modeled:
//!
//! * [`CounterMode::SplitPi`] — the PoisonIvy-style split counter the paper
//!   assumes: one 8 B per-page counter plus 64 seven-bit per-block counters
//!   in a single 64 B block, covering 4 KB of data.
//! * [`CounterMode::SgxMonolithic`] — Intel SGX-style 8 B per-block
//!   counters, eight per 64 B block, covering 512 B of data.
//!
//! # Examples
//!
//! ```
//! use maps_secure::{Layout, SecureConfig};
//! use maps_trace::BlockAddr;
//!
//! let layout = Layout::new(SecureConfig::poison_ivy(64 * 1024 * 1024));
//! let data = BlockAddr::new(1234);
//! let counter = layout.counter_block_of(data);
//! let path: Vec<_> = layout.tree_path_of_counter(counter).collect();
//! assert!(!path.is_empty());
//! // Every level of the walk moves strictly toward the root.
//! assert!(path.windows(2).all(|w| w[0] != w[1]));
//! ```

pub mod config;
pub mod counters;
pub mod integrity;
pub mod layout;
pub mod spec;

pub use config::{CounterMode, SecureConfig};
pub use counters::{CounterStore, IndexHasher, WriteOutcome};
pub use integrity::{AttackSite, IntegrityError, SecureMemoryModel};
pub use layout::Layout;
