//! Encryption counter state and overflow behaviour.

use maps_trace::det::DetHashMap;
use maps_trace::{BlockAddr, BLOCKS_PER_PAGE};

use crate::CounterMode;

/// Deterministic multiply-shift hasher for the dense page/block indices
/// keying the counter maps. The default SipHash is keyed against
/// adversarial input; these keys are simulator-internal integers, and the
/// counter maps sit on the per-writeback hot path, so the cheap
/// deterministic mix wins. Now shared workspace-wide as
/// [`maps_trace::det::DetHasher`]; this alias keeps the original public
/// name.
pub use maps_trace::det::DetHasher as IndexHasher;

type IndexMap<V> = DetHashMap<u64, V>;

/// Outcome of incrementing a block's write counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The per-block counter incremented without overflow.
    Incremented,
    /// The 7-bit per-block counter overflowed: the per-page counter was
    /// bumped, all per-block counters in the page reset, and the whole page
    /// must be re-encrypted (64 block reads + 64 block writes).
    PageOverflow {
        /// Index of the page that must be re-encrypted.
        page: u64,
    },
}

/// Functional state of the encryption counters.
///
/// Tracks per-block write counts so the simulator can model the page
/// re-encryption events that split counters incur when a 7-bit per-block
/// counter wraps (Section II-A). Pages never written are not stored.
///
/// # Examples
///
/// ```
/// use maps_secure::{CounterMode, CounterStore, WriteOutcome};
/// use maps_trace::BlockAddr;
///
/// let mut ctrs = CounterStore::new(CounterMode::SplitPi);
/// let block = BlockAddr::new(5);
/// for _ in 0..127 {
///     assert_eq!(ctrs.record_write(block), WriteOutcome::Incremented);
/// }
/// // The 128th write overflows the 7-bit counter.
/// assert_eq!(ctrs.record_write(block), WriteOutcome::PageOverflow { page: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct CounterStore {
    mode: CounterMode,
    /// Per-page state for split counters: (page counter, per-block counts).
    pages: IndexMap<PageCounters>,
    /// Monolithic 64-bit counters for SGX mode.
    blocks: IndexMap<u64>,
    overflows: u64,
    writes: u64,
}

#[derive(Debug, Clone)]
struct PageCounters {
    page_counter: u64,
    block_counters: [u8; BLOCKS_PER_PAGE as usize],
}

impl Default for PageCounters {
    fn default() -> Self {
        Self {
            page_counter: 0,
            block_counters: [0; BLOCKS_PER_PAGE as usize],
        }
    }
}

/// A 7-bit counter overflows when it would reach 128.
const SPLIT_COUNTER_LIMIT: u8 = 127;

impl CounterStore {
    /// Creates an empty counter store.
    pub fn new(mode: CounterMode) -> Self {
        // Pre-size the maps: workloads touch thousands of pages, and letting
        // the table grow from empty re-moves every `PageCounters` (72 B) on
        // each rehash, which shows up in replay profiles. Point lookups only
        // — capacity never affects observable counter state.
        let cap = |m| if mode == m { 4096 } else { 0 };
        Self {
            mode,
            pages: IndexMap::with_capacity_and_hasher(
                cap(CounterMode::SplitPi),
                Default::default(),
            ),
            blocks: IndexMap::with_capacity_and_hasher(
                cap(CounterMode::SgxMonolithic),
                Default::default(),
            ),
            overflows: 0,
            writes: 0,
        }
    }

    /// The counter organization.
    pub fn mode(&self) -> CounterMode {
        self.mode
    }

    /// Records a write to a data block, incrementing its counter.
    pub fn record_write(&mut self, data: BlockAddr) -> WriteOutcome {
        self.writes += 1;
        match self.mode {
            CounterMode::SplitPi => {
                let page = data.page().index();
                let slot = data.slot_in_page() as usize;
                let entry = self.pages.entry(page).or_default();
                if entry.block_counters[slot] >= SPLIT_COUNTER_LIMIT {
                    entry.page_counter += 1;
                    entry.block_counters = [0; BLOCKS_PER_PAGE as usize];
                    self.overflows += 1;
                    WriteOutcome::PageOverflow { page }
                } else {
                    entry.block_counters[slot] += 1;
                    WriteOutcome::Incremented
                }
            }
            CounterMode::SgxMonolithic => {
                // 64-bit counters do not overflow on any realistic horizon.
                *self.blocks.entry(data.index()).or_insert(0) += 1;
                WriteOutcome::Incremented
            }
        }
    }

    /// Current counter value for a block (page counter excluded in split
    /// mode).
    pub fn block_counter(&self, data: BlockAddr) -> u64 {
        match self.mode {
            CounterMode::SplitPi => self.pages.get(&data.page().index()).map_or(0, |p| {
                u64::from(p.block_counters[data.slot_in_page() as usize])
            }),
            CounterMode::SgxMonolithic => self.blocks.get(&data.index()).copied().unwrap_or(0),
        }
    }

    /// Current per-page counter (always 0 in SGX mode).
    pub fn page_counter(&self, page: u64) -> u64 {
        match self.mode {
            CounterMode::SplitPi => self.pages.get(&page).map_or(0, |p| p.page_counter),
            CounterMode::SgxMonolithic => 0,
        }
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total page overflows (re-encryption events).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Exports write and overflow totals under `{prefix}.writes` and
    /// `{prefix}.overflows` (each overflow is a whole-page re-encryption,
    /// the cost Section III-B charges against split counters).
    pub fn export<S: maps_obs::MetricSink>(&self, prefix: &str, sink: &mut S) {
        sink.counter_add(&format!("{prefix}.writes"), self.writes);
        sink.counter_add(&format!("{prefix}.overflows"), self.overflows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_counter_increments_then_overflows() {
        let mut c = CounterStore::new(CounterMode::SplitPi);
        let b = BlockAddr::new(70); // page 1, slot 6
        for i in 1..=127u64 {
            assert_eq!(c.record_write(b), WriteOutcome::Incremented);
            assert_eq!(c.block_counter(b), i);
        }
        assert_eq!(c.record_write(b), WriteOutcome::PageOverflow { page: 1 });
        assert_eq!(c.block_counter(b), 0);
        assert_eq!(c.page_counter(1), 1);
        assert_eq!(c.overflows(), 1);
    }

    #[test]
    fn overflow_resets_all_blocks_in_page() {
        let mut c = CounterStore::new(CounterMode::SplitPi);
        let sibling = BlockAddr::new(1);
        c.record_write(sibling);
        let b = BlockAddr::new(0);
        for _ in 0..128 {
            c.record_write(b);
        }
        assert_eq!(
            c.block_counter(sibling),
            0,
            "sibling counter survives overflow reset"
        );
    }

    #[test]
    fn sgx_counters_never_overflow() {
        let mut c = CounterStore::new(CounterMode::SgxMonolithic);
        let b = BlockAddr::new(3);
        for _ in 0..1000 {
            assert_eq!(c.record_write(b), WriteOutcome::Incremented);
        }
        assert_eq!(c.block_counter(b), 1000);
        assert_eq!(c.overflows(), 0);
        assert_eq!(c.page_counter(0), 0);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let c = CounterStore::new(CounterMode::SplitPi);
        assert_eq!(c.block_counter(BlockAddr::new(99)), 0);
        assert_eq!(c.page_counter(5), 0);
    }

    #[test]
    fn pages_are_independent() {
        let mut c = CounterStore::new(CounterMode::SplitPi);
        for _ in 0..128 {
            c.record_write(BlockAddr::new(0)); // page 0
        }
        assert_eq!(c.page_counter(0), 1);
        assert_eq!(c.page_counter(1), 0);
        assert_eq!(c.block_counter(BlockAddr::new(64)), 0);
    }
}
