//! A functional model of the secure-memory integrity mechanism.
//!
//! The rest of this crate (and the simulator) models *where metadata lives
//! and when it is accessed*; this module models *what the mechanism
//! computes*: per-block HMACs over (data, counter, address) and a Bonsai
//! Merkle Tree of hashes over the counters, with the root held on chip.
//! It exists to make the security claims executable — unit tests
//! demonstrate that data tampering, counter tampering, tree tampering, and
//! replay (rollback) attacks are all detected, exactly the threat model of
//! Section II.
//!
//! Hashes are 64-bit mix functions, not cryptographic primitives: the
//! model verifies *protocol* correctness (what is hashed over what, and
//! what the root pins down), not collision resistance.
//!
//! # Examples
//!
//! ```
//! use maps_secure::integrity::SecureMemoryModel;
//! use maps_secure::SecureConfig;
//! use maps_trace::BlockAddr;
//!
//! let mut mem = SecureMemoryModel::new(SecureConfig::poison_ivy(1 << 20));
//! let block = BlockAddr::new(42);
//! mem.write_block(block, 0xDEADBEEF);
//! assert_eq!(mem.read_block(block).unwrap(), 0xDEADBEEF);
//!
//! // An attacker flips bits in memory: the next read detects it.
//! mem.tamper_data(block, 0xBADC0DE);
//! assert!(mem.read_block(block).is_err());
//! ```

use std::cell::RefCell;
use std::fmt;

use maps_trace::det::DetHashMap;
use maps_trace::BlockAddr;

use crate::{CounterMode, CounterStore, Layout, SecureConfig};

/// Default HMAC key for [`SecureMemoryModel::new`]; arbitrary, fixed so
/// runs are reproducible. Use [`SecureMemoryModel::with_key`] to vary it.
const DEFAULT_KEY: u64 = 0x5EC2_E71C_0DD5_EEDA;

/// Why an integrity check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The per-block data HMAC did not match the stored data.
    DataHashMismatch {
        /// The data block whose HMAC failed.
        block: BlockAddr,
    },
    /// A tree node's stored hash did not match the hash of its children.
    TreeMismatch {
        /// Level of the failing node (0 = leaf); the root is level
        /// `tree_levels()`.
        level: u8,
    },
    /// The on-chip root did not match the top in-memory level.
    RootMismatch,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DataHashMismatch { block } => {
                write!(f, "data HMAC mismatch for {block}")
            }
            IntegrityError::TreeMismatch { level } => {
                write!(f, "integrity-tree hash mismatch at level {level}")
            }
            IntegrityError::RootMismatch => f.write_str("on-chip root mismatch"),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// One attacker-addressable word of stored secure-memory state.
///
/// Everything in DRAM is fair game for a physical attacker: the data
/// itself, the per-block HMACs, the counter blocks, and every integrity
/// tree node below the root. The on-chip root and the key are *not*
/// sites — that is the trust boundary the mechanism is built on.
/// [`SecureMemoryModel::attack_sites`] enumerates the written sites so
/// fault campaigns can cover the whole surface mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackSite {
    /// The stored data fingerprint of a data block.
    Data(BlockAddr),
    /// The stored per-block HMAC of a data block.
    Hmac(BlockAddr),
    /// The stored fingerprint of a counter block (addressed by the
    /// counter block itself, not a data block it covers).
    CounterBlock(BlockAddr),
    /// A stored integrity-tree node hash.
    TreeNode {
        /// Level of the node (0 = leaf).
        level: u8,
        /// Offset of the node within its level.
        offset: u64,
    },
}

impl fmt::Display for AttackSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackSite::Data(b) => write!(f, "data[{}]", b.index()),
            AttackSite::Hmac(b) => write!(f, "hmac[{}]", b.index()),
            AttackSite::CounterBlock(b) => write!(f, "ctr[{}]", b.index()),
            AttackSite::TreeNode { level, offset } => write!(f, "tree[{level}:{offset}]"),
        }
    }
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Keyed combination of hash inputs.
fn hmac(key: u64, parts: &[u64]) -> u64 {
    let mut acc = mix(key);
    for &p in parts {
        acc = mix(acc ^ p);
    }
    acc
}

/// Functional secure-memory state: data fingerprints, counters, HMACs, and
/// the full hash tree, with explicit tampering entry points for tests and
/// demos.
#[derive(Debug, Clone)]
pub struct SecureMemoryModel {
    layout: Layout,
    counters: CounterStore,
    key: u64,
    /// Stored (possibly tampered) data fingerprints.
    data: DetHashMap<u64, u64>,
    /// Stored per-block HMACs.
    hmacs: DetHashMap<u64, u64>,
    /// Content fingerprint of each counter *block* (page counter plus all
    /// block counters), as an attacker in memory would see it.
    counter_fingerprints: DetHashMap<u64, u64>,
    /// Stored tree node hashes by (level, offset).
    tree: DetHashMap<(u8, u64), u64>,
    /// The on-chip root (not addressable by the attacker).
    root: u64,
    verified_reads: u64,
    /// Memoized hashes of never-written subtrees (they are pure functions
    /// of the geometry and key).
    default_cache: RefCell<DetHashMap<(u8, u64), u64>>,
}

impl SecureMemoryModel {
    /// Creates a model over the given configuration with a fixed secret
    /// key.
    pub fn new(cfg: SecureConfig) -> Self {
        Self::with_key(cfg, DEFAULT_KEY)
    }

    /// Creates a model with an explicit HMAC key.
    pub fn with_key(cfg: SecureConfig, key: u64) -> Self {
        let mut model = Self {
            layout: Layout::new(cfg),
            counters: CounterStore::new(cfg.mode),
            key,
            data: DetHashMap::default(),
            hmacs: DetHashMap::default(),
            counter_fingerprints: DetHashMap::default(),
            tree: DetHashMap::default(),
            root: 0,
            verified_reads: 0,
            default_cache: RefCell::new(DetHashMap::default()),
        };
        model.root = model.compute_root();
        model
    }

    /// The layout geometry backing this model.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of reads that passed verification.
    pub fn verified_reads(&self) -> u64 {
        self.verified_reads
    }

    /// Writes a value to a data block: increments the counter, recomputes
    /// the HMAC, and updates the tree path up to the on-chip root.
    /// Returns the counter outcome so callers can observe overflows
    /// (page re-encryptions) as they happen.
    pub fn write_block(&mut self, block: BlockAddr, value: u64) -> crate::WriteOutcome {
        let outcome = self.counters.record_write(block);
        self.data.insert(block.index(), value);
        // The HMAC binds the data to the counter state *as stored in
        // memory*, so a consistent rollback of (data, HMAC, counter block)
        // self-verifies — and only the integrity tree, pinned by the
        // on-chip root, exposes the replay.
        self.refresh_counter_fingerprint(block);
        let h = self.data_hmac(block, value);
        self.hmacs.insert(block.index(), h);
        self.update_tree_path(block);
        outcome
    }

    /// Reads a data block, verifying the data HMAC, the counter's tree
    /// path, and the on-chip root.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as an [`IntegrityError`]. Reading a
    /// never-written block yields zero (memory is zero-initialized in this
    /// model) after the same verification.
    pub fn read_block(&mut self, block: BlockAddr) -> Result<u64, IntegrityError> {
        let value = self.data.get(&block.index()).copied().unwrap_or(0);
        let expected = self.data_hmac(block, value);
        let stored = self.hmacs.get(&block.index()).copied().unwrap_or_else(|| {
            // Never-written blocks carry the HMAC of (0, counter=0).
            self.data_hmac(block, 0)
        });
        if stored != expected {
            return Err(IntegrityError::DataHashMismatch { block });
        }
        self.verify_tree_path(block)?;
        self.verified_reads += 1;
        Ok(value)
    }

    /// Attacker: overwrite stored data without updating any hash.
    pub fn tamper_data(&mut self, block: BlockAddr, value: u64) {
        self.data.insert(block.index(), value);
    }

    /// Attacker: overwrite a stored per-block HMAC without touching the
    /// data it authenticates.
    pub fn tamper_hmac(&mut self, block: BlockAddr, value: u64) {
        self.hmacs.insert(block.index(), value);
    }

    /// Every attacker-addressable site holding *written* state, sorted so
    /// campaigns enumerate the surface deterministically. (Never-written
    /// sites hold derivable defaults; flipping those is covered by
    /// writing first, which every campaign does.)
    pub fn attack_sites(&self) -> Vec<AttackSite> {
        let mut sites = Vec::new();
        for &idx in self.data.keys() {
            sites.push(AttackSite::Data(BlockAddr::new(idx)));
        }
        for &idx in self.hmacs.keys() {
            sites.push(AttackSite::Hmac(BlockAddr::new(idx)));
        }
        for &idx in self.counter_fingerprints.keys() {
            sites.push(AttackSite::CounterBlock(BlockAddr::new(idx)));
        }
        for &(level, offset) in self.tree.keys() {
            sites.push(AttackSite::TreeNode { level, offset });
        }
        sites.sort();
        sites
    }

    /// The value currently stored at an attacker-addressable site
    /// (including the derivable default for never-written sites).
    pub fn site_value(&self, site: AttackSite) -> u64 {
        match site {
            AttackSite::Data(b) => self.data.get(&b.index()).copied().unwrap_or(0),
            AttackSite::Hmac(b) => self
                .hmacs
                .get(&b.index())
                .copied()
                .unwrap_or_else(|| self.data_hmac(b, 0)),
            AttackSite::CounterBlock(b) => self.stored_counter_fingerprint(b),
            AttackSite::TreeNode { level, offset } => self.stored_tree_hash(level, offset),
        }
    }

    /// Attacker: overwrite the value stored at any addressable site.
    /// `TreeNode` sites follow [`SecureMemoryModel::tamper_tree_node`]
    /// semantics (panics on a nonexistent level); the other variants
    /// accept any block address, like their dedicated entry points.
    pub fn tamper_site(&mut self, site: AttackSite, value: u64) {
        match site {
            AttackSite::Data(b) => self.tamper_data(b, value),
            AttackSite::Hmac(b) => self.tamper_hmac(b, value),
            AttackSite::CounterBlock(b) => {
                self.counter_fingerprints.insert(b.index(), value);
            }
            AttackSite::TreeNode { level, offset } => self.tamper_tree_node(level, offset, value),
        }
    }

    /// The trusted counter state behind the model (read-only), so fault
    /// campaigns can mirror writes into the value-level oracle and drive
    /// overflow storms against both in lockstep.
    pub fn counters(&self) -> &CounterStore {
        &self.counters
    }

    /// Attacker: overwrite the stored counter-block fingerprint (e.g.
    /// rolling the counter back), without updating the tree.
    pub fn tamper_counter_block(&mut self, block: BlockAddr, fingerprint: u64) {
        let ctr_block = self.layout.counter_block_of(block);
        self.counter_fingerprints
            .insert(ctr_block.index(), fingerprint);
    }

    /// Attacker: overwrite a stored tree node hash.
    ///
    /// # Panics
    ///
    /// Panics if the level does not exist.
    pub fn tamper_tree_node(&mut self, level: u8, offset: u64, value: u64) {
        assert!(
            (level as usize) < self.layout.tree_levels(),
            "no such tree level"
        );
        self.tree.insert((level, offset), value);
    }

    /// Attacker snapshot of everything addressable in memory for `block`:
    /// `(data, hmac, counter fingerprint)`. Restoring this snapshot later
    /// is a replay attack.
    pub fn snapshot(&self, block: BlockAddr) -> (u64, u64, u64) {
        let ctr_block = self.layout.counter_block_of(block);
        (
            self.data.get(&block.index()).copied().unwrap_or(0),
            self.hmacs.get(&block.index()).copied().unwrap_or(0),
            self.counter_fingerprints
                .get(&ctr_block.index())
                .copied()
                .unwrap_or(0),
        )
    }

    /// Attacker: replay a previous snapshot of the block's memory state
    /// (data, HMAC, and counter block). Detected via the tree/root, which
    /// the attacker cannot rewind.
    pub fn replay(&mut self, block: BlockAddr, snapshot: (u64, u64, u64)) {
        let (data, hmac_value, ctr_fp) = snapshot;
        self.data.insert(block.index(), data);
        self.hmacs.insert(block.index(), hmac_value);
        let ctr_block = self.layout.counter_block_of(block);
        self.counter_fingerprints.insert(ctr_block.index(), ctr_fp);
    }

    fn data_hmac(&self, block: BlockAddr, value: u64) -> u64 {
        // HMAC binds value, address, and the counter block as fetched from
        // memory; the counter block itself is authenticated by the tree.
        let ctr_block = self.layout.counter_block_of(block);
        let fp = self.stored_counter_fingerprint(ctr_block);
        hmac(self.key, &[value, block.index(), fp])
    }

    /// Recomputes the stored fingerprint of the counter block covering
    /// `block` from trusted counter state (called on legitimate writes).
    fn refresh_counter_fingerprint(&mut self, block: BlockAddr) {
        let ctr_block = self.layout.counter_block_of(block);
        let fp = self.trusted_counter_fingerprint(ctr_block);
        self.counter_fingerprints.insert(ctr_block.index(), fp);
    }

    /// Fingerprint of a counter block from the controller's trusted
    /// counter values.
    fn trusted_counter_fingerprint(&self, ctr_block: BlockAddr) -> u64 {
        let mut parts = vec![ctr_block.index()];
        for data_block in self.layout.data_blocks_of_counter(ctr_block) {
            parts.push(self.counters.block_counter(data_block));
        }
        if self.counters.mode() == CounterMode::SplitPi {
            // All data blocks of a PI counter block share one page.
            if let Some(first) = self.layout.data_blocks_of_counter(ctr_block).next() {
                parts.push(self.counters.page_counter(first.page().index()));
            }
        }
        hmac(self.key, &parts)
    }

    /// Stored (attacker-visible) fingerprint of a counter block.
    fn stored_counter_fingerprint(&self, ctr_block: BlockAddr) -> u64 {
        self.counter_fingerprints
            .get(&ctr_block.index())
            .copied()
            .unwrap_or_else(|| self.zero_counter_fingerprint(ctr_block))
    }

    /// Fingerprint of an all-zero (never written) counter block.
    fn zero_counter_fingerprint(&self, ctr_block: BlockAddr) -> u64 {
        let n = self.layout.data_blocks_of_counter(ctr_block).count();
        let mut parts = vec![ctr_block.index()];
        parts.extend(std::iter::repeat_n(0u64, n));
        if self.counters.mode() == CounterMode::SplitPi {
            parts.push(0);
        }
        hmac(self.key, &parts)
    }

    /// Hash of a leaf node: the fingerprints of the counter blocks it
    /// covers.
    fn leaf_hash(&self, leaf_offset: u64) -> u64 {
        let arity = self.layout.config().tree_arity;
        let base = leaf_offset * arity;
        let mut parts = vec![leaf_offset];
        for i in 0..arity {
            let idx = base + i;
            if idx < self.layout.counter_blocks() {
                let ctr_block = BlockAddr::new(self.layout.data_blocks() + idx);
                parts.push(self.stored_counter_fingerprint(ctr_block));
            }
        }
        hmac(self.key, &parts)
    }

    /// Hash of an internal node from its children's stored hashes.
    fn node_hash(&self, level: u8, offset: u64) -> u64 {
        let arity = self.layout.config().tree_arity;
        let child_level = level - 1;
        let child_count = self.layout.tree_level_size(child_level as usize);
        let mut parts = vec![u64::from(level), offset];
        for i in 0..arity {
            let child = offset * arity + i;
            if child < child_count {
                parts.push(self.stored_tree_hash(child_level, child));
            }
        }
        hmac(self.key, &parts)
    }

    fn stored_tree_hash(&self, level: u8, offset: u64) -> u64 {
        self.tree
            .get(&(level, offset))
            .copied()
            .unwrap_or_else(|| self.default_tree_hash(level, offset))
    }

    /// Hash a never-updated tree node would hold: the hash of the all-zero
    /// initial state below it. (Any write below the node stores a real
    /// entry via `update_tree_path`.)
    fn default_tree_hash(&self, level: u8, offset: u64) -> u64 {
        if let Some(&h) = self.default_cache.borrow().get(&(level, offset)) {
            return h;
        }
        let h = self.compute_default_tree_hash(level, offset);
        self.default_cache.borrow_mut().insert((level, offset), h);
        h
    }

    fn compute_default_tree_hash(&self, level: u8, offset: u64) -> u64 {
        if level == 0 {
            let arity = self.layout.config().tree_arity;
            let base = offset * arity;
            let mut parts = vec![offset];
            for i in 0..arity {
                let idx = base + i;
                if idx < self.layout.counter_blocks() {
                    let ctr_block = BlockAddr::new(self.layout.data_blocks() + idx);
                    parts.push(self.zero_counter_fingerprint(ctr_block));
                }
            }
            hmac(self.key, &parts)
        } else {
            let arity = self.layout.config().tree_arity;
            let child_count = self.layout.tree_level_size((level - 1) as usize);
            let mut parts = vec![u64::from(level), offset];
            for i in 0..arity {
                let child = offset * arity + i;
                if child < child_count {
                    parts.push(self.default_tree_hash(level - 1, child));
                }
            }
            hmac(self.key, &parts)
        }
    }

    fn top_level(&self) -> u8 {
        (self.layout.tree_levels().saturating_sub(1)) as u8
    }

    /// Root hash over the top in-memory level.
    fn compute_root(&self) -> u64 {
        if self.layout.tree_levels() == 0 {
            // The root directly hashes the counter blocks.
            let mut parts = vec![u64::MAX];
            for idx in 0..self.layout.counter_blocks() {
                let ctr_block = BlockAddr::new(self.layout.data_blocks() + idx);
                parts.push(self.stored_counter_fingerprint(ctr_block));
            }
            return hmac(self.key, &parts);
        }
        let top = self.top_level();
        let mut parts = vec![u64::MAX];
        for off in 0..self.layout.tree_level_size(top as usize) {
            parts.push(self.stored_tree_hash(top, off));
        }
        hmac(self.key, &parts)
    }

    /// Recomputes the tree path above `block`'s counter and the root
    /// (legitimate write path).
    fn update_tree_path(&mut self, block: BlockAddr) {
        let ctr_block = self.layout.counter_block_of(block);
        let path: Vec<BlockAddr> = self.layout.tree_path_of_counter(ctr_block).collect();
        for node in path {
            let (level, offset) = self.layout.tree_position(node);
            let h = if level == 0 {
                self.leaf_hash(offset)
            } else {
                self.node_hash(level as u8, offset)
            };
            self.tree.insert((level as u8, offset), h);
        }
        self.root = self.compute_root();
    }

    /// Verifies the tree path above `block`'s counter against stored
    /// hashes and the on-chip root.
    fn verify_tree_path(&self, block: BlockAddr) -> Result<(), IntegrityError> {
        let ctr_block = self.layout.counter_block_of(block);
        for node in self.layout.tree_path_of_counter(ctr_block) {
            let (level, offset) = self.layout.tree_position(node);
            let expected = if level == 0 {
                self.leaf_hash(offset)
            } else {
                self.node_hash(level as u8, offset)
            };
            if self.stored_tree_hash(level as u8, offset) != expected {
                return Err(IntegrityError::TreeMismatch { level: level as u8 });
            }
        }
        if self.compute_root() != self.root {
            return Err(IntegrityError::RootMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SecureMemoryModel {
        SecureMemoryModel::new(SecureConfig::poison_ivy(1 << 20))
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = model();
        let b = BlockAddr::new(7);
        m.write_block(b, 123);
        assert_eq!(m.read_block(b).unwrap(), 123);
        m.write_block(b, 456);
        assert_eq!(m.read_block(b).unwrap(), 456);
        assert_eq!(m.verified_reads(), 2);
    }

    #[test]
    fn unwritten_blocks_read_zero_and_verify() {
        let mut m = model();
        assert_eq!(m.read_block(BlockAddr::new(100)).unwrap(), 0);
    }

    #[test]
    fn data_tampering_is_detected() {
        let mut m = model();
        let b = BlockAddr::new(9);
        m.write_block(b, 1);
        m.tamper_data(b, 2);
        assert_eq!(
            m.read_block(b),
            Err(IntegrityError::DataHashMismatch { block: b })
        );
    }

    #[test]
    fn counter_tampering_is_detected() {
        let mut m = model();
        let b = BlockAddr::new(9);
        m.write_block(b, 1);
        m.tamper_counter_block(b, 0xDEAD);
        // Depending on which check fires first this is seen as a garbled
        // decryption (HMAC fail) or as a leaf mismatch; both mean caught.
        let err = m.read_block(b).unwrap_err();
        assert!(matches!(
            err,
            IntegrityError::DataHashMismatch { .. } | IntegrityError::TreeMismatch { .. }
        ));
    }

    #[test]
    fn replay_detected_specifically_by_the_tree() {
        // A *consistent* rollback (data, HMAC, counter block all from the
        // same snapshot) passes the HMAC check by construction; only the
        // on-chip root exposes it.
        let mut m = model();
        let b = BlockAddr::new(3);
        m.write_block(b, 1);
        let stale = m.snapshot(b);
        m.write_block(b, 2);
        m.replay(b, stale);
        assert!(matches!(
            m.read_block(b).unwrap_err(),
            IntegrityError::TreeMismatch { .. } | IntegrityError::RootMismatch
        ));
    }

    #[test]
    fn tree_node_tampering_is_detected() {
        let mut m = model();
        let b = BlockAddr::new(9);
        m.write_block(b, 1);
        // Tamper a level-1 node on the block's path.
        let ctr = m.layout().counter_block_of(b);
        let path: Vec<_> = m.layout().tree_path_of_counter(ctr).collect();
        if path.len() >= 2 {
            let (level, off) = m.layout().tree_position(path[1]);
            m.tamper_tree_node(level as u8, off, 0xBEEF);
            let err = m.read_block(b).unwrap_err();
            assert!(matches!(
                err,
                IntegrityError::TreeMismatch { .. } | IntegrityError::RootMismatch
            ));
        }
    }

    #[test]
    fn replay_attack_is_detected() {
        let mut m = model();
        let b = BlockAddr::new(3);
        m.write_block(b, 111);
        let old = m.snapshot(b);
        // Legitimate update advances the counter and the tree.
        m.write_block(b, 222);
        assert_eq!(m.read_block(b).unwrap(), 222);
        // Replay the old memory image: data, HMAC, and counter block all
        // consistent with each other — but the tree has moved on.
        m.replay(b, old);
        assert!(
            m.read_block(b).is_err(),
            "replayed stale state must not verify"
        );
    }

    #[test]
    fn tampering_one_block_does_not_poison_others() {
        let mut m = model();
        let a = BlockAddr::new(1);
        let far = BlockAddr::new(60_000 % (m.layout().data_blocks() - 1));
        m.write_block(a, 5);
        m.write_block(far, 6);
        m.tamper_data(a, 50);
        assert!(m.read_block(a).is_err());
        // A block under a different subtree still verifies — unless it
        // shares the tampered path, which these two do not at the leaf.
        assert_eq!(m.read_block(far).unwrap(), 6);
    }

    #[test]
    fn sgx_mode_round_trips_too() {
        let mut m = SecureMemoryModel::new(SecureConfig::sgx(1 << 20));
        let b = BlockAddr::new(11);
        m.write_block(b, 77);
        assert_eq!(m.read_block(b).unwrap(), 77);
        m.tamper_data(b, 78);
        assert!(m.read_block(b).is_err());
    }

    #[test]
    fn attack_sites_cover_the_written_surface() {
        let mut m = model();
        let b = BlockAddr::new(9);
        m.write_block(b, 1);
        let sites = m.attack_sites();
        assert!(sites.contains(&AttackSite::Data(b)));
        assert!(sites.contains(&AttackSite::Hmac(b)));
        let ctr = m.layout().counter_block_of(b);
        assert!(sites.contains(&AttackSite::CounterBlock(ctr)));
        // The whole tree path above the counter is addressable.
        let path_len = m.layout().tree_path_of_counter(ctr).count();
        let tree_sites = sites
            .iter()
            .filter(|s| matches!(s, AttackSite::TreeNode { .. }))
            .count();
        assert_eq!(tree_sites, path_len);
        // Enumeration is deterministic and sorted.
        assert_eq!(sites, m.attack_sites());
        let mut sorted = sites.clone();
        sorted.sort();
        assert_eq!(sites, sorted);
    }

    #[test]
    fn every_site_flip_is_detected_on_the_blocks_own_read() {
        let mut m = model();
        let b = BlockAddr::new(9);
        m.write_block(b, 1);
        for site in m.attack_sites() {
            let mut victim = m.clone();
            let old = victim.site_value(site);
            victim.tamper_site(site, old ^ 1);
            assert_ne!(victim.site_value(site), old, "{site}: flip must stick");
            assert!(
                victim.read_block(b).is_err(),
                "{site}: single-bit flip must fail verification"
            );
        }
    }

    #[test]
    fn hmac_tampering_is_detected() {
        let mut m = model();
        let b = BlockAddr::new(5);
        m.write_block(b, 10);
        let old = m.site_value(AttackSite::Hmac(b));
        m.tamper_hmac(b, old ^ (1 << 40));
        assert_eq!(
            m.read_block(b),
            Err(IntegrityError::DataHashMismatch { block: b })
        );
    }

    #[test]
    fn write_block_reports_counter_outcome() {
        let mut m = model();
        let b = BlockAddr::new(2);
        assert_eq!(m.write_block(b, 1), crate::WriteOutcome::Incremented);
        assert_eq!(m.counters().writes(), 1);
    }

    #[test]
    fn different_keys_produce_different_hmacs() {
        let cfg = SecureConfig::poison_ivy(1 << 20);
        let mut m1 = SecureMemoryModel::with_key(cfg, 1);
        let mut m2 = SecureMemoryModel::with_key(cfg, 2);
        let b = BlockAddr::new(4);
        m1.write_block(b, 9);
        m2.write_block(b, 9);
        assert_ne!(
            m1.snapshot(b).1,
            m2.snapshot(b).1,
            "HMACs must depend on the key"
        );
    }
}
