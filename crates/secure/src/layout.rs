//! Physical layout of metadata and the Bonsai Merkle Tree geometry.

use maps_trace::{BlockAddr, BlockKind, BLOCK_BYTES};

use crate::SecureConfig;

/// Precomputed address map from data blocks to their metadata blocks.
///
/// Metadata is laid out after the data region, block-granular:
///
/// ```text
/// | data | counters | hashes | tree level 0 | tree level 1 | ... |
/// ```
///
/// The topmost tree level always has a single node — the root — which is
/// held on chip and therefore has *no* memory address; tree walks stop
/// below it.
///
/// # Examples
///
/// ```
/// use maps_secure::{Layout, SecureConfig};
/// use maps_trace::{BlockAddr, BlockKind};
///
/// let layout = Layout::new(SecureConfig::poison_ivy(1 << 20));
/// let ctr = layout.counter_block_of(BlockAddr::new(0));
/// assert_eq!(layout.kind_of(ctr), BlockKind::Counter);
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    cfg: SecureConfig,
    data_blocks: u64,
    counter_base: u64,
    counter_blocks: u64,
    hash_base: u64,
    hash_blocks: u64,
    /// Base block index of each in-memory tree level, leaf (level 0) first.
    tree_bases: Vec<u64>,
    /// Node count of each in-memory tree level.
    tree_sizes: Vec<u64>,
    /// `log2(data blocks per counter block)` when that ratio is a power of
    /// two (it is for both split and monolithic counters), letting the
    /// per-event address map shift instead of divide.
    ctr_shift: Option<u32>,
    /// `log2(tree_arity)` when the arity is a power of two.
    arity_shift: Option<u32>,
}

impl Layout {
    /// Builds the layout for a configuration.
    pub fn new(cfg: SecureConfig) -> Self {
        let data_blocks = cfg.data_blocks();
        let counter_base = data_blocks;
        let counter_blocks = cfg.counter_blocks();
        let hash_base = counter_base + counter_blocks;
        let hash_blocks = cfg.hash_blocks();

        let mut tree_bases = Vec::new();
        let mut tree_sizes = Vec::new();
        let mut level_span = counter_blocks; // blocks covered by this level
        let mut next_base = hash_base + hash_blocks;
        // Build levels bottom-up. A level that would contain a single node
        // is the root: it stays on chip and is never materialized.
        loop {
            let nodes = level_span.div_ceil(cfg.tree_arity);
            if nodes <= 1 {
                break;
            }
            tree_bases.push(next_base);
            tree_sizes.push(nodes);
            next_base += nodes;
            level_span = nodes;
        }

        let per_ctr = cfg.mode.data_blocks_per_counter_block();
        Self {
            data_blocks,
            counter_base,
            counter_blocks,
            hash_base,
            hash_blocks,
            tree_bases,
            tree_sizes,
            ctr_shift: per_ctr.is_power_of_two().then(|| per_ctr.trailing_zeros()),
            arity_shift: cfg
                .tree_arity
                .is_power_of_two()
                .then(|| cfg.tree_arity.trailing_zeros()),
            cfg,
        }
    }

    /// `x / data_blocks_per_counter_block`, shifting when possible.
    #[inline]
    fn div_per_ctr(&self, x: u64) -> u64 {
        match self.ctr_shift {
            Some(s) => x >> s,
            None => x / self.cfg.mode.data_blocks_per_counter_block(),
        }
    }

    /// `x / tree_arity`, shifting when possible.
    #[inline]
    fn div_arity(&self, x: u64) -> u64 {
        match self.arity_shift {
            Some(s) => x >> s,
            None => x / self.cfg.tree_arity,
        }
    }

    /// `x % tree_arity`, masking when possible.
    #[inline]
    fn mod_arity(&self, x: u64) -> u64 {
        match self.arity_shift {
            Some(s) => x & ((1u64 << s) - 1),
            None => x % self.cfg.tree_arity,
        }
    }

    /// The configuration this layout was built from.
    pub fn config(&self) -> &SecureConfig {
        &self.cfg
    }

    /// Number of protected data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// Number of counter blocks.
    pub fn counter_blocks(&self) -> u64 {
        self.counter_blocks
    }

    /// Number of hash blocks.
    pub fn hash_blocks(&self) -> u64 {
        self.hash_blocks
    }

    /// Number of in-memory tree levels (excludes the on-chip root).
    pub fn tree_levels(&self) -> usize {
        self.tree_bases.len()
    }

    /// Node count at an in-memory tree level (0 = leaves).
    ///
    /// # Panics
    ///
    /// Panics if `level >= tree_levels()`.
    pub fn tree_level_size(&self, level: usize) -> u64 {
        self.tree_sizes[level]
    }

    /// Total metadata blocks in memory (counters + hashes + tree).
    pub fn metadata_blocks(&self) -> u64 {
        self.counter_blocks + self.hash_blocks + self.tree_sizes.iter().sum::<u64>()
    }

    /// Metadata space overhead as a fraction of data size.
    pub fn metadata_overhead(&self) -> f64 {
        self.metadata_blocks() as f64 / self.data_blocks as f64
    }

    /// Counter block protecting a data block. Debug builds panic when the
    /// data block lies outside the protected region.
    pub fn counter_block_of(&self, data: BlockAddr) -> BlockAddr {
        debug_assert!(
            data.index() < self.data_blocks,
            "data block {data} outside protected memory"
        );
        BlockAddr::new(self.counter_base + self.div_per_ctr(data.index()))
    }

    /// Hash block holding the HMAC of a data block. Debug builds panic
    /// when the data block lies outside the protected region.
    pub fn hash_block_of(&self, data: BlockAddr) -> BlockAddr {
        debug_assert!(
            data.index() < self.data_blocks,
            "data block {data} outside protected memory"
        );
        BlockAddr::new(self.hash_base + data.index() / 8)
    }

    /// Slot (0..8) of a data block's HMAC within its hash block, for the
    /// partial-write valid bits.
    pub fn hash_slot_of(&self, data: BlockAddr) -> u8 {
        (data.index() % 8) as u8
    }

    /// Leaf tree node protecting a counter block. Debug builds panic when
    /// `counter` is not a counter block or the tree is empty (memory so
    /// small the root directly covers the counters); release builds fall
    /// back to a zero leaf base rather than aborting the walk.
    pub fn tree_leaf_of(&self, counter: BlockAddr) -> BlockAddr {
        let off = self.counter_offset(counter);
        debug_assert!(!self.tree_bases.is_empty(), "no in-memory tree levels");
        let base = self.tree_bases.first().copied().unwrap_or(0);
        BlockAddr::new(base + self.div_arity(off))
    }

    /// Parent of an in-memory tree node, or `None` when the parent is the
    /// on-chip root. Debug builds panic when `node` is not a tree node.
    pub fn tree_parent(&self, node: BlockAddr) -> Option<BlockAddr> {
        let (level, off) = self.tree_position(node);
        let parent_level = level + 1;
        if parent_level >= self.tree_bases.len() {
            return None;
        }
        Some(BlockAddr::new(
            self.tree_bases[parent_level] + self.div_arity(off),
        ))
    }

    /// The tree walk for a counter block: leaf upward through every
    /// in-memory level (the on-chip root is excluded).
    pub fn tree_path_of_counter(&self, counter: BlockAddr) -> TreePath<'_> {
        let next = if self.tree_bases.is_empty() {
            None
        } else {
            Some(self.tree_leaf_of(counter))
        };
        TreePath { layout: self, next }
    }

    /// Classifies any block address into data / counter / hash / tree.
    ///
    /// # Panics
    ///
    /// Panics if the block lies beyond the last metadata region.
    pub fn kind_of(&self, block: BlockAddr) -> BlockKind {
        let i = block.index();
        if i < self.counter_base {
            BlockKind::Data
        } else if i < self.hash_base {
            BlockKind::Counter
        } else if i < self.hash_base + self.hash_blocks {
            BlockKind::Hash
        } else {
            let (level, _) = self.tree_position(block);
            BlockKind::Tree(level as u8)
        }
    }

    /// Bytes of data protected by one block of the given kind, per
    /// Table II. For tree nodes, `level` 0 means the leaves.
    ///
    /// # Panics
    ///
    /// Panics if asked about [`BlockKind::Data`].
    pub fn data_protected_by(&self, kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Counter => self.cfg.mode.data_bytes_per_counter_block(),
            BlockKind::Hash => 8 * BLOCK_BYTES,
            BlockKind::Tree(level) => {
                let per_leaf = self.cfg.tree_arity * self.cfg.mode.data_bytes_per_counter_block();
                per_leaf * self.cfg.tree_arity.pow(u32::from(level))
            }
            BlockKind::Data => panic!("data blocks do not protect other data"),
        }
    }

    /// All data blocks whose counters live in `counter` (for page
    /// re-encryption events).
    ///
    /// # Panics
    ///
    /// Panics if `counter` is not a counter block.
    pub fn data_blocks_of_counter(&self, counter: BlockAddr) -> impl Iterator<Item = BlockAddr> {
        let off = self.counter_offset(counter);
        let per = self.cfg.mode.data_blocks_per_counter_block();
        let first = off * per;
        let last = ((off + 1) * per).min(self.data_blocks);
        (first..last).map(BlockAddr::new)
    }

    /// Slot (0..8) of a counter block's HMAC within its leaf tree node,
    /// for partial writes to tree nodes.
    ///
    /// # Panics
    ///
    /// Panics if `counter` is not a counter block.
    pub fn child_slot_of_counter(&self, counter: BlockAddr) -> u8 {
        self.mod_arity(self.counter_offset(counter)) as u8
    }

    /// Slot (0..8) of a tree node's HMAC within its parent node. Debug
    /// builds panic when `node` is not a tree node.
    pub fn child_slot_of_tree(&self, node: BlockAddr) -> u8 {
        let (_, off) = self.tree_position(node);
        self.mod_arity(off) as u8
    }

    /// The eight hash blocks covering one 4 KB data page (updated wholesale
    /// during page re-encryption).
    pub fn hash_blocks_of_page(&self, page: u64) -> impl Iterator<Item = BlockAddr> + '_ {
        let first_data = page * maps_trace::BLOCKS_PER_PAGE;
        (0..8).map(move |i| self.hash_block_of(BlockAddr::new(first_data + i * 8)))
    }

    fn counter_offset(&self, counter: BlockAddr) -> u64 {
        let i = counter.index();
        debug_assert!(
            (self.counter_base..self.counter_base + self.counter_blocks).contains(&i),
            "{counter} is not a counter block"
        );
        i.saturating_sub(self.counter_base)
    }

    /// `(level, offset within level)` of a tree node. Debug builds panic
    /// when `block` is not a tree node; release builds answer with the
    /// leaf-level origin rather than aborting the walk.
    pub fn tree_position(&self, block: BlockAddr) -> (usize, u64) {
        let i = block.index();
        for (level, (&base, &size)) in self.tree_bases.iter().zip(&self.tree_sizes).enumerate() {
            if (base..base + size).contains(&i) {
                return (level, i - base);
            }
        }
        debug_assert!(false, "{block} is not a tree node");
        (0, 0)
    }
}

/// Iterator over a counter's tree walk, leaf to topmost in-memory level.
#[derive(Debug, Clone)]
pub struct TreePath<'a> {
    layout: &'a Layout,
    next: Option<BlockAddr>,
}

impl Iterator for TreePath<'_> {
    type Item = BlockAddr;

    fn next(&mut self) -> Option<BlockAddr> {
        let cur = self.next?;
        self.next = self.layout.tree_parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pi() -> Layout {
        Layout::new(SecureConfig::poison_ivy(16 << 20)) // 16 MB
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let l = small_pi();
        assert!(l.counter_base == l.data_blocks());
        assert!(l.hash_base == l.counter_base + l.counter_blocks());
        let tree_start = l.hash_base + l.hash_blocks();
        assert_eq!(l.tree_bases[0], tree_start);
        for w in l.tree_bases.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn kind_classification_round_trips() {
        let l = small_pi();
        let data = BlockAddr::new(100);
        assert_eq!(l.kind_of(data), BlockKind::Data);
        assert_eq!(l.kind_of(l.counter_block_of(data)), BlockKind::Counter);
        assert_eq!(l.kind_of(l.hash_block_of(data)), BlockKind::Hash);
        let leaf = l.tree_leaf_of(l.counter_block_of(data));
        assert_eq!(l.kind_of(leaf), BlockKind::Tree(0));
    }

    #[test]
    fn pi_16mb_geometry() {
        let l = small_pi();
        // 16 MB = 4096 pages -> 4096 counter blocks; 262144 data blocks ->
        // 32768 hash blocks; tree: 512, 64, 8 in memory, then the on-chip
        // root hashes the eight level-2 nodes.
        assert_eq!(l.counter_blocks(), 4096);
        assert_eq!(l.hash_blocks(), 32768);
        assert_eq!(l.tree_levels(), 3);
        assert_eq!(l.tree_level_size(0), 512);
        assert_eq!(l.tree_level_size(1), 64);
        assert_eq!(l.tree_level_size(2), 8);
    }

    #[test]
    fn walk_terminates_below_root() {
        let l = small_pi();
        let ctr = l.counter_block_of(BlockAddr::new(0));
        let path: Vec<_> = l.tree_path_of_counter(ctr).collect();
        assert_eq!(path.len(), l.tree_levels());
        // Levels ascend 0, 1, 2, ...
        for (i, node) in path.iter().enumerate() {
            assert_eq!(l.kind_of(*node), BlockKind::Tree(i as u8));
        }
        // Top node's parent is the on-chip root.
        assert_eq!(l.tree_parent(*path.last().unwrap()), None);
    }

    #[test]
    fn table2_data_protected_poison_ivy() {
        let l = small_pi();
        assert_eq!(l.data_protected_by(BlockKind::Counter), 4096); // 4KB
        assert_eq!(l.data_protected_by(BlockKind::Hash), 512); // 0.5KB
                                                               // Tree level l covers 4 * 8^(l+1) KB: leaves 32KB, parents 256KB...
        assert_eq!(l.data_protected_by(BlockKind::Tree(0)), 32 << 10);
        assert_eq!(l.data_protected_by(BlockKind::Tree(1)), 256 << 10);
        assert_eq!(l.data_protected_by(BlockKind::Tree(2)), 2 << 20);
    }

    #[test]
    fn table2_data_protected_sgx() {
        let l = Layout::new(SecureConfig::sgx(16 << 20));
        assert_eq!(l.data_protected_by(BlockKind::Counter), 512);
        assert_eq!(l.data_protected_by(BlockKind::Hash), 512);
        // Tree level l covers 512 * 8^(l+1) B: leaves 4KB, parents 32KB...
        assert_eq!(l.data_protected_by(BlockKind::Tree(0)), 4 << 10);
        assert_eq!(l.data_protected_by(BlockKind::Tree(1)), 32 << 10);
    }

    #[test]
    fn siblings_share_parents() {
        let l = small_pi();
        // Counter blocks 0..8 share one leaf; 8 shares the next.
        let c0 = BlockAddr::new(l.counter_base);
        let c7 = BlockAddr::new(l.counter_base + 7);
        let c8 = BlockAddr::new(l.counter_base + 8);
        assert_eq!(l.tree_leaf_of(c0), l.tree_leaf_of(c7));
        assert_ne!(l.tree_leaf_of(c0), l.tree_leaf_of(c8));
        // But both leaves share a grandparent region eventually.
        let p0 = l.tree_parent(l.tree_leaf_of(c0)).unwrap();
        let p8 = l.tree_parent(l.tree_leaf_of(c8)).unwrap();
        assert_eq!(p0, p8);
    }

    #[test]
    fn data_blocks_of_counter_covers_page() {
        let l = small_pi();
        let data = BlockAddr::new(130);
        let ctr = l.counter_block_of(data);
        let blocks: Vec<_> = l.data_blocks_of_counter(ctr).collect();
        assert_eq!(blocks.len(), 64);
        assert!(blocks.contains(&data));
        assert!(blocks.iter().all(|b| l.counter_block_of(*b) == ctr));
    }

    #[test]
    fn metadata_overhead_reasonable_for_pi() {
        let l = small_pi();
        // counters 1/64 + hashes 1/8 + tree ~1/512 of data.
        let o = l.metadata_overhead();
        assert!(o > 0.14 && o < 0.15, "overhead {o}");
    }

    #[test]
    fn sgx_has_more_counter_blocks_than_pi() {
        let pi = small_pi();
        let sgx = Layout::new(SecureConfig::sgx(16 << 20));
        assert_eq!(sgx.counter_blocks(), 8 * pi.counter_blocks());
        assert!(sgx.tree_levels() >= pi.tree_levels());
    }

    #[test]
    #[should_panic(expected = "outside protected memory")]
    fn out_of_range_data_block_panics() {
        let l = small_pi();
        l.counter_block_of(BlockAddr::new(l.data_blocks()));
    }

    #[test]
    #[should_panic(expected = "not a tree node")]
    fn tree_position_rejects_non_tree() {
        let l = small_pi();
        l.tree_position(BlockAddr::new(0));
    }

    #[test]
    fn hash_slots_cycle() {
        let l = small_pi();
        assert_eq!(l.hash_slot_of(BlockAddr::new(0)), 0);
        assert_eq!(l.hash_slot_of(BlockAddr::new(7)), 7);
        assert_eq!(l.hash_slot_of(BlockAddr::new(8)), 0);
    }

    #[test]
    fn tiny_memory_has_single_level_tree() {
        // 64 KB: 16 counter blocks -> one leaf level of 2 nodes, then root.
        let l = Layout::new(SecureConfig::poison_ivy(64 << 10));
        assert_eq!(l.counter_blocks(), 16);
        assert_eq!(l.tree_levels(), 1);
        assert_eq!(l.tree_level_size(0), 2);
        let ctr = BlockAddr::new(l.counter_base);
        assert_eq!(l.tree_path_of_counter(ctr).count(), 1);
    }
}
