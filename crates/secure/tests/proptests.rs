//! Property tests for the secure-memory layout and counter state.

#![cfg(feature = "heavy-tests")]

use maps_secure::{CounterMode, CounterStore, Layout, SecureConfig, WriteOutcome};
use maps_trace::{BlockAddr, BlockKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_block_classifies_into_exactly_one_region(
        mem_pages in 16u64..2048,
        probe in 0u64..5_000_000,
    ) {
        let layout = Layout::new(SecureConfig::poison_ivy(mem_pages * 4096));
        let total = layout.data_blocks() + layout.metadata_blocks();
        let block = BlockAddr::new(probe % total);
        // kind_of must not panic for any in-range block, and regions are
        // recovered consistently.
        let kind = layout.kind_of(block);
        match kind {
            BlockKind::Data => prop_assert!(block.index() < layout.data_blocks()),
            BlockKind::Counter | BlockKind::Hash | BlockKind::Tree(_) => {
                prop_assert!(block.index() >= layout.data_blocks());
            }
        }
    }

    #[test]
    fn tree_paths_ascend_levels_and_shrink(
        mem_pages in 64u64..4096,
        data in 0u64..1_000_000,
    ) {
        let layout = Layout::new(SecureConfig::poison_ivy(mem_pages * 4096));
        let ctr = layout.counter_block_of(BlockAddr::new(data % layout.data_blocks()));
        let path: Vec<_> = layout.tree_path_of_counter(ctr).collect();
        prop_assert_eq!(path.len(), layout.tree_levels());
        for (level, node) in path.iter().enumerate() {
            let (l, off) = layout.tree_position(*node);
            prop_assert_eq!(l, level);
            prop_assert!(off < layout.tree_level_size(level));
        }
        // Level sizes shrink by the arity.
        for l in 1..layout.tree_levels() {
            prop_assert!(layout.tree_level_size(l) < layout.tree_level_size(l - 1));
        }
    }

    #[test]
    fn siblings_converge_to_shared_ancestors(
        mem_pages in 64u64..1024,
        a in 0u64..500_000,
        b in 0u64..500_000,
    ) {
        let layout = Layout::new(SecureConfig::poison_ivy(mem_pages * 4096));
        let ca = layout.counter_block_of(BlockAddr::new(a % layout.data_blocks()));
        let cb = layout.counter_block_of(BlockAddr::new(b % layout.data_blocks()));
        let pa: Vec<_> = layout.tree_path_of_counter(ca).collect();
        let pb: Vec<_> = layout.tree_path_of_counter(cb).collect();
        // Once the paths meet they must stay together (tree property).
        let mut met = false;
        for (x, y) in pa.iter().zip(&pb) {
            if met {
                prop_assert_eq!(x, y, "paths diverged after meeting");
            }
            met = met || x == y;
        }
    }

    #[test]
    fn data_protected_grows_with_tree_level(
        mem_pages in 256u64..4096,
        level in 0u8..4,
    ) {
        for cfg in [
            SecureConfig::poison_ivy(mem_pages * 4096),
            SecureConfig::sgx(mem_pages * 4096),
        ] {
            let layout = Layout::new(cfg);
            let child = layout.data_protected_by(BlockKind::Tree(level));
            let parent = layout.data_protected_by(BlockKind::Tree(level + 1));
            prop_assert_eq!(parent, 8 * child);
        }
    }

    #[test]
    fn split_counter_overflows_exactly_every_128_writes(
        block in 0u64..10_000,
        extra in 1u64..127,
    ) {
        let mut store = CounterStore::new(CounterMode::SplitPi);
        let b = BlockAddr::new(block);
        let mut overflows = 0;
        for _ in 0..(256 + extra) {
            if matches!(store.record_write(b), WriteOutcome::PageOverflow { .. }) {
                overflows += 1;
            }
        }
        prop_assert_eq!(overflows, store.overflows());
        prop_assert_eq!(overflows, 2);
        prop_assert_eq!(store.block_counter(b), extra);
    }

    #[test]
    fn sgx_counter_is_exact_write_count(
        writes in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut store = CounterStore::new(CounterMode::SgxMonolithic);
        for &w in &writes {
            prop_assert_eq!(store.record_write(BlockAddr::new(w)), WriteOutcome::Incremented);
        }
        for target in 0u64..64 {
            let expect = writes.iter().filter(|&&w| w == target).count() as u64;
            prop_assert_eq!(store.block_counter(BlockAddr::new(target)), expect);
        }
    }

    #[test]
    fn hash_slots_partition_data_blocks(data in 0u64..1_000_000u64) {
        let layout = Layout::new(SecureConfig::poison_ivy(256 << 20));
        let block = BlockAddr::new(data % layout.data_blocks());
        let slot = layout.hash_slot_of(block);
        prop_assert!(slot < 8);
        prop_assert_eq!(u64::from(slot), block.index() % 8);
    }
}
