//! Property tests for the packed capture encoding: arbitrary event
//! sequences must round-trip through [`TraceBuilder`] →
//! [`CapturedTrace::events`] exactly, for any warm-up boundary placement.

#![cfg(feature = "heavy-tests")]

use maps_sim::{CapturedEvent, FrontEndKey, MemEvent, SimConfig, TraceBuilder};
use maps_trace::{BlockAddr, TenantId};
use proptest::prelude::*;

fn to_event(block: u64, tenant: u8, write: bool) -> MemEvent {
    if write {
        MemEvent::Write(BlockAddr::new(block), TenantId(tenant))
    } else {
        MemEvent::Read(BlockAddr::new(block), TenantId(tenant))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(
        raw in prop::collection::vec(
            (0u64..(1 << 42), any::<u8>(), any::<bool>(), 0u64..10_000),
            1..300,
        ),
        boundary in 0usize..300,
        tail in 0u64..1_000,
    ) {
        let key = FrontEndKey::of(&SimConfig::paper_default());
        let boundary = boundary % (raw.len() + 1);
        let mut builder = TraceBuilder::new("prop", 0, key);
        for (i, &(block, tenant, write, icount)) in raw.iter().enumerate() {
            if i == boundary {
                builder.mark_warmup_end();
            }
            builder.push(to_event(block, tenant, write), icount);
        }
        if boundary == raw.len() {
            builder.mark_warmup_end();
        }
        let trace = builder.finish(tail);

        prop_assert_eq!(trace.total_events(), raw.len() as u64);
        prop_assert_eq!(trace.warmup_events(), boundary as u64);
        prop_assert_eq!(trace.tail_icount(), tail);
        let decoded: Vec<CapturedEvent> = trace.events().collect();
        prop_assert_eq!(decoded.len(), raw.len());
        for (got, &(block, tenant, write, icount)) in decoded.iter().zip(&raw) {
            prop_assert_eq!(got.event, to_event(block, tenant, write));
            prop_assert_eq!(got.icount_delta, icount);
        }
    }

    #[test]
    fn adjacent_blocks_pack_densely(
        start in 0u64..(1 << 30),
        len in 1usize..200,
    ) {
        // Sequential block streams with small icount deltas are the common
        // case; each event must fit in a few bytes.
        let key = FrontEndKey::of(&SimConfig::paper_default());
        let mut builder = TraceBuilder::new("dense", 0, key);
        builder.mark_warmup_end();
        for i in 0..len as u64 {
            builder.push(MemEvent::Read(BlockAddr::new(start + i), TenantId::HOST), 3);
        }
        let trace = builder.finish(0);
        // First event pays for the absolute position; the rest are 2 bytes
        // (icount varint + delta-1 word).
        prop_assert!(trace.encoded_len() <= 10 + 2 * len);
    }
}
