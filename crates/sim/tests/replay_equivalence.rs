//! Capture/replay equivalence: a [`ReplaySim`] pass over a recorded front
//! end must reproduce the direct [`SecureSim`] report **bit-identically**
//! (every counter, every energy term) across benchmarks and engine
//! configurations. This is what licenses the sweep harnesses to replay one
//! capture at every back-end point.

use maps_secure::CounterMode;
use maps_sim::{
    CapturedTrace, MdcConfig, RecordingObserver, ReplaySim, SecureSim, SimConfig, SimReport,
};
use maps_workloads::Benchmark;

const SEED: u64 = 0x4D415053;
const ACCESSES: u64 = 25_000;

const BENCHES: [Benchmark; 5] = [
    Benchmark::Canneal,
    Benchmark::Gups,
    Benchmark::Libquantum,
    Benchmark::Mcf,
    Benchmark::Fft,
];

fn direct(cfg: &SimConfig, bench: Benchmark) -> SimReport {
    SecureSim::new(cfg.clone(), bench.build(SEED)).run(ACCESSES)
}

fn replayed(cfg: &SimConfig, bench: Benchmark) -> SimReport {
    let trace = CapturedTrace::record(cfg, bench.build(SEED), ACCESSES);
    ReplaySim::new(cfg.clone(), &trace).run()
}

fn assert_equivalent(cfg: &SimConfig, label: &str) {
    for bench in BENCHES {
        let d = direct(cfg, bench);
        let r = replayed(cfg, bench);
        assert_eq!(
            d, r,
            "{label}/{bench}: replay diverged from direct simulation"
        );
        // Belt and braces on the derived metrics the figures consume.
        assert_eq!(
            d.metadata_mpki().to_bits(),
            r.metadata_mpki().to_bits(),
            "{label}/{bench}"
        );
        assert_eq!(d.ed2().to_bits(), r.ed2().to_bits(), "{label}/{bench}");
    }
}

#[test]
fn secure_default_matches() {
    assert_equivalent(&SimConfig::paper_default(), "secure");
}

#[test]
fn insecure_baseline_matches() {
    assert_equivalent(&SimConfig::insecure_baseline(), "insecure");
}

#[test]
fn mdc_disabled_matches() {
    let cfg = SimConfig::paper_default().with_mdc(MdcConfig::disabled());
    assert_equivalent(&cfg, "mdc-disabled");
}

#[test]
fn sgx_counter_mode_matches() {
    let mut cfg = SimConfig::paper_default();
    cfg.counter_mode = CounterMode::SgxMonolithic;
    assert_equivalent(&cfg, "sgx");
}

#[test]
fn zero_warmup_matches() {
    let mut cfg = SimConfig::paper_default();
    cfg.warmup_fraction = 0.0;
    assert_equivalent(&cfg, "no-warmup");
}

#[test]
fn one_capture_serves_many_backends() {
    // The point of the layer: one front-end recording, every back-end
    // variation replayed on top of it, each matching its direct twin.
    let base = SimConfig::paper_default();
    let trace = CapturedTrace::record(&base, Benchmark::Canneal.build(SEED), ACCESSES);
    let variants = [
        base.clone(),
        base.with_mdc(base.mdc.with_size(1 << 20)),
        base.with_mdc(MdcConfig::disabled()),
        SimConfig {
            speculation: false,
            ..base.clone()
        },
        SimConfig::insecure_baseline(),
    ];
    for cfg in variants {
        let d = direct(&cfg, Benchmark::Canneal);
        let r = ReplaySim::new(cfg.clone(), &trace).run();
        assert_eq!(
            d, r,
            "shared-capture replay diverged (mdc {})",
            cfg.mdc.size_bytes
        );
    }
}

#[test]
fn observed_replay_sees_identical_metadata_stream() {
    let cfg = SimConfig::paper_default();
    let mut direct_rec = RecordingObserver::new();
    SecureSim::new(cfg.clone(), Benchmark::Libquantum.build(SEED))
        .run_observed(ACCESSES, &mut direct_rec);
    let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(SEED), ACCESSES);
    let mut replay_rec = RecordingObserver::new();
    ReplaySim::new(cfg, &trace).run_observed(&mut replay_rec);
    assert_eq!(direct_rec.records, replay_rec.records);
}

#[test]
fn scalar_replay_matches_direct() {
    // `run()` above exercises the batched engine; the scalar reference
    // loop must independently reproduce the direct simulation too, so
    // batched ≡ scalar ≡ direct forms a closed triangle.
    let cfg = SimConfig::paper_default();
    for bench in BENCHES {
        let d = direct(&cfg, bench);
        let trace = CapturedTrace::record(&cfg, bench.build(SEED), ACCESSES);
        let s = ReplaySim::new(cfg.clone(), &trace).run_scalar();
        assert_eq!(d, s, "{bench}: scalar replay diverged from direct");
    }
}

#[test]
fn every_batch_size_matches_scalar() {
    // Equivalence must hold wherever batch boundaries fall, including
    // size 1 (degenerate), sizes around the default, the maximum, and an
    // out-of-range request (clamped to the maximum).
    let cfg = SimConfig::paper_default();
    let trace = CapturedTrace::record(&cfg, Benchmark::Mcf.build(SEED), ACCESSES);
    let scalar = ReplaySim::new(cfg.clone(), &trace).run_scalar();
    for batch in [1usize, 2, 7, 64, 255, 256, 257, 511, 512, usize::MAX] {
        let b = ReplaySim::new(cfg.clone(), &trace)
            .with_batch_size(batch)
            .run();
        assert_eq!(b, scalar, "batch size {batch} diverged from scalar");
    }
}

#[test]
fn scalar_observed_sees_identical_metadata_stream() {
    let cfg = SimConfig::paper_default();
    let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(SEED), ACCESSES);
    let mut batched_rec = RecordingObserver::new();
    ReplaySim::new(cfg.clone(), &trace).run_observed(&mut batched_rec);
    let mut scalar_rec = RecordingObserver::new();
    ReplaySim::new(cfg, &trace).run_scalar_observed(&mut scalar_rec);
    assert_eq!(batched_rec.records, scalar_rec.records);
}
