//! Regression tests for the eviction-driven update-cascade path of the
//! metadata engine (`MetadataEngine::process_eviction`): dirty metadata
//! evictions propagate integrity updates to their parent structure, those
//! updates may evict further dirty lines (re-entry), processing is LIFO
//! and inline, and the whole cascade is bounded by the hardware budget.

use maps_secure::SecureConfig;
use maps_sim::{CacheContents, MdcConfig, MetadataEngine, PolicyChoice, RecordingObserver};
use maps_trace::{AccessKind, BlockAddr, BlockKind, MetaAccess};

/// Hardware update-buffer bound baked into the engine (Section IV-E
/// modelling choice); cascades deeper than this are written through.
const CASCADE_BUDGET: u64 = 64;

/// A one-set metadata cache holding counters and tree nodes only, so
/// every fill contends with dirty metadata and cascades are easy to form.
fn tiny_mdc(ways: usize) -> MdcConfig {
    let mut cfg = MdcConfig::paper_default().with_size(64 * ways as u64);
    cfg.ways = ways;
    cfg.policy = PolicyChoice::TrueLru;
    cfg.contents = CacheContents {
        counters: true,
        hashes: false,
        tree: true,
    };
    cfg
}

fn engine(mdc: &MdcConfig) -> MetadataEngine {
    MetadataEngine::new(SecureConfig::poison_ivy(16 << 20), mdc, 200, 40, true)
}

fn kinds(rec: &RecordingObserver) -> Vec<(BlockKind, AccessKind)> {
    rec.records.iter().map(|r| (r.kind, r.access)).collect()
}

#[test]
fn dirty_counter_eviction_emits_leaf_update_inline() {
    // One cold write in a 2-way single-set cache: the counter fills dirty,
    // the tree walk's second level evicts it (LRU), and the eviction's
    // leaf update must appear in the observed stream *inside* the walk —
    // before the walk's next level is read — not deferred to the end.
    let mut e = engine(&tiny_mdc(2));
    let mut rec = RecordingObserver::new();
    let d0 = BlockAddr::new(0);
    e.handle_write(d0, &mut rec);

    let leaf = e.layout().tree_leaf_of(e.layout().counter_block_of(d0));
    let stream = kinds(&rec);
    let leaf_update = rec
        .records
        .iter()
        .position(|r| {
            r.block == leaf && r.kind == BlockKind::Tree(0) && r.access == AccessKind::Write
        })
        .expect("dirty counter eviction must emit a Tree(0) update to its leaf");
    // The walk continues past the eviction: a deeper tree level is read
    // *after* the inline update.
    assert!(
        rec.records[leaf_update + 1..]
            .iter()
            .any(|r| matches!(r.kind, BlockKind::Tree(l) if l > 0) && r.access == AccessKind::Read),
        "leaf update was not emitted inline during the walk: {stream:?}"
    );
    assert_eq!(e.stats().max_cascade_depth, 1);
    // Exactly one dirty metadata writeback so far (the evicted counter).
    assert_eq!(
        e.stats().dram_meta.writes,
        1 + 1,
        "counter writeback + bypassed hash write"
    );
}

#[test]
fn cascade_reenters_on_dirty_victims_and_orders_lifo() {
    // Hammer writes across many far-apart pages through a 2-way cache:
    // leaf updates evict dirty lines whose own updates evict further dirty
    // lines. The engine must (a) observe re-entrant cascades (depth ≥ 2)
    // and (b) process each victim LIFO: a victim's parent update is
    // emitted before any earlier queue entry's update.
    let mut e = engine(&tiny_mdc(2));
    let mut rec = RecordingObserver::new();
    for i in 0..600u64 {
        // Spread across pages and tree subtrees.
        e.handle_write(BlockAddr::new((i * 6151) % (1 << 18)), &mut rec);
    }
    assert!(
        e.stats().max_cascade_depth >= 2,
        "expected re-entrant cascades, deepest was {}",
        e.stats().max_cascade_depth
    );
    assert!(e.stats().max_cascade_depth <= CASCADE_BUDGET);

    // LIFO ordering invariant on the observed stream: every Tree(level)
    // write immediately following a Tree(level-1) write within one cascade
    // is the parent of that Tree(level-1) block (the freshest victim is
    // processed first, so parent updates appear deepest-last chains).
    let writes: Vec<&MetaAccess> = rec
        .records
        .iter()
        .filter(|r| r.access == AccessKind::Write && matches!(r.kind, BlockKind::Tree(_)))
        .collect();
    let mut chained = 0;
    for pair in writes.windows(2) {
        let (BlockKind::Tree(a), BlockKind::Tree(b)) = (pair[0].kind, pair[1].kind) else {
            continue;
        };
        if b == a + 1 {
            assert_eq!(
                e.layout().tree_parent(pair[0].block),
                Some(pair[1].block),
                "consecutive Tree({a})→Tree({b}) writes must be a child/parent chain (LIFO)"
            );
            chained += 1;
        }
    }
    assert!(chained > 0, "stream never exhibited a cascade chain");
}

#[test]
fn cascade_depth_never_exceeds_budget_and_writes_through_beyond() {
    // Stress with the most eviction-prone geometry (1 way) and verify the
    // bound holds; beyond the budget the engine must still terminate and
    // write updates through to memory.
    let mut e = engine(&tiny_mdc(1));
    let mut rec = RecordingObserver::new();
    for i in 0..2000u64 {
        e.handle_write(BlockAddr::new((i * 2677) % (1 << 18)), &mut rec);
    }
    assert!(e.stats().max_cascade_depth <= CASCADE_BUDGET);
    assert!(e.stats().max_cascade_depth >= 1);
    // Dirty evictions always hit memory exactly once each.
    assert!(e.stats().dram_meta.writes > 0);
}

#[test]
fn clean_victims_produce_no_writebacks_or_updates() {
    // Read-only traffic leaves every cached line clean; evictions must be
    // silent: no Tree writes in the stream, no dirty cascades, and the
    // only metadata DRAM writes are none at all.
    let mut e = engine(&tiny_mdc(2));
    let mut rec = RecordingObserver::new();
    for i in 0..400u64 {
        e.handle_read(BlockAddr::new((i * 6151) % (1 << 18)), &mut rec);
    }
    assert_eq!(e.stats().max_cascade_depth, 0);
    assert_eq!(e.stats().dram_meta.writes, 0);
    assert!(
        rec.records.iter().all(|r| r.access == AccessKind::Read),
        "read-only traffic emitted a metadata write"
    );
}

#[test]
fn flush_drains_remaining_dirty_lines_exactly_once() {
    // After a write burst, flushing must write back every resident dirty
    // line (and only those), propagating each one's tree update through.
    let mut e = engine(&tiny_mdc(8));
    let mut rec = RecordingObserver::new();
    for i in 0..100u64 {
        e.handle_write(BlockAddr::new(i * 64), &mut rec);
    }
    let before = e.stats().dram_meta.writes;
    let mut flush_rec = RecordingObserver::new();
    e.flush(&mut flush_rec);
    let flushed = e.stats().dram_meta.writes - before;
    assert!(flushed > 0, "burst left no dirty lines resident?");
    // Every flush-driven observation is a write-through tree update.
    assert!(flush_rec
        .records
        .iter()
        .all(|r| r.access == AccessKind::Write && matches!(r.kind, BlockKind::Tree(_))));
    // A second flush is a no-op: the cache was drained.
    let again = e.stats().dram_meta.writes;
    e.flush(&mut maps_sim::NullObserver);
    assert_eq!(e.stats().dram_meta.writes, again);
}
