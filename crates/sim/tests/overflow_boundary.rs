//! Counter-overflow boundary regression: drive a single data block's
//! 7-bit split counter to saturation and verify that the 128th write —
//! and only the 128th write — triggers a page re-encryption touching
//! exactly the predicted blocks, with exactly the predicted DRAM traffic.

use maps_secure::SecureConfig;
use maps_sim::{MdcConfig, MetadataEngine, NullObserver, RecordingObserver};
use maps_trace::{AccessKind, BlockAddr, BlockKind, BLOCKS_PER_PAGE};

/// Uncached engine: every metadata touch is observable and deterministic.
fn uncached_engine() -> MetadataEngine {
    MetadataEngine::new(
        SecureConfig::poison_ivy(16 << 20),
        &MdcConfig::disabled(),
        200,
        40,
        true,
    )
}

#[test]
fn counter_saturates_at_127_and_overflows_on_the_128th_write() {
    let mut e = uncached_engine();
    let d = BlockAddr::new(70); // page 1, slot 6
    for i in 1..=127u64 {
        e.handle_write(d, &mut NullObserver);
        assert_eq!(e.counters().block_counter(d), i);
        assert_eq!(
            e.stats().page_overflows,
            0,
            "premature overflow at write {i}"
        );
    }
    e.handle_write(d, &mut NullObserver);
    assert_eq!(e.stats().page_overflows, 1);
    assert_eq!(e.counters().overflows(), 1);
    assert_eq!(e.counters().block_counter(d), 0, "block counter resets");
    assert_eq!(e.counters().page_counter(1), 1, "page counter bumps");
}

#[test]
fn overflow_write_touches_exactly_the_predicted_blocks() {
    let mut e = uncached_engine();
    let d = BlockAddr::new(70);
    let page = d.page().index();
    for _ in 0..127 {
        e.handle_write(d, &mut NullObserver);
    }

    let mut rec = RecordingObserver::new();
    e.handle_write(d, &mut rec);

    // Predicted stream, in controller order:
    // 1. re-encryption rewrites every hash block covering the page,
    // 2. the RMW of the data block's counter block,
    // 3. the eager write-through of every tree level above it,
    // 4. the single hash-slot update for the data write itself.
    let layout = e.layout();
    let mut expected: Vec<(BlockAddr, BlockKind, AccessKind)> = layout
        .hash_blocks_of_page(page)
        .map(|hb| (hb, BlockKind::Hash, AccessKind::Write))
        .collect();
    let counter = layout.counter_block_of(d);
    expected.push((counter, BlockKind::Counter, AccessKind::Write));
    let mut node = layout.tree_leaf_of(counter);
    let mut level = 0u8;
    loop {
        expected.push((node, BlockKind::Tree(level), AccessKind::Write));
        match layout.tree_parent(node) {
            Some(parent) => {
                node = parent;
                level += 1;
            }
            None => break,
        }
    }
    expected.push((layout.hash_block_of(d), BlockKind::Hash, AccessKind::Write));

    let observed: Vec<(BlockAddr, BlockKind, AccessKind)> = rec
        .records
        .iter()
        .map(|r| (r.block, r.kind, r.access))
        .collect();
    assert_eq!(observed, expected);
}

#[test]
fn overflow_write_moves_exactly_the_predicted_dram_traffic() {
    let mut e = uncached_engine();
    let d = BlockAddr::new(70);
    for _ in 0..127 {
        e.handle_write(d, &mut NullObserver);
    }
    let before = *e.stats();
    e.handle_write(d, &mut NullObserver);
    let after = *e.stats();

    // Data: re-encryption reads and rewrites the whole page; the
    // triggering writeback itself adds one more data write.
    assert_eq!(
        after.dram_data.reads - before.dram_data.reads,
        BLOCKS_PER_PAGE
    );
    assert_eq!(
        after.dram_data.writes - before.dram_data.writes,
        BLOCKS_PER_PAGE + 1
    );
    // Metadata (uncached): 8 full hash-block writes (no fetch), plus a
    // read+write RMW for the counter block and for each of the 3 tree
    // levels and the final hash slot.
    let hash_blocks = BLOCKS_PER_PAGE / 8;
    let rmw_ops = 1 + 3 + 1; // counter + tree levels + hash slot
    assert_eq!(after.dram_meta.reads - before.dram_meta.reads, rmw_ops);
    assert_eq!(
        after.dram_meta.writes - before.dram_meta.writes,
        hash_blocks + rmw_ops
    );
}

#[test]
fn overflow_resets_sibling_counters_in_the_same_page_only() {
    let mut e = uncached_engine();
    let sibling = BlockAddr::new(65); // page 1, slot 1
    let other_page = BlockAddr::new(3); // page 0
    e.handle_write(sibling, &mut NullObserver);
    e.handle_write(other_page, &mut NullObserver);

    let d = BlockAddr::new(70); // page 1
    for _ in 0..128 {
        e.handle_write(d, &mut NullObserver);
    }
    assert_eq!(e.stats().page_overflows, 1);
    assert_eq!(
        e.counters().block_counter(sibling),
        0,
        "sibling in the overflowed page must reset"
    );
    assert_eq!(
        e.counters().block_counter(other_page),
        1,
        "blocks in other pages must be untouched"
    );
    assert_eq!(e.counters().page_counter(0), 0);
}

#[test]
fn cached_overflow_installs_rewritten_hash_blocks() {
    // With a metadata cache that admits hashes, the page re-encryption's
    // full-block hash writes allocate directly (no write-allocate fetch):
    // immediately after the overflow, every hash block of the page is
    // resident and a re-read of any of them hits.
    let mdc = MdcConfig::paper_default();
    let mut e = MetadataEngine::new(SecureConfig::poison_ivy(16 << 20), &mdc, 200, 40, true);
    let d = BlockAddr::new(70);
    for _ in 0..128 {
        e.handle_write(d, &mut NullObserver);
    }
    assert_eq!(e.stats().page_overflows, 1);
    let before = e.stats().meta.kind(BlockKind::Hash);
    // A read of the overflowed block checks its hash: must hit.
    e.handle_read(d, &mut NullObserver);
    let after = e.stats().meta.kind(BlockKind::Hash);
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses);
}
