//! Metrics-collecting engine observer.
//!
//! [`MetricsProbe`] implements [`MetaObserver`](crate::engine::MetaObserver)
//! with flat fixed-size arrays on the hot path — no string formatting, no
//! map lookups — and converts to a named [`maps_obs::Metrics`] snapshot
//! only at [`MetricsProbe::export`] time. Because it observes the engine
//! through the same hooks `NullObserver` compiles away, attaching it
//! cannot change simulation outcomes, only record them; the
//! instrumented-replay-equivalence test pins that property.

use maps_trace::{AccessKind, BlockKind, MetaAccess};

use crate::engine::MetaObserver;

/// Tree depth the probe tracks per level; deeper levels (which a 16 TB
/// footprint would need before exceeding) fold into the last bucket.
const MAX_TREE_LEVELS: usize = 24;

/// Per-event metric accumulator for one engine run.
///
/// # Examples
///
/// ```
/// use maps_sim::MetricsProbe;
/// use maps_sim::engine::MetaObserver;
/// let mut probe = MetricsProbe::new();
/// probe.walk_complete(2, 5);
/// probe.speculation(120, 30);
/// let mut metrics = maps_obs::Metrics::new();
/// probe.export("engine", &mut metrics);
/// assert_eq!(metrics.counter_value("engine.speculation.hidden_cycles"), 120);
/// ```
#[derive(Debug, Clone)]
pub struct MetricsProbe {
    /// Reads then writes for data / counter / hash / tree.
    kind_reads: [u64; 4],
    kind_writes: [u64; 4],
    /// Accesses per BMT level (leaf = 0); the paper's Figure 6 quantity.
    tree_level_accesses: [u64; MAX_TREE_LEVELS],
    walk_depth: maps_obs::Histogram,
    cascade_depth: maps_obs::Histogram,
    walks: u64,
    cascades: u64,
    hidden_cycles: u64,
    exposed_cycles: u64,
    speculations: u64,
}

impl MetricsProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self {
            kind_reads: [0; 4],
            kind_writes: [0; 4],
            tree_level_accesses: [0; MAX_TREE_LEVELS],
            walk_depth: maps_obs::Histogram::new(),
            cascade_depth: maps_obs::Histogram::new(),
            walks: 0,
            cascades: 0,
            hidden_cycles: 0,
            exposed_cycles: 0,
            speculations: 0,
        }
    }

    fn kind_index(kind: BlockKind) -> usize {
        match kind {
            BlockKind::Data => 0,
            BlockKind::Counter => 1,
            BlockKind::Hash => 2,
            BlockKind::Tree(_) => 3,
        }
    }

    /// Total metadata accesses observed.
    pub fn observed(&self) -> u64 {
        self.kind_reads.iter().sum::<u64>() + self.kind_writes.iter().sum::<u64>()
    }

    /// Converts the accumulated state into named metrics under `prefix`.
    ///
    /// Zero counters are skipped so snapshots stay proportional to what
    /// the run actually exercised.
    pub fn export<S: maps_obs::MetricSink>(&self, prefix: &str, sink: &mut S) {
        const KIND_NAMES: [&str; 4] = ["data", "counter", "hash", "tree"];
        for (name, (&reads, &writes)) in KIND_NAMES
            .iter()
            .zip(self.kind_reads.iter().zip(&self.kind_writes))
        {
            if reads != 0 {
                sink.counter_add(&format!("{prefix}.access.{name}.reads"), reads);
            }
            if writes != 0 {
                sink.counter_add(&format!("{prefix}.access.{name}.writes"), writes);
            }
        }
        for (level, &count) in self.tree_level_accesses.iter().enumerate() {
            if count != 0 {
                sink.counter_add(&format!("{prefix}.tree_level.{level}.accesses"), count);
            }
        }
        for (value, count) in [
            ("walks", self.walks),
            ("cascades", self.cascades),
            ("speculation.events", self.speculations),
            ("speculation.hidden_cycles", self.hidden_cycles),
            ("speculation.exposed_cycles", self.exposed_cycles),
        ] {
            if count != 0 {
                sink.counter_add(&format!("{prefix}.{value}"), count);
            }
        }
        for (name, hist) in [
            ("walk_depth", &self.walk_depth),
            ("cascade_depth", &self.cascade_depth),
        ] {
            if hist.count() != 0 {
                sink.hist_merge(&format!("{prefix}.{name}"), hist);
            }
        }
    }
}

impl Default for MetricsProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaObserver for MetricsProbe {
    #[inline]
    fn observe(&mut self, access: &MetaAccess) {
        let idx = Self::kind_index(access.kind);
        match access.access {
            AccessKind::Read => self.kind_reads[idx] += 1,
            AccessKind::Write => self.kind_writes[idx] += 1,
        }
        if let BlockKind::Tree(level) = access.kind {
            let slot = (level as usize).min(MAX_TREE_LEVELS - 1);
            self.tree_level_accesses[slot] += 1;
        }
    }

    #[inline]
    fn walk_complete(&mut self, levels_fetched: u64, _path_len: u64) {
        self.walks += 1;
        self.walk_depth.record(levels_fetched);
    }

    #[inline]
    fn cascade_complete(&mut self, depth: u64) {
        self.cascades += 1;
        self.cascade_depth.record(depth);
    }

    #[inline]
    fn speculation(&mut self, hidden_cycles: u64, exposed_cycles: u64) {
        self.speculations += 1;
        self.hidden_cycles += hidden_cycles;
        self.exposed_cycles += exposed_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::BlockAddr;

    fn access(kind: BlockKind, access: AccessKind) -> MetaAccess {
        MetaAccess::new(BlockAddr::new(0), kind, access)
    }

    #[test]
    fn kinds_and_levels_are_bucketed() {
        let mut p = MetricsProbe::new();
        p.observe(&access(BlockKind::Counter, AccessKind::Read));
        p.observe(&access(BlockKind::Tree(0), AccessKind::Read));
        p.observe(&access(BlockKind::Tree(3), AccessKind::Write));
        assert_eq!(p.observed(), 3);
        let mut m = maps_obs::Metrics::new();
        p.export("e", &mut m);
        assert_eq!(m.counter_value("e.access.counter.reads"), 1);
        assert_eq!(m.counter_value("e.access.tree.reads"), 1);
        assert_eq!(m.counter_value("e.access.tree.writes"), 1);
        assert_eq!(m.counter_value("e.tree_level.0.accesses"), 1);
        assert_eq!(m.counter_value("e.tree_level.3.accesses"), 1);
    }

    #[test]
    fn deep_tree_levels_fold_into_last_bucket() {
        let mut p = MetricsProbe::new();
        p.observe(&access(BlockKind::Tree(200), AccessKind::Read));
        let mut m = maps_obs::Metrics::new();
        p.export("e", &mut m);
        let last = MAX_TREE_LEVELS - 1;
        assert_eq!(m.counter_value(&format!("e.tree_level.{last}.accesses")), 1);
    }

    #[test]
    fn walk_and_cascade_histograms_survive_export() {
        let mut p = MetricsProbe::new();
        p.walk_complete(0, 4);
        p.walk_complete(3, 4);
        p.cascade_complete(2);
        p.speculation(100, 7);
        let mut m = maps_obs::Metrics::new();
        p.export("e", &mut m);
        assert_eq!(m.counter_value("e.walks"), 2);
        assert_eq!(m.counter_value("e.cascades"), 1);
        assert_eq!(m.counter_value("e.speculation.hidden_cycles"), 100);
        assert_eq!(m.counter_value("e.speculation.exposed_cycles"), 7);
        let h = m.histogram("e.walk_depth").expect("histogram exported");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_probe_exports_nothing() {
        let p = MetricsProbe::new();
        let mut m = maps_obs::Metrics::new();
        p.export("e", &mut m);
        assert_eq!(m.counters().count(), 0);
    }
}
