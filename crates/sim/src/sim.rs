//! The end-to-end secure-memory simulation.

use maps_mem::{EnergyDelay, SramModel};
use maps_secure::SecureConfig;
use maps_workloads::Workload;

use crate::engine::{MetaObserver, MetadataEngine, NullObserver};
use crate::hierarchy::{Hierarchy, HierarchyStats, MemEvent};
use crate::{SimConfig, SimReport};

/// Assembles the measured-window report: cycles, hierarchy counters, engine
/// statistics, and the full energy model. Shared verbatim by the direct
/// [`SecureSim`] path and the capture/replay path
/// ([`ReplaySim`](crate::ReplaySim)) so the two produce bit-identical
/// reports from identical inputs. Instructions come from the hierarchy
/// counters — the single source of truth for retired-instruction counts.
pub(crate) fn build_report(
    cfg: &SimConfig,
    workload: &str,
    cycles: u64,
    hierarchy: &HierarchyStats,
    engine: Option<&MetadataEngine>,
    insecure_dram: &maps_mem::DramCounters,
) -> SimReport {
    let engine_stats = engine.map(|e| *e.stats()).unwrap_or_default();
    let mut energy = EnergyDelay::new();
    energy.add_cycles(cycles);

    // DRAM dynamic energy: every block transfer at 150 pJ/bit, plus
    // background power over the window.
    let dram_transfers = if engine.is_some() {
        engine_stats.dram_total()
    } else {
        insecure_dram.total()
    };
    energy.add_dram_pj(dram_transfers as f64 * cfg.dram.block_transfer_energy_pj());
    energy.add_static_pj(cfg.dram.background_energy_pj(cycles));

    // SRAM dynamic energy per level: accesses × capacity-scaled cost.
    let l1 = SramModel::new(cfg.l1_bytes);
    let l2 = SramModel::new(cfg.l2_bytes);
    let llc = SramModel::new(cfg.llc_bytes);
    energy.add_sram_pj(hierarchy.accesses as f64 * l1.block_access_energy_pj());
    energy.add_sram_pj(hierarchy.l1_misses as f64 * l2.block_access_energy_pj());
    energy.add_sram_pj(hierarchy.l2_misses as f64 * llc.block_access_energy_pj());
    energy.add_static_pj(llc.leakage_energy_pj(cycles));
    if cfg.mdc.size_bytes > 0 && engine.is_some() {
        let mdc = SramModel::new(cfg.mdc.size_bytes);
        let meta_accesses = engine_stats.meta.metadata_total().accesses;
        energy.add_sram_pj(meta_accesses as f64 * mdc.block_access_energy_pj());
        energy.add_static_pj(mdc.leakage_energy_pj(cycles));
    }

    // Per-tenant breakdown: one row per tenant that touched the metadata
    // cache, ascending by id (the table iterates in id order, so capture
    // and direct paths serialize identical rows).
    let tenants = engine
        .and_then(MetadataEngine::mdc)
        .map(|mdc| {
            let table = mdc.tenant_stats();
            table
                .tenants()
                .map(|t| crate::TenantMdcStats {
                    tenant: t,
                    meta: table.stats(t),
                    occupancy: table.occupancy(t),
                })
                .collect()
        })
        .unwrap_or_default();

    SimReport {
        workload: workload.to_string(),
        instructions: hierarchy.instructions,
        cycles,
        hierarchy: *hierarchy,
        engine: engine_stats,
        tenants,
        energy,
    }
}

/// Drives a workload through the hierarchy and metadata engine, producing
/// a [`SimReport`].
///
/// The run is split into a warm-up phase (statistics discarded, observer
/// muted) and a measured phase, mirroring the paper's 50 M-instruction
/// cache warm-up.
///
/// # Examples
///
/// ```
/// use maps_sim::{SecureSim, SimConfig};
/// use maps_workloads::Benchmark;
///
/// let mut sim = SecureSim::new(SimConfig::paper_default(), Benchmark::Gups.build(7));
/// let report = sim.run(10_000);
/// assert!(report.metadata_mpki() > 0.0);
/// ```
pub struct SecureSim<W> {
    cfg: SimConfig,
    workload: W,
    hierarchy: Hierarchy,
    engine: Option<MetadataEngine>,
    cycles: u64,
    events: Vec<MemEvent>,
    /// DRAM transfers in insecure mode (no engine to count them).
    insecure_dram: maps_mem::DramCounters,
}

impl<W: Workload> SecureSim<W> {
    /// Builds a simulation; protected memory is automatically grown to the
    /// workload's footprint when the configured size is smaller.
    pub fn new(cfg: SimConfig, workload: W) -> Self {
        let memory_bytes = cfg.memory_bytes.max(workload.footprint_bytes()).max(4096);
        let secure_cfg = SecureConfig::new(
            memory_bytes.next_multiple_of(maps_trace::PAGE_BYTES),
            cfg.counter_mode,
        );
        let engine = cfg.secure.then(|| {
            MetadataEngine::with_speculation_window(
                secure_cfg,
                &cfg.mdc,
                cfg.dram.latency_cycles,
                cfg.hash_latency,
                cfg.speculation,
                cfg.speculation_window,
            )
        });
        Self {
            hierarchy: Hierarchy::new(&cfg),
            engine,
            cfg,
            workload,
            cycles: 0,
            events: Vec::with_capacity(8),
            insecure_dram: maps_mem::DramCounters::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The metadata engine (if secure memory is enabled).
    pub fn engine(&self) -> Option<&MetadataEngine> {
        self.engine.as_ref()
    }

    /// Executes one core access outside [`SecureSim::run`]'s
    /// warm-up/measure framing, feeding `obs` the metadata stream. This is
    /// the lockstep hook the differential oracle drives: the oracle
    /// executes the same access on its side and cross-checks the observed
    /// streams, cycles, and statistics after every step.
    pub fn step_observed<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        self.step(obs);
    }

    /// Cycles accumulated so far (differential lockstep hook).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Flushes the metadata engine's cache, feeding `obs` the final
    /// writeback stream (differential lockstep hook).
    pub fn flush_observed<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        if let Some(engine) = &mut self.engine {
            engine.flush(obs);
        }
    }

    /// Hierarchy statistics so far (differential lockstep hook).
    pub fn hierarchy_stats(&self) -> &HierarchyStats {
        self.hierarchy.stats()
    }

    /// Runs `accesses` core accesses (including warm-up) and reports.
    pub fn run(&mut self, accesses: u64) -> SimReport {
        self.run_observed(accesses, &mut NullObserver)
    }

    /// Runs with an observer on the measured phase's metadata stream.
    pub fn run_observed<O: MetaObserver + ?Sized>(
        &mut self,
        accesses: u64,
        obs: &mut O,
    ) -> SimReport {
        let warmup = (accesses as f64 * self.cfg.warmup_fraction) as u64;
        for _ in 0..warmup {
            self.step(&mut NullObserver);
        }
        self.reset_stats();
        for _ in warmup..accesses {
            self.step(obs);
        }
        self.report()
    }

    /// Executes one core access.
    fn step<O: MetaObserver + ?Sized>(&mut self, obs: &mut O) {
        let access = self.workload.next_access();
        let tenant = self.workload.current_tenant();
        self.cycles += u64::from(access.icount); // base CPI of 1
        self.hierarchy
            .access_from(&access, tenant, &mut self.events);
        // Writebacks first (they are buffered off the critical path),
        // then the demand read contributes its stall.
        let events = std::mem::take(&mut self.events);
        for event in &events {
            match (event, &mut self.engine) {
                (MemEvent::Write(block, t), Some(engine)) => {
                    engine.handle_write_from(*block, *t, obs)
                }
                (MemEvent::Read(block, t), Some(engine)) => {
                    self.cycles += engine.handle_read_from(*block, *t, obs);
                }
                (MemEvent::Write(..), None) => self.insecure_dram.writes += 1,
                (MemEvent::Read(..), None) => {
                    self.insecure_dram.reads += 1;
                    self.cycles += self.cfg.dram.latency_cycles;
                }
            }
        }
        self.events = events;
    }

    fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        if let Some(engine) = &mut self.engine {
            engine.reset_stats();
        }
        self.cycles = 0;
        self.insecure_dram = maps_mem::DramCounters::default();
    }

    /// Builds the report for the measured window.
    fn report(&self) -> SimReport {
        build_report(
            &self.cfg,
            self.workload.name(),
            self.cycles,
            self.hierarchy.stats(),
            self.engine.as_ref(),
            &self.insecure_dram,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheContents, MdcConfig};
    use maps_workloads::Benchmark;

    fn quick(cfg: SimConfig, bench: Benchmark, n: u64) -> SimReport {
        SecureSim::new(cfg, bench.build(11)).run(n)
    }

    #[test]
    fn memory_intensive_workloads_exceed_mpki_threshold() {
        // Section III: the paper focuses on benchmarks with LLC MPKI > 10.
        for bench in [Benchmark::Canneal, Benchmark::Gups, Benchmark::Mcf] {
            let r = quick(SimConfig::paper_default(), bench, 60_000);
            assert!(r.llc_mpki() > 10.0, "{bench}: LLC MPKI {:.1}", r.llc_mpki());
        }
    }

    #[test]
    fn cache_resident_workload_has_low_mpki() {
        let r = quick(SimConfig::paper_default(), Benchmark::Perl, 60_000);
        assert!(r.llc_mpki() < 10.0, "perl LLC MPKI {:.1}", r.llc_mpki());
    }

    #[test]
    fn secure_memory_costs_energy_and_time() {
        let secure = quick(SimConfig::paper_default(), Benchmark::Gups, 40_000);
        let insecure = quick(SimConfig::insecure_baseline(), Benchmark::Gups, 40_000);
        assert!(secure.energy.total_pj() > insecure.energy.total_pj());
        assert!(secure.cycles >= insecure.cycles);
        assert!(secure.ed2() > insecure.ed2());
    }

    #[test]
    fn metadata_cache_reduces_dram_traffic() {
        let with = quick(SimConfig::paper_default(), Benchmark::Libquantum, 60_000);
        let without = quick(
            SimConfig::paper_default().with_mdc(MdcConfig::disabled()),
            Benchmark::Libquantum,
            60_000,
        );
        assert!(
            with.engine.dram_meta.total() < without.engine.dram_meta.total() / 2,
            "with: {}, without: {}",
            with.engine.dram_meta.total(),
            without.engine.dram_meta.total()
        );
    }

    #[test]
    fn bigger_metadata_cache_never_hurts_misses_much() {
        let small = quick(
            SimConfig::paper_default().with_mdc(MdcConfig::paper_default().with_size(16 << 10)),
            Benchmark::Libquantum,
            60_000,
        );
        let large = quick(
            SimConfig::paper_default().with_mdc(MdcConfig::paper_default().with_size(1 << 20)),
            Benchmark::Libquantum,
            60_000,
        );
        assert!(large.metadata_mpki() <= small.metadata_mpki() * 1.05);
    }

    #[test]
    fn caching_all_types_beats_counters_only_for_streaming() {
        let base = SimConfig::paper_default();
        let all = quick(
            base.with_mdc(
                base.mdc
                    .with_contents(CacheContents::ALL)
                    .with_size(64 << 10),
            ),
            Benchmark::Libquantum,
            60_000,
        );
        let ctrs = quick(
            base.with_mdc(
                base.mdc
                    .with_contents(CacheContents::COUNTERS_ONLY)
                    .with_size(64 << 10),
            ),
            Benchmark::Libquantum,
            60_000,
        );
        assert!(
            all.metadata_mpki() < ctrs.metadata_mpki(),
            "all-types {:.1} vs counters-only {:.1}",
            all.metadata_mpki(),
            ctrs.metadata_mpki()
        );
    }

    #[test]
    fn observer_sees_measured_phase_stream() {
        use maps_analysis::GroupedReuseProfiler;
        let mut sim = SecureSim::new(
            SimConfig::paper_default().with_mdc(MdcConfig::disabled()),
            Benchmark::Libquantum.build(3),
        );
        let mut profiler = GroupedReuseProfiler::new();
        sim.run_observed(30_000, &mut profiler);
        assert!(profiler.combined().accesses() > 0);
    }

    #[test]
    fn report_totals_are_consistent() {
        let r = quick(SimConfig::paper_default(), Benchmark::Fft, 30_000);
        let meta = r.engine.meta.metadata_total();
        assert_eq!(meta.accesses, meta.hits + meta.misses);
        assert!(r.instructions > 0);
        assert!(r.cycles >= r.instructions);
    }
}
