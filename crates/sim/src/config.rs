//! Simulation configuration (Table I defaults).

use maps_cache::policy::AnyPolicy;
use maps_cache::Partition;
use maps_mem::DramModel;
use maps_secure::{CounterMode, SecureConfig};

/// Which metadata types the metadata cache may hold (Figure 1 evaluates
/// three of these combinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheContents {
    /// Counters may be cached.
    pub counters: bool,
    /// Data hashes may be cached.
    pub hashes: bool,
    /// Tree nodes may be cached.
    pub tree: bool,
}

impl CacheContents {
    /// Cache every metadata type (the paper's recommendation).
    pub const ALL: CacheContents = CacheContents {
        counters: true,
        hashes: true,
        tree: true,
    };
    /// Counters only (Rogers et al.-style counter cache).
    pub const COUNTERS_ONLY: CacheContents = CacheContents {
        counters: true,
        hashes: false,
        tree: false,
    };
    /// Counters and hashes, no tree.
    pub const COUNTERS_AND_HASHES: CacheContents = CacheContents {
        counters: true,
        hashes: true,
        tree: false,
    };
    /// Nothing cacheable (metadata-cache-less baseline used for the reuse
    /// characterization in Figures 3–5).
    pub const NONE: CacheContents = CacheContents {
        counters: false,
        hashes: false,
        tree: false,
    };

    /// Whether a metadata kind is admitted.
    pub fn admits(&self, kind: maps_trace::BlockKind) -> bool {
        match kind {
            maps_trace::BlockKind::Counter => self.counters,
            maps_trace::BlockKind::Hash => self.hashes,
            maps_trace::BlockKind::Tree(_) => self.tree,
            maps_trace::BlockKind::Data => false,
        }
    }

    /// Label used in Figure 1 rows.
    pub fn label(&self) -> &'static str {
        match (self.counters, self.hashes, self.tree) {
            (true, true, true) => "all",
            (true, true, false) => "counters+hashes",
            (true, false, false) => "counters",
            (false, false, false) => "none",
            (true, false, true) => "counters+tree",
            (false, true, true) => "hashes+tree",
            (false, true, false) => "hashes",
            (false, false, true) => "tree",
        }
    }
}

/// Replacement policy selection for the metadata cache.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyChoice {
    /// Tree pseudo-LRU (default hardware baseline).
    PseudoLru,
    /// Exact LRU.
    TrueLru,
    /// FIFO.
    Fifo,
    /// Seeded random.
    Random(u64),
    /// SRRIP.
    Srrip,
    /// EVA.
    Eva,
    /// Belady MIN with the given recorded key trace as its oracle
    /// (keyed, divergence-tolerant lookup).
    Min(Vec<u64>),
    /// Belady MIN with the paper's positional oracle, whose future
    /// knowledge silently goes stale after trace divergence (Section V-B).
    TraceMin(Vec<u64>),
    /// Cost-aware, type-aware eviction with the given relative counter
    /// miss cost (Section VI's future-work direction).
    CostAware(u64),
    /// DRRIP set-dueling insertion.
    Drrip,
    /// EVA with per-metadata-type histograms (extension of Section V-A).
    EvaPerType,
}

impl PolicyChoice {
    /// Instantiates the policy.
    pub fn build(&self) -> AnyPolicy {
        match self {
            PolicyChoice::PseudoLru => AnyPolicy::pseudo_lru(),
            PolicyChoice::TrueLru => AnyPolicy::true_lru(),
            PolicyChoice::Fifo => AnyPolicy::fifo(),
            PolicyChoice::Random(seed) => AnyPolicy::random(*seed),
            PolicyChoice::Srrip => AnyPolicy::srrip(),
            PolicyChoice::Eva => AnyPolicy::eva(),
            PolicyChoice::Min(trace) => AnyPolicy::min_from_trace(trace),
            PolicyChoice::TraceMin(trace) => AnyPolicy::trace_min_from_trace(trace),
            PolicyChoice::CostAware(cost) => AnyPolicy::cost_aware(*cost),
            PolicyChoice::Drrip => AnyPolicy::drrip(),
            PolicyChoice::EvaPerType => AnyPolicy::eva_per_type(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyChoice::PseudoLru => "pseudo-lru",
            PolicyChoice::TrueLru => "true-lru",
            PolicyChoice::Fifo => "fifo",
            PolicyChoice::Random(_) => "random",
            PolicyChoice::Srrip => "srrip",
            PolicyChoice::Eva => "eva",
            PolicyChoice::Min(_) => "min",
            PolicyChoice::TraceMin(_) => "trace-min",
            PolicyChoice::CostAware(_) => "cost-aware",
            PolicyChoice::Drrip => "drrip",
            PolicyChoice::EvaPerType => "eva-per-type",
        }
    }
}

/// Partitioning mode for the metadata cache (Figure 7 and the
/// multi-tenant scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// No partition: all types compete for all ways.
    None,
    /// Static counter/hash way split.
    Static(Partition),
    /// Set dueling between two candidate splits.
    Dynamic {
        /// First competing split.
        a: Partition,
        /// Second competing split.
        b: Partition,
        /// Leader sets per side.
        leaders_per_side: usize,
    },
    /// Static per-tenant split: each tenant's fills are confined to an
    /// even share of the ways (set-associative design) or to a frame
    /// quota (randomized design). Hits stay range-unrestricted.
    PerTenant {
        /// Number of tenants sharing the cache.
        tenants: usize,
    },
}

/// Structural design of the metadata cache.
///
/// The paper's design is a conventional set-associative cache; the
/// randomized alternative is a MIRAGE-style fully-associative cache with
/// keyed tag indexing and global-random eviction, evaluated by the
/// occupancy-channel scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdcDesign {
    /// Conventional set-associative cache (the paper's design).
    SetAssoc,
    /// Fully-associative randomized cache
    /// ([`RandomizedCache`](maps_cache::RandomizedCache)). Replacement
    /// policy and counter/hash partitioning knobs are structural no-ops
    /// under this design; `PerTenant` partitioning maps to a frame quota.
    Randomized {
        /// Seed keying the skew hashes and the eviction RNG.
        seed: u64,
    },
}

impl MdcDesign {
    /// Display name used in manifests and figure rows.
    pub fn name(&self) -> &'static str {
        match self {
            MdcDesign::SetAssoc => "set-assoc",
            MdcDesign::Randomized { .. } => "randomized",
        }
    }
}

/// Metadata cache configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MdcConfig {
    /// Capacity in bytes; 0 disables the metadata cache entirely.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Which types may be cached.
    pub contents: CacheContents,
    /// Replacement policy.
    pub policy: PolicyChoice,
    /// Partitioning mode.
    pub partition: PartitionMode,
    /// Enable partial writes for hash/tree updates (Section IV-E).
    pub partial_writes: bool,
    /// Structural design (set-associative vs randomized).
    pub design: MdcDesign,
}

impl MdcConfig {
    /// 64 KB, 8-way, all types, pseudo-LRU, no partition — the
    /// configuration Figure 6 centres on.
    pub fn paper_default() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 8,
            contents: CacheContents::ALL,
            policy: PolicyChoice::PseudoLru,
            partition: PartitionMode::None,
            partial_writes: false,
            design: MdcDesign::SetAssoc,
        }
    }

    /// Disables the metadata cache (every metadata access goes to DRAM).
    pub fn disabled() -> Self {
        Self {
            size_bytes: 0,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different capacity.
    pub fn with_size(&self, size_bytes: u64) -> Self {
        Self {
            size_bytes,
            ..self.clone()
        }
    }

    /// Returns a copy with different contents.
    pub fn with_contents(&self, contents: CacheContents) -> Self {
        Self {
            contents,
            ..self.clone()
        }
    }

    /// Returns a copy with a different policy.
    pub fn with_policy(&self, policy: PolicyChoice) -> Self {
        Self {
            policy,
            ..self.clone()
        }
    }

    /// Returns a copy with a different partitioning mode.
    pub fn with_partition(&self, partition: PartitionMode) -> Self {
        Self {
            partition,
            ..self.clone()
        }
    }

    /// Returns a copy with a different structural design.
    pub fn with_design(&self, design: MdcDesign) -> Self {
        Self {
            design,
            ..self.clone()
        }
    }
}

/// Full simulation configuration; defaults follow Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// L1 data cache size in bytes (32 KB, 8-way in Table I).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 size in bytes (256 KB, 8-way).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// LLC size in bytes (2 MB, 8-way).
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Protected memory size in bytes (sized to the workload when larger).
    pub memory_bytes: u64,
    /// Counter organization.
    pub counter_mode: CounterMode,
    /// Metadata cache configuration.
    pub mdc: MdcConfig,
    /// DRAM model.
    pub dram: DramModel,
    /// Hash (HMAC/AES) pipeline latency in cycles (Table I: 40).
    pub hash_latency: u64,
    /// Whether the core speculates around integrity verification
    /// (PoisonIvy \[12\]); Figures assume it does.
    pub speculation: bool,
    /// Maximum verification latency (cycles) the speculation mechanism can
    /// hide; `u64::MAX` (the default) models an unbounded window, `0`
    /// behaves like no speculation.
    pub speculation_window: u64,
    /// Whether secure memory is enabled at all (off = insecure baseline
    /// used for normalization in Figures 2 and 7).
    pub secure: bool,
    /// Fraction of the run treated as warm-up (statistics reset after it).
    pub warmup_fraction: f64,
}

impl SimConfig {
    /// Table I configuration: 32 KB L1, 256 KB L2, 2 MB LLC (all 8-way),
    /// 4 GB memory, 40-cycle hash latency, split counters, speculation on,
    /// 64 KB all-types pseudo-LRU metadata cache.
    pub fn paper_default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            llc_bytes: 2 * 1024 * 1024,
            llc_ways: 8,
            memory_bytes: 4 << 30,
            counter_mode: CounterMode::SplitPi,
            mdc: MdcConfig::paper_default(),
            dram: DramModel::paper_default(),
            hash_latency: 40,
            speculation: true,
            speculation_window: u64::MAX,
            secure: true,
            warmup_fraction: 0.1,
        }
    }

    /// The insecure-memory baseline used for Figure 2/7 normalization:
    /// same hierarchy, secure memory off.
    pub fn insecure_baseline() -> Self {
        Self {
            secure: false,
            mdc: MdcConfig::disabled(),
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different LLC capacity.
    pub fn with_llc_bytes(&self, llc_bytes: u64) -> Self {
        Self {
            llc_bytes,
            ..self.clone()
        }
    }

    /// Returns a copy with a different metadata cache configuration.
    pub fn with_mdc(&self, mdc: MdcConfig) -> Self {
        Self {
            mdc,
            ..self.clone()
        }
    }

    /// The secure-memory configuration implied by this simulation config.
    pub fn secure_config(&self) -> SecureConfig {
        SecureConfig::new(self.memory_bytes, self.counter_mode)
    }

    /// The configuration as JSON for run manifests. Every field that can
    /// change a simulation outcome appears, so two manifests with equal
    /// `config` sections describe reproducible runs.
    pub fn to_json(&self) -> maps_obs::Json {
        use maps_obs::Json;
        let partition = match &self.mdc.partition {
            PartitionMode::None => Json::Obj(vec![("mode".into(), Json::Str("none".into()))]),
            PartitionMode::Static(p) => Json::Obj(vec![
                ("mode".into(), Json::Str("static".into())),
                (
                    "counter_ways".into(),
                    Json::UInt(p.counter_way_count() as u64),
                ),
            ]),
            PartitionMode::Dynamic {
                a,
                b,
                leaders_per_side,
            } => Json::Obj(vec![
                ("mode".into(), Json::Str("dynamic".into())),
                (
                    "a_counter_ways".into(),
                    Json::UInt(a.counter_way_count() as u64),
                ),
                (
                    "b_counter_ways".into(),
                    Json::UInt(b.counter_way_count() as u64),
                ),
                (
                    "leaders_per_side".into(),
                    Json::UInt(*leaders_per_side as u64),
                ),
            ]),
            PartitionMode::PerTenant { tenants } => Json::Obj(vec![
                ("mode".into(), Json::Str("per-tenant".into())),
                ("tenants".into(), Json::UInt(*tenants as u64)),
            ]),
        };
        let design = match self.mdc.design {
            MdcDesign::SetAssoc => Json::Obj(vec![("kind".into(), Json::Str("set-assoc".into()))]),
            MdcDesign::Randomized { seed } => Json::Obj(vec![
                ("kind".into(), Json::Str("randomized".into())),
                ("seed".into(), Json::UInt(seed)),
            ]),
        };
        let mdc = Json::Obj(vec![
            ("size_bytes".into(), Json::UInt(self.mdc.size_bytes)),
            ("ways".into(), Json::UInt(self.mdc.ways as u64)),
            (
                "contents".into(),
                Json::Str(self.mdc.contents.label().into()),
            ),
            ("policy".into(), Json::Str(self.mdc.policy.name().into())),
            ("partition".into(), partition),
            ("partial_writes".into(), Json::Bool(self.mdc.partial_writes)),
            ("design".into(), design),
        ]);
        let counter_mode = match self.counter_mode {
            CounterMode::SplitPi => "split-pi",
            CounterMode::SgxMonolithic => "sgx-monolithic",
        };
        Json::Obj(vec![
            ("l1_bytes".into(), Json::UInt(self.l1_bytes)),
            ("l1_ways".into(), Json::UInt(self.l1_ways as u64)),
            ("l2_bytes".into(), Json::UInt(self.l2_bytes)),
            ("l2_ways".into(), Json::UInt(self.l2_ways as u64)),
            ("llc_bytes".into(), Json::UInt(self.llc_bytes)),
            ("llc_ways".into(), Json::UInt(self.llc_ways as u64)),
            ("memory_bytes".into(), Json::UInt(self.memory_bytes)),
            ("counter_mode".into(), Json::Str(counter_mode.into())),
            ("mdc".into(), mdc),
            (
                "dram_latency_cycles".into(),
                Json::UInt(self.dram.latency_cycles),
            ),
            ("hash_latency".into(), Json::UInt(self.hash_latency)),
            ("speculation".into(), Json::Bool(self.speculation)),
            (
                "speculation_window".into(),
                Json::UInt(self.speculation_window),
            ),
            ("secure".into(), Json::Bool(self.secure)),
            ("warmup_fraction".into(), Json::Float(self.warmup_fraction)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::BlockKind;

    #[test]
    fn table1_defaults() {
        let c = SimConfig::paper_default();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 256 * 1024);
        assert_eq!(c.llc_bytes, 2 * 1024 * 1024);
        assert_eq!((c.l1_ways, c.l2_ways, c.llc_ways), (8, 8, 8));
        assert_eq!(c.memory_bytes, 4 << 30);
        assert_eq!(c.hash_latency, 40);
        assert!(c.speculation);
    }

    #[test]
    fn contents_admission() {
        assert!(CacheContents::ALL.admits(BlockKind::Tree(2)));
        assert!(!CacheContents::COUNTERS_ONLY.admits(BlockKind::Hash));
        assert!(CacheContents::COUNTERS_AND_HASHES.admits(BlockKind::Hash));
        assert!(!CacheContents::COUNTERS_AND_HASHES.admits(BlockKind::Tree(0)));
        assert!(!CacheContents::ALL.admits(BlockKind::Data));
        assert_eq!(CacheContents::ALL.label(), "all");
    }

    #[test]
    fn policy_choice_builds() {
        for p in [
            PolicyChoice::PseudoLru,
            PolicyChoice::TrueLru,
            PolicyChoice::Eva,
            PolicyChoice::Min(vec![1, 2, 3]),
        ] {
            let _ = p.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn insecure_baseline_disables_everything() {
        let c = SimConfig::insecure_baseline();
        assert!(!c.secure);
        assert_eq!(c.mdc.size_bytes, 0);
    }

    #[test]
    fn config_json_round_trips_and_names_the_policy() {
        let c = SimConfig::paper_default();
        let j = c.to_json();
        let text = j.to_pretty();
        let parsed = maps_obs::Json::parse(&text).expect("config JSON parses");
        assert_eq!(parsed.get("llc_bytes").unwrap().as_u64(), Some(2 << 20));
        let mdc = parsed.get("mdc").unwrap();
        assert_eq!(mdc.get("policy").unwrap().as_str(), Some("pseudo-lru"));
        assert_eq!(
            mdc.get("partition").unwrap().get("mode").unwrap().as_str(),
            Some("none")
        );
        assert_eq!(
            mdc.get("design").unwrap().get("kind").unwrap().as_str(),
            Some("set-assoc")
        );
    }

    #[test]
    fn design_and_tenant_partition_appear_in_json() {
        let mut c = SimConfig::paper_default();
        c.mdc = c
            .mdc
            .with_design(MdcDesign::Randomized { seed: 42 })
            .with_partition(PartitionMode::PerTenant { tenants: 3 });
        assert_eq!(c.mdc.design.name(), "randomized");
        let parsed = maps_obs::Json::parse(&c.to_json().to_pretty()).unwrap();
        let mdc = parsed.get("mdc").unwrap();
        let design = mdc.get("design").unwrap();
        assert_eq!(design.get("kind").unwrap().as_str(), Some("randomized"));
        assert_eq!(design.get("seed").unwrap().as_u64(), Some(42));
        let partition = mdc.get("partition").unwrap();
        assert_eq!(partition.get("mode").unwrap().as_str(), Some("per-tenant"));
        assert_eq!(partition.get("tenants").unwrap().as_u64(), Some(3));
    }
}
