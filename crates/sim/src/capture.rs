//! Capture-once / replay-many front-end memoization.
//!
//! The front end of a run — workload generation plus the L1/L2/LLC
//! hierarchy — depends only on the workload (benchmark + seed), the access
//! count, the cache geometry, and the warm-up split. Nothing the metadata
//! engine does feeds back into it. Every sweep that varies only back-end
//! parameters (metadata cache size, policy, contents, partitioning,
//! counter mode, speculation, DRAM timing) therefore re-simulates an
//! identical front end at every point.
//!
//! [`CapturedTrace`] records that front end once: the LLC miss/writeback
//! event stream in a packed varint encoding (read/write bit + block-address
//! delta + retired-instruction delta per event), the warm-up boundary, and
//! the measured-phase hierarchy statistics. [`ReplaySim`] then drives the
//! metadata engine (or the insecure-baseline accounting) straight off the
//! capture, reproducing the direct [`SecureSim`](crate::SecureSim) report
//! **bit-identically** — same stats reset at the warm-up marker, same event
//! ordering, same energy accounting. `crates/sim/tests/replay_equivalence.rs`
//! proves the identity across benchmarks and engine configurations.
//!
//! Cost model: a direct sweep is O(points × accesses); with capture it is
//! O(front-ends × accesses + points × LLC-events), and LLC events are
//! typically 10–100× sparser than core accesses.
//!
//! # Examples
//!
//! ```
//! use maps_sim::{CapturedTrace, ReplaySim, SecureSim, SimConfig};
//! use maps_workloads::Benchmark;
//!
//! let cfg = SimConfig::paper_default();
//! let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(7), 10_000);
//! let replayed = ReplaySim::new(cfg.clone(), &trace).run();
//! let direct = SecureSim::new(cfg, Benchmark::Gups.build(7)).run(10_000);
//! assert_eq!(replayed, direct);
//! ```

use maps_workloads::Workload;

use crate::engine::{MetaObserver, MetadataEngine, NullObserver};
use crate::hierarchy::{Hierarchy, HierarchyStats, MemEvent};
use crate::sim::build_report;
use crate::{SimConfig, SimReport};

/// The front-end parameters a capture is valid for. Replaying against a
/// configuration whose front end differs would silently produce events the
/// direct simulation never would, so [`ReplaySim::new`] checks this key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontEndKey {
    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// `warmup_fraction` bit pattern (bitwise comparison; the fraction
    /// decides where the stats-reset marker falls).
    pub warmup_fraction_bits: u64,
}

impl FrontEndKey {
    /// Extracts the front-end key from a simulation configuration.
    pub fn of(cfg: &SimConfig) -> Self {
        Self {
            l1_bytes: cfg.l1_bytes,
            l1_ways: cfg.l1_ways,
            l2_bytes: cfg.l2_bytes,
            l2_ways: cfg.l2_ways,
            llc_bytes: cfg.llc_bytes,
            llc_ways: cfg.llc_ways,
            warmup_fraction_bits: cfg.warmup_fraction.to_bits(),
        }
    }
}

/// One decoded event with the instructions retired since the previous
/// event (the first event of a core access carries that access's icount
/// plus any event-less accesses before it; trailing events carry 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedEvent {
    /// The memory-controller event.
    pub event: MemEvent,
    /// Instructions retired since the previous event in the stream.
    pub icount_delta: u64,
}

/// A recorded front-end pass: the packed LLC event stream, the warm-up
/// boundary, and the measured-phase hierarchy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedTrace {
    workload: String,
    footprint_bytes: u64,
    accesses: u64,
    front_end: FrontEndKey,
    /// Varint-packed events: per event an icount delta, then
    /// `(zigzag(block_delta) << 1) | write_bit`.
    bytes: Vec<u8>,
    total_events: u64,
    /// Events before the warm-up boundary (statistics reset after them).
    warmup_events: u64,
    /// Instructions retired after the last measured event.
    tail_icount: u64,
    /// Hierarchy statistics of the measured window.
    hierarchy: HierarchyStats,
}

impl CapturedTrace {
    /// Runs the front end once — workload through the hierarchy for
    /// `accesses` core accesses, with `cfg`'s geometry and warm-up split —
    /// and records the resulting event stream.
    ///
    /// Only front-end fields of `cfg` matter here; the metadata cache,
    /// DRAM, and security settings are free to differ at replay time.
    pub fn record<W: Workload>(cfg: &SimConfig, mut workload: W, accesses: u64) -> Self {
        let warmup = (accesses as f64 * cfg.warmup_fraction) as u64;
        let mut builder = TraceBuilder::new(
            workload.name(),
            workload.footprint_bytes(),
            FrontEndKey::of(cfg),
        );
        let mut hierarchy = Hierarchy::new(cfg);
        let mut events = Vec::with_capacity(8);
        let mut pending_icount = 0u64;
        if warmup == 0 {
            builder.mark_warmup_end();
        }
        for i in 0..accesses {
            let access = workload.next_access();
            pending_icount += u64::from(access.icount);
            hierarchy.access(&access, &mut events);
            for event in &events {
                builder.push(*event, std::mem::take(&mut pending_icount));
            }
            if i + 1 == warmup {
                // The stats reset discards warm-up instruction counts, so
                // icount pending from event-less warm-up accesses must not
                // leak into the first measured event's delta.
                pending_icount = 0;
                hierarchy.reset_stats();
                builder.mark_warmup_end();
            }
        }
        builder.accesses = accesses;
        builder.hierarchy = *hierarchy.stats();
        builder.finish(pending_icount)
    }

    /// Iterator over the decoded event stream (warm-up events first).
    pub fn events(&self) -> EventCursor<'_> {
        EventCursor {
            bytes: &self.bytes,
            pos: 0,
            prev_block: 0,
            remaining: self.total_events,
        }
    }

    /// Workload name the capture was recorded from.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The workload footprint, needed to size protected memory exactly as
    /// [`SecureSim::new`](crate::SecureSim::new) would.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Core accesses the capture covers (including warm-up).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total events in the stream.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Events belonging to the warm-up phase.
    pub fn warmup_events(&self) -> u64 {
        self.warmup_events
    }

    /// Instructions retired after the last measured event.
    pub fn tail_icount(&self) -> u64 {
        self.tail_icount
    }

    /// Measured-window hierarchy statistics (copied into replay reports).
    pub fn hierarchy_stats(&self) -> &HierarchyStats {
        &self.hierarchy
    }

    /// The front-end key the capture is valid for.
    pub fn front_end(&self) -> &FrontEndKey {
        &self.front_end
    }

    /// Whether `cfg` has the same front end this capture was recorded with.
    pub fn matches_front_end(&self, cfg: &SimConfig) -> bool {
        self.front_end == FrontEndKey::of(cfg)
    }

    /// Size of the packed event stream in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Incremental [`CapturedTrace`] assembly; [`CapturedTrace::record`] uses
/// it internally and tests use it to round-trip hand-built streams.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    workload: String,
    footprint_bytes: u64,
    front_end: FrontEndKey,
    accesses: u64,
    bytes: Vec<u8>,
    prev_block: i64,
    total_events: u64,
    warmup_events: Option<u64>,
    hierarchy: HierarchyStats,
}

impl TraceBuilder {
    /// Starts an empty trace.
    pub fn new(workload: impl Into<String>, footprint_bytes: u64, front_end: FrontEndKey) -> Self {
        Self {
            workload: workload.into(),
            footprint_bytes,
            front_end,
            accesses: 0,
            bytes: Vec::new(),
            prev_block: 0,
            total_events: 0,
            warmup_events: None,
            hierarchy: HierarchyStats::default(),
        }
    }

    /// Appends one event with the instructions retired since the previous.
    pub fn push(&mut self, event: MemEvent, icount_delta: u64) {
        let (block, write) = match event {
            MemEvent::Read(b) => (b, 0u64),
            MemEvent::Write(b) => (b, 1u64),
        };
        let index = block.index() as i64;
        let delta = index.wrapping_sub(self.prev_block);
        self.prev_block = index;
        push_varint(&mut self.bytes, icount_delta);
        push_varint(&mut self.bytes, (zigzag(delta) << 1) | write);
        self.total_events += 1;
    }

    /// Marks the warm-up boundary at the current position (at most once).
    pub fn mark_warmup_end(&mut self) {
        assert!(
            self.warmup_events.is_none(),
            "warm-up boundary already marked"
        );
        self.warmup_events = Some(self.total_events);
    }

    /// Seals the trace; `tail_icount` is the instruction count retired
    /// after the last event.
    pub fn finish(self, tail_icount: u64) -> CapturedTrace {
        let warmup_events = self.warmup_events.unwrap_or(0);
        CapturedTrace {
            workload: self.workload,
            footprint_bytes: self.footprint_bytes,
            accesses: self.accesses,
            front_end: self.front_end,
            bytes: self.bytes,
            total_events: self.total_events,
            warmup_events,
            tail_icount,
            hierarchy: self.hierarchy,
        }
    }
}

/// Decoding iterator over a packed event stream.
#[derive(Debug, Clone)]
pub struct EventCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev_block: i64,
    remaining: u64,
}

impl Iterator for EventCursor<'_> {
    type Item = CapturedEvent;

    fn next(&mut self) -> Option<CapturedEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let icount_delta = read_varint(self.bytes, &mut self.pos);
        let word = read_varint(self.bytes, &mut self.pos);
        let delta = unzigzag(word >> 1);
        self.prev_block = self.prev_block.wrapping_add(delta);
        let block = maps_trace::BlockAddr::new(self.prev_block as u64);
        let event = if word & 1 == 1 {
            MemEvent::Write(block)
        } else {
            MemEvent::Read(block)
        };
        Some(CapturedEvent {
            event,
            icount_delta,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventCursor<'_> {}

/// Drives the metadata engine (or the insecure baseline) off a
/// [`CapturedTrace`], producing the same [`SimReport`] the direct
/// [`SecureSim`](crate::SecureSim) pass would.
///
/// One-shot: `run`/`run_observed` consume the simulator, mirroring the
/// fresh-engine state a direct run starts from.
pub struct ReplaySim<'a> {
    cfg: SimConfig,
    trace: &'a CapturedTrace,
    engine: Option<MetadataEngine>,
    cycles: u64,
    insecure_dram: maps_mem::DramCounters,
}

impl<'a> ReplaySim<'a> {
    /// Builds a replay over `trace` under back-end configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `cfg`'s front end (cache geometry or warm-up fraction)
    /// differs from the one the trace was captured with — the event stream
    /// would not correspond to `cfg`'s hierarchy.
    pub fn new(cfg: SimConfig, trace: &'a CapturedTrace) -> Self {
        assert!(
            trace.matches_front_end(&cfg),
            "capture front end {:?} does not match config front end {:?}",
            trace.front_end(),
            FrontEndKey::of(&cfg),
        );
        // Mirror SecureSim::new's protected-memory sizing, using the
        // captured footprint in place of the live workload's.
        let memory_bytes = cfg.memory_bytes.max(trace.footprint_bytes()).max(4096);
        let secure_cfg = maps_secure::SecureConfig::new(
            memory_bytes.next_multiple_of(maps_trace::PAGE_BYTES),
            cfg.counter_mode,
        );
        let engine = cfg.secure.then(|| {
            MetadataEngine::with_speculation_window(
                secure_cfg,
                &cfg.mdc,
                cfg.dram.latency_cycles,
                cfg.hash_latency,
                cfg.speculation,
                cfg.speculation_window,
            )
        });
        Self {
            cfg,
            trace,
            engine,
            cycles: 0,
            insecure_dram: maps_mem::DramCounters::default(),
        }
    }

    /// Replays the capture and reports on the measured window.
    pub fn run(self) -> SimReport {
        self.run_observed(&mut NullObserver)
    }

    /// Replays with an observer on the measured phase's metadata stream.
    pub fn run_observed<O: MetaObserver + ?Sized>(mut self, obs: &mut O) -> SimReport {
        let mut cursor = self.trace.events();
        for _ in 0..self.trace.warmup_events() {
            let ev = cursor.next().expect("warm-up events within stream");
            self.apply(ev, &mut NullObserver);
        }
        // The warm-up boundary: statistics reset, state persists.
        if let Some(engine) = &mut self.engine {
            engine.reset_stats();
        }
        self.cycles = 0;
        self.insecure_dram = maps_mem::DramCounters::default();
        for ev in cursor {
            self.apply(ev, obs);
        }
        self.cycles += self.trace.tail_icount();
        build_report(
            &self.cfg,
            self.trace.workload(),
            self.cycles,
            self.trace.hierarchy_stats(),
            self.engine.as_ref(),
            &self.insecure_dram,
        )
    }

    fn apply<O: MetaObserver + ?Sized>(&mut self, ev: CapturedEvent, obs: &mut O) {
        self.cycles += ev.icount_delta;
        match (ev.event, &mut self.engine) {
            (MemEvent::Write(block), Some(engine)) => engine.handle_write(block, obs),
            (MemEvent::Read(block), Some(engine)) => {
                self.cycles += engine.handle_read(block, obs);
            }
            (MemEvent::Write(_), None) => self.insecure_dram.writes += 1,
            (MemEvent::Read(_), None) => {
                self.insecure_dram.reads += 1;
                self.cycles += self.cfg.dram.latency_cycles;
            }
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecureSim;
    use maps_trace::BlockAddr;
    use maps_workloads::Benchmark;

    fn key() -> FrontEndKey {
        FrontEndKey::of(&SimConfig::paper_default())
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn builder_round_trips_events() {
        let events = [
            (MemEvent::Read(BlockAddr::new(100)), 7u64),
            (MemEvent::Write(BlockAddr::new(2)), 0),
            (MemEvent::Read(BlockAddr::new(1 << 40)), 129),
            (MemEvent::Write(BlockAddr::new(1 << 40)), 1),
        ];
        let mut b = TraceBuilder::new("t", 0, key());
        b.mark_warmup_end();
        for &(ev, d) in &events {
            b.push(ev, d);
        }
        let trace = b.finish(5);
        assert_eq!(trace.total_events(), 4);
        assert_eq!(trace.tail_icount(), 5);
        let decoded: Vec<_> = trace.events().collect();
        for (got, &(event, icount_delta)) in decoded.iter().zip(&events) {
            assert_eq!((got.event, got.icount_delta), (event, icount_delta));
        }
    }

    #[test]
    fn record_marks_warmup_consistently() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(3), 10_000);
        assert!(trace.warmup_events() > 0);
        assert!(trace.warmup_events() < trace.total_events());
        assert_eq!(trace.accesses(), 10_000);
        assert_eq!(trace.workload(), "gups");
    }

    #[test]
    fn zero_warmup_capture_has_no_warmup_events() {
        let mut cfg = SimConfig::paper_default();
        cfg.warmup_fraction = 0.0;
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(3), 5_000);
        assert_eq!(trace.warmup_events(), 0);
    }

    #[test]
    fn replay_reproduces_direct_report() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(9), 20_000);
        let replayed = ReplaySim::new(cfg.clone(), &trace).run();
        let direct = SecureSim::new(cfg, Benchmark::Libquantum.build(9)).run(20_000);
        assert_eq!(replayed, direct);
    }

    #[test]
    #[should_panic(expected = "front end")]
    fn mismatched_front_end_is_rejected() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(1), 1_000);
        let other = cfg.with_llc_bytes(cfg.llc_bytes * 2);
        let _ = ReplaySim::new(other, &trace);
    }

    #[test]
    fn encoding_is_compact() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(9), 20_000);
        // Spatially local streams should pack to a handful of bytes/event.
        let per_event = trace.encoded_len() as f64 / trace.total_events() as f64;
        assert!(per_event < 8.0, "packed encoding at {per_event:.1} B/event");
    }
}
