//! Capture-once / replay-many front-end memoization.
//!
//! The front end of a run — workload generation plus the L1/L2/LLC
//! hierarchy — depends only on the workload (benchmark + seed), the access
//! count, the cache geometry, and the warm-up split. Nothing the metadata
//! engine does feeds back into it. Every sweep that varies only back-end
//! parameters (metadata cache size, policy, contents, partitioning,
//! counter mode, speculation, DRAM timing) therefore re-simulates an
//! identical front end at every point.
//!
//! [`CapturedTrace`] records that front end once: the LLC miss/writeback
//! event stream in a packed varint encoding (read/write bit + tenant-switch
//! bit + block-address delta + retired-instruction delta per event, with a
//! tenant id only where it changes), the warm-up boundary, and
//! the measured-phase hierarchy statistics. [`ReplaySim`] then drives the
//! metadata engine (or the insecure-baseline accounting) straight off the
//! capture, reproducing the direct [`SecureSim`](crate::SecureSim) report
//! **bit-identically** — same stats reset at the warm-up marker, same event
//! ordering, same energy accounting. `crates/sim/tests/replay_equivalence.rs`
//! proves the identity across benchmarks and engine configurations.
//!
//! Cost model: a direct sweep is O(points × accesses); with capture it is
//! O(front-ends × accesses + points × LLC-events), and LLC events are
//! typically 10–100× sparser than core accesses.
//!
//! # Examples
//!
//! ```
//! use maps_sim::{CapturedTrace, ReplaySim, SecureSim, SimConfig};
//! use maps_workloads::Benchmark;
//!
//! let cfg = SimConfig::paper_default();
//! let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(7), 10_000);
//! let replayed = ReplaySim::new(cfg.clone(), &trace).run();
//! let direct = SecureSim::new(cfg, Benchmark::Gups.build(7)).run(10_000);
//! assert_eq!(replayed, direct);
//! ```

use maps_trace::TenantId;
use maps_workloads::Workload;

use crate::engine::{MetaObserver, MetadataEngine, NullObserver};
use crate::hierarchy::{Hierarchy, HierarchyStats, MemEvent};
use crate::sim::build_report;
use crate::{SimConfig, SimReport};

/// The front-end parameters a capture is valid for. Replaying against a
/// configuration whose front end differs would silently produce events the
/// direct simulation never would, so [`ReplaySim::new`] checks this key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontEndKey {
    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// LLC capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// `warmup_fraction` bit pattern (bitwise comparison; the fraction
    /// decides where the stats-reset marker falls).
    pub warmup_fraction_bits: u64,
}

impl FrontEndKey {
    /// Extracts the front-end key from a simulation configuration.
    pub fn of(cfg: &SimConfig) -> Self {
        Self {
            l1_bytes: cfg.l1_bytes,
            l1_ways: cfg.l1_ways,
            l2_bytes: cfg.l2_bytes,
            l2_ways: cfg.l2_ways,
            llc_bytes: cfg.llc_bytes,
            llc_ways: cfg.llc_ways,
            warmup_fraction_bits: cfg.warmup_fraction.to_bits(),
        }
    }
}

/// Typed failure decoding capture bytes. Every malformed input maps to a
/// variant — the decoder never panics, indexes out of bounds, or shifts
/// past bit 63, whatever bytes it is fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-varint or before a promised field/event.
    Truncated {
        /// Byte offset where the incomplete item started.
        offset: usize,
    },
    /// A varint encoded more than 64 bits.
    VarintOverflow {
        /// Byte offset where the varint started.
        offset: usize,
    },
    /// The file did not start with the `MAPSCAP2` magic.
    BadMagic,
    /// The workload name was not valid UTF-8.
    BadWorkloadName {
        /// Byte offset of the name field.
        offset: usize,
    },
    /// A header field was internally inconsistent.
    Header(&'static str),
    /// Bytes remained after the declared event stream.
    TrailingBytes {
        /// Byte offset of the first unexpected byte.
        offset: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "capture truncated at byte {offset}")
            }
            DecodeError::VarintOverflow { offset } => {
                write!(f, "varint at byte {offset} overflows 64 bits")
            }
            DecodeError::BadMagic => write!(f, "not a capture file (bad magic)"),
            DecodeError::BadWorkloadName { offset } => {
                write!(f, "workload name at byte {offset} is not UTF-8")
            }
            DecodeError::Header(what) => write!(f, "inconsistent capture header: {what}"),
            DecodeError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after event stream at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Failure loading a capture from disk: the I/O layer or the decoder.
#[derive(Debug)]
pub enum CaptureLoadError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file's bytes did not decode as a capture.
    Decode(DecodeError),
}

impl std::fmt::Display for CaptureLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureLoadError::Io(e) => write!(f, "reading capture: {e}"),
            CaptureLoadError::Decode(e) => write!(f, "decoding capture: {e}"),
        }
    }
}

impl std::error::Error for CaptureLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureLoadError::Io(e) => Some(e),
            CaptureLoadError::Decode(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CaptureLoadError {
    fn from(e: std::io::Error) -> Self {
        CaptureLoadError::Io(e)
    }
}

impl From<DecodeError> for CaptureLoadError {
    fn from(e: DecodeError) -> Self {
        CaptureLoadError::Decode(e)
    }
}

/// One decoded event with the instructions retired since the previous
/// event (the first event of a core access carries that access's icount
/// plus any event-less accesses before it; trailing events carry 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedEvent {
    /// The memory-controller event.
    pub event: MemEvent,
    /// Instructions retired since the previous event in the stream.
    pub icount_delta: u64,
}

/// A recorded front-end pass: the packed LLC event stream, the warm-up
/// boundary, and the measured-phase hierarchy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedTrace {
    workload: String,
    footprint_bytes: u64,
    accesses: u64,
    front_end: FrontEndKey,
    /// Varint-packed events: per event an icount delta, then
    /// `(zigzag(block_delta) << 2) | (tenant_switch << 1) | write_bit`,
    /// followed — only when the tenant-switch bit is set — by the new
    /// tenant id. Streams start at tenant 0 ([`TenantId::HOST`]), so
    /// single-tenant captures pay zero bytes for the tenant dimension.
    bytes: Vec<u8>,
    total_events: u64,
    /// Events before the warm-up boundary (statistics reset after them).
    warmup_events: u64,
    /// Instructions retired after the last measured event.
    tail_icount: u64,
    /// Hierarchy statistics of the measured window.
    hierarchy: HierarchyStats,
}

impl CapturedTrace {
    /// Runs the front end once — workload through the hierarchy for
    /// `accesses` core accesses, with `cfg`'s geometry and warm-up split —
    /// and records the resulting event stream.
    ///
    /// Only front-end fields of `cfg` matter here; the metadata cache,
    /// DRAM, and security settings are free to differ at replay time.
    pub fn record<W: Workload>(cfg: &SimConfig, mut workload: W, accesses: u64) -> Self {
        let warmup = (accesses as f64 * cfg.warmup_fraction) as u64;
        let mut builder = TraceBuilder::new(
            workload.name(),
            workload.footprint_bytes(),
            FrontEndKey::of(cfg),
        );
        let mut hierarchy = Hierarchy::new(cfg);
        let mut events = Vec::with_capacity(8);
        let mut pending_icount = 0u64;
        if warmup == 0 {
            builder.mark_warmup_end();
        }
        for i in 0..accesses {
            let access = workload.next_access();
            let tenant = workload.current_tenant();
            pending_icount += u64::from(access.icount);
            hierarchy.access_from(&access, tenant, &mut events);
            for event in &events {
                builder.push(*event, std::mem::take(&mut pending_icount));
            }
            if i + 1 == warmup {
                // The stats reset discards warm-up instruction counts, so
                // icount pending from event-less warm-up accesses must not
                // leak into the first measured event's delta.
                pending_icount = 0;
                hierarchy.reset_stats();
                builder.mark_warmup_end();
            }
        }
        builder.accesses = accesses;
        builder.hierarchy = *hierarchy.stats();
        builder.finish(pending_icount)
    }

    /// Iterator over the decoded event stream (warm-up events first).
    pub fn events(&self) -> EventCursor<'_> {
        EventCursor {
            bytes: &self.bytes,
            pos: 0,
            prev_block: 0,
            tenant: 0,
            remaining: self.total_events,
        }
    }

    /// Workload name the capture was recorded from.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The workload footprint, needed to size protected memory exactly as
    /// [`SecureSim::new`](crate::SecureSim::new) would.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Core accesses the capture covers (including warm-up).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total events in the stream.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Events belonging to the warm-up phase.
    pub fn warmup_events(&self) -> u64 {
        self.warmup_events
    }

    /// Instructions retired after the last measured event.
    pub fn tail_icount(&self) -> u64 {
        self.tail_icount
    }

    /// Measured-window hierarchy statistics (copied into replay reports).
    pub fn hierarchy_stats(&self) -> &HierarchyStats {
        &self.hierarchy
    }

    /// The front-end key the capture is valid for.
    pub fn front_end(&self) -> &FrontEndKey {
        &self.front_end
    }

    /// Whether `cfg` has the same front end this capture was recorded with.
    pub fn matches_front_end(&self, cfg: &SimConfig) -> bool {
        self.front_end == FrontEndKey::of(cfg)
    }

    /// Size of the packed event stream in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Serializes the capture: `MAPSCAP2` magic, varint header fields,
    /// then the packed event stream. [`from_bytes`](Self::from_bytes)
    /// round-trips it exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.workload.len() + self.bytes.len());
        out.extend_from_slice(CAPTURE_MAGIC);
        push_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        push_varint(&mut out, self.footprint_bytes);
        push_varint(&mut out, self.accesses);
        let fe = &self.front_end;
        for v in [
            fe.l1_bytes,
            fe.l1_ways as u64,
            fe.l2_bytes,
            fe.l2_ways as u64,
            fe.llc_bytes,
            fe.llc_ways as u64,
            fe.warmup_fraction_bits,
        ] {
            push_varint(&mut out, v);
        }
        push_varint(&mut out, self.total_events);
        push_varint(&mut out, self.warmup_events);
        push_varint(&mut out, self.tail_icount);
        let h = &self.hierarchy;
        for v in [
            h.accesses,
            h.instructions,
            h.l1_misses,
            h.l2_misses,
            h.llc_demand_misses,
            h.llc_writebacks,
        ] {
            push_varint(&mut out, v);
        }
        push_varint(&mut out, self.bytes.len() as u64);
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Decodes a capture produced by [`to_bytes`](Self::to_bytes),
    /// validating the header *and* the full event stream, so the returned
    /// trace upholds the valid-by-construction invariant [`events`]
    /// iteration relies on. Any malformed input — truncated, bit-flipped,
    /// or not a capture at all — yields a typed [`DecodeError`], never a
    /// panic.
    ///
    /// [`events`]: Self::events
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < CAPTURE_MAGIC.len() || &bytes[..CAPTURE_MAGIC.len()] != CAPTURE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut pos = CAPTURE_MAGIC.len();
        let name_offset = pos;
        let name_len = read_varint(bytes, &mut pos)? as usize;
        if bytes.len() - pos < name_len {
            return Err(DecodeError::Truncated {
                offset: name_offset,
            });
        }
        let workload = std::str::from_utf8(&bytes[pos..pos + name_len])
            .map_err(|_| DecodeError::BadWorkloadName { offset: pos })?
            .to_string();
        pos += name_len;

        let footprint_bytes = read_varint(bytes, &mut pos)?;
        let accesses = read_varint(bytes, &mut pos)?;
        let mut fe = [0u64; 7];
        for slot in &mut fe {
            *slot = read_varint(bytes, &mut pos)?;
        }
        let front_end = FrontEndKey {
            l1_bytes: fe[0],
            l1_ways: usize::try_from(fe[1]).map_err(|_| DecodeError::Header("l1_ways"))?,
            l2_bytes: fe[2],
            l2_ways: usize::try_from(fe[3]).map_err(|_| DecodeError::Header("l2_ways"))?,
            llc_bytes: fe[4],
            llc_ways: usize::try_from(fe[5]).map_err(|_| DecodeError::Header("llc_ways"))?,
            warmup_fraction_bits: fe[6],
        };
        let total_events = read_varint(bytes, &mut pos)?;
        let warmup_events = read_varint(bytes, &mut pos)?;
        if warmup_events > total_events {
            return Err(DecodeError::Header("warm-up event count exceeds total"));
        }
        let tail_icount = read_varint(bytes, &mut pos)?;
        let mut hs = [0u64; 6];
        for slot in &mut hs {
            *slot = read_varint(bytes, &mut pos)?;
        }
        let hierarchy = HierarchyStats {
            accesses: hs[0],
            instructions: hs[1],
            l1_misses: hs[2],
            l2_misses: hs[3],
            llc_demand_misses: hs[4],
            llc_writebacks: hs[5],
        };

        let stream_offset = pos;
        let stream_len = read_varint(bytes, &mut pos)? as usize;
        if bytes.len() - pos < stream_len {
            return Err(DecodeError::Truncated {
                offset: stream_offset,
            });
        }
        let stream = bytes[pos..pos + stream_len].to_vec();
        pos += stream_len;
        if pos != bytes.len() {
            return Err(DecodeError::TrailingBytes { offset: pos });
        }

        // Walk the whole stream now so EventCursor can stay infallible:
        // every varint must decode and the declared event count must
        // consume the stream exactly.
        let mut spos = 0usize;
        for _ in 0..total_events {
            read_varint(&stream, &mut spos)?; // icount delta
                                              // Packed word: block delta + tenant-switch bit + r/w bit.
            let word = read_varint(&stream, &mut spos)?;
            if word & 0b10 != 0 {
                let tenant = read_varint(&stream, &mut spos)?;
                if tenant > u64::from(u8::MAX) {
                    return Err(DecodeError::Header("tenant id exceeds u8"));
                }
            }
        }
        if spos != stream.len() {
            return Err(DecodeError::TrailingBytes {
                offset: stream_offset + spos,
            });
        }

        Ok(CapturedTrace {
            workload,
            footprint_bytes,
            accesses,
            front_end,
            bytes: stream,
            total_events,
            warmup_events,
            tail_icount,
            hierarchy,
        })
    }

    /// Writes the serialized capture to `path` atomically (temp file +
    /// rename), so a crash mid-save never leaves a torn capture that a
    /// later run would reject — or worse, misread.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        maps_obs::write_atomic(path, &self.to_bytes())
    }

    /// Loads a capture from `path`, distinguishing I/O failures from
    /// malformed contents.
    pub fn load(path: &std::path::Path) -> Result<Self, CaptureLoadError> {
        Ok(Self::from_bytes(&std::fs::read(path)?)?)
    }
}

/// Capture file magic: "MAPS capture, format 2". Format 2 added the
/// tenant-switch bit to the packed event word; format-1 files are rejected
/// at the magic check rather than silently misdecoded.
const CAPTURE_MAGIC: &[u8; 8] = b"MAPSCAP2";

/// Incremental [`CapturedTrace`] assembly; [`CapturedTrace::record`] uses
/// it internally and tests use it to round-trip hand-built streams.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    workload: String,
    footprint_bytes: u64,
    front_end: FrontEndKey,
    accesses: u64,
    bytes: Vec<u8>,
    prev_block: i64,
    prev_tenant: u8,
    total_events: u64,
    warmup_events: Option<u64>,
    hierarchy: HierarchyStats,
}

impl TraceBuilder {
    /// Starts an empty trace.
    pub fn new(workload: impl Into<String>, footprint_bytes: u64, front_end: FrontEndKey) -> Self {
        Self {
            workload: workload.into(),
            footprint_bytes,
            front_end,
            accesses: 0,
            bytes: Vec::new(),
            prev_block: 0,
            prev_tenant: 0,
            total_events: 0,
            warmup_events: None,
            hierarchy: HierarchyStats::default(),
        }
    }

    /// Appends one event with the instructions retired since the previous.
    pub fn push(&mut self, event: MemEvent, icount_delta: u64) {
        let (block, tenant, write) = match event {
            MemEvent::Read(b, t) => (b, t, 0u64),
            MemEvent::Write(b, t) => (b, t, 1u64),
        };
        let index = block.index() as i64;
        let delta = index.wrapping_sub(self.prev_block);
        self.prev_block = index;
        let switch = u64::from(tenant.0 != self.prev_tenant);
        push_varint(&mut self.bytes, icount_delta);
        push_varint(
            &mut self.bytes,
            (zigzag(delta) << 2) | (switch << 1) | write,
        );
        if switch != 0 {
            push_varint(&mut self.bytes, u64::from(tenant.0));
            self.prev_tenant = tenant.0;
        }
        self.total_events += 1;
    }

    /// Marks the warm-up boundary at the current position (at most once).
    pub fn mark_warmup_end(&mut self) {
        assert!(
            self.warmup_events.is_none(),
            "warm-up boundary already marked"
        );
        self.warmup_events = Some(self.total_events);
    }

    /// Seals the trace; `tail_icount` is the instruction count retired
    /// after the last event.
    pub fn finish(self, tail_icount: u64) -> CapturedTrace {
        let warmup_events = self.warmup_events.unwrap_or(0);
        CapturedTrace {
            workload: self.workload,
            footprint_bytes: self.footprint_bytes,
            accesses: self.accesses,
            front_end: self.front_end,
            bytes: self.bytes,
            total_events: self.total_events,
            warmup_events,
            tail_icount,
            hierarchy: self.hierarchy,
        }
    }
}

/// Decoding iterator over a packed event stream.
#[derive(Debug, Clone)]
pub struct EventCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev_block: i64,
    tenant: u8,
    remaining: u64,
}

impl Iterator for EventCursor<'_> {
    type Item = CapturedEvent;

    fn next(&mut self) -> Option<CapturedEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // CapturedTrace streams are valid by construction: TraceBuilder
        // only appends well-formed varints and from_bytes pre-walks the
        // whole stream, so the trusted decoder applies here.
        let icount_delta = read_varint_trusted(self.bytes, &mut self.pos);
        let word = read_varint_trusted(self.bytes, &mut self.pos);
        if word & 0b10 != 0 {
            self.tenant = read_varint_trusted(self.bytes, &mut self.pos) as u8;
        }
        let delta = unzigzag(word >> 2);
        self.prev_block = self.prev_block.wrapping_add(delta);
        let block = maps_trace::BlockAddr::new(self.prev_block as u64);
        let tenant = TenantId(self.tenant);
        let event = if word & 1 == 1 {
            MemEvent::Write(block, tenant)
        } else {
            MemEvent::Read(block, tenant)
        };
        Some(CapturedEvent {
            event,
            icount_delta,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl EventCursor<'_> {
    /// Decodes up to `buf.len()` events into `buf` in one tight loop,
    /// returning the number decoded and the *summed* instruction-count
    /// delta across them. This is the batched replay front end: cycle
    /// accounting only ever adds icount deltas, so summing per batch is
    /// bit-identical to adding per event, and decoding in bulk keeps the
    /// varint state (position, previous block) hot in registers.
    pub fn next_events(&mut self, buf: &mut [MemEvent]) -> (usize, u64) {
        let n = self.remaining.min(buf.len() as u64) as usize;
        let mut icount = 0u64;
        for slot in &mut buf[..n] {
            // Trusted decode: same valid-by-construction argument as
            // `next` above.
            let delta_icount = read_varint_trusted(self.bytes, &mut self.pos);
            let word = read_varint_trusted(self.bytes, &mut self.pos);
            icount += delta_icount;
            if word & 0b10 != 0 {
                self.tenant = read_varint_trusted(self.bytes, &mut self.pos) as u8;
            }
            let delta = unzigzag(word >> 2);
            self.prev_block = self.prev_block.wrapping_add(delta);
            let block = maps_trace::BlockAddr::new(self.prev_block as u64);
            let tenant = TenantId(self.tenant);
            *slot = if word & 1 == 1 {
                MemEvent::Write(block, tenant)
            } else {
                MemEvent::Read(block, tenant)
            };
        }
        self.remaining -= n as u64;
        (n, icount)
    }
}

impl ExactSizeIterator for EventCursor<'_> {}

/// Largest event batch [`ReplaySim`] decodes at once; bounds the stack
/// buffer the replay loop works out of.
pub const MAX_BATCH_EVENTS: usize = 512;

/// Default replay batch size: large enough to amortize dispatch and give
/// the prefetcher a useful horizon, small enough that the batch buffer and
/// the touched metadata-cache rows stay L1-resident.
pub const DEFAULT_BATCH_EVENTS: usize = 256;

/// Drives the metadata engine (or the insecure baseline) off a
/// [`CapturedTrace`], producing the same [`SimReport`] the direct
/// [`SecureSim`](crate::SecureSim) pass would.
///
/// One-shot: `run`/`run_observed` consume the simulator, mirroring the
/// fresh-engine state a direct run starts from.
///
/// Replay is batched by default: events are decoded [`DEFAULT_BATCH_EVENTS`]
/// at a time into a stack buffer and driven through
/// [`MetadataEngine::handle_batch`], which monomorphizes the per-event
/// dispatch once per batch and software-prefetches the metadata-cache rows
/// of upcoming events. [`run_scalar`](Self::run_scalar) keeps the original
/// one-event-at-a-time loop as the differential reference; both paths
/// produce bit-identical reports (`tests/differential.rs` proves it across
/// every policy and engine mode).
pub struct ReplaySim<'a> {
    cfg: SimConfig,
    trace: &'a CapturedTrace,
    engine: Option<MetadataEngine>,
    cycles: u64,
    insecure_dram: maps_mem::DramCounters,
    batch: usize,
}

impl<'a> ReplaySim<'a> {
    /// Builds a replay over `trace` under back-end configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `cfg`'s front end (cache geometry or warm-up fraction)
    /// differs from the one the trace was captured with — the event stream
    /// would not correspond to `cfg`'s hierarchy.
    pub fn new(cfg: SimConfig, trace: &'a CapturedTrace) -> Self {
        assert!(
            trace.matches_front_end(&cfg),
            "capture front end {:?} does not match config front end {:?}",
            trace.front_end(),
            FrontEndKey::of(&cfg),
        );
        // Mirror SecureSim::new's protected-memory sizing, using the
        // captured footprint in place of the live workload's.
        let memory_bytes = cfg.memory_bytes.max(trace.footprint_bytes()).max(4096);
        let secure_cfg = maps_secure::SecureConfig::new(
            memory_bytes.next_multiple_of(maps_trace::PAGE_BYTES),
            cfg.counter_mode,
        );
        let engine = cfg.secure.then(|| {
            MetadataEngine::with_speculation_window(
                secure_cfg,
                &cfg.mdc,
                cfg.dram.latency_cycles,
                cfg.hash_latency,
                cfg.speculation,
                cfg.speculation_window,
            )
        });
        Self {
            cfg,
            trace,
            engine,
            cycles: 0,
            insecure_dram: maps_mem::DramCounters::default(),
            batch: DEFAULT_BATCH_EVENTS,
        }
    }

    /// Overrides the replay batch size (clamped to
    /// `1..=`[`MAX_BATCH_EVENTS`]). Mostly for tests: equivalence must hold
    /// at every size, including batches that straddle the warm-up boundary.
    pub fn with_batch_size(mut self, events: usize) -> Self {
        self.batch = events.clamp(1, MAX_BATCH_EVENTS);
        self
    }

    /// Replays the capture and reports on the measured window.
    pub fn run(self) -> SimReport {
        self.run_observed(&mut NullObserver)
    }

    /// Replays with an observer on the measured phase's metadata stream.
    pub fn run_observed<O: MetaObserver + ?Sized>(mut self, obs: &mut O) -> SimReport {
        let mut cursor = self.trace.events();
        let warmup = self.trace.warmup_events();
        self.replay_phase(&mut cursor, warmup, &mut NullObserver);
        // The warm-up boundary: statistics reset, state persists.
        if let Some(engine) = &mut self.engine {
            engine.reset_stats();
        }
        self.cycles = 0;
        self.insecure_dram = maps_mem::DramCounters::default();
        let measured = cursor.remaining;
        self.replay_phase(&mut cursor, measured, obs);
        self.cycles += self.trace.tail_icount();
        self.finish_report()
    }

    /// Replays one phase — up to `limit` events — batch by batch. Cycle
    /// accounting is a commutative sum (icount deltas + read stalls), so
    /// adding the batch's summed icount before its stalls reproduces the
    /// scalar interleaving bit-for-bit.
    fn replay_phase<O: MetaObserver + ?Sized>(
        &mut self,
        cursor: &mut EventCursor<'_>,
        mut limit: u64,
        obs: &mut O,
    ) {
        let mut buf =
            [MemEvent::Read(maps_trace::BlockAddr::new(0), TenantId::HOST); MAX_BATCH_EVENTS];
        while limit > 0 {
            let want = limit.min(self.batch as u64) as usize;
            let (n, icount) = cursor.next_events(&mut buf[..want]);
            if n == 0 {
                // Truncated stream: no events left mid-phase. Stop rather
                // than panic (PANIC-001); the window simply comes up short.
                return;
            }
            limit -= n as u64;
            self.cycles += icount;
            match &mut self.engine {
                Some(engine) => self.cycles += engine.handle_batch(&buf[..n], obs),
                None => {
                    for event in &buf[..n] {
                        match event {
                            MemEvent::Write(..) => self.insecure_dram.writes += 1,
                            MemEvent::Read(..) => {
                                self.insecure_dram.reads += 1;
                                self.cycles += self.cfg.dram.latency_cycles;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Replays with the original one-event-at-a-time loop. Kept as the
    /// differential reference for the batched path (and as the fallback
    /// behind `MAPS_BATCH=0`).
    pub fn run_scalar(self) -> SimReport {
        self.run_scalar_observed(&mut NullObserver)
    }

    /// Scalar replay with an observer on the measured phase's stream.
    pub fn run_scalar_observed<O: MetaObserver + ?Sized>(mut self, obs: &mut O) -> SimReport {
        let mut cursor = self.trace.events();
        // `take` rather than indexed `next().expect(…)`: a truncated
        // capture must not panic in the replay path (PANIC-001); a short
        // stream simply yields an empty measured window.
        let warmup = self.trace.warmup_events() as usize;
        for ev in cursor.by_ref().take(warmup) {
            self.apply(ev, &mut NullObserver);
        }
        // The warm-up boundary: statistics reset, state persists.
        if let Some(engine) = &mut self.engine {
            engine.reset_stats();
        }
        self.cycles = 0;
        self.insecure_dram = maps_mem::DramCounters::default();
        for ev in cursor {
            self.apply(ev, obs);
        }
        self.cycles += self.trace.tail_icount();
        self.finish_report()
    }

    fn finish_report(self) -> SimReport {
        build_report(
            &self.cfg,
            self.trace.workload(),
            self.cycles,
            self.trace.hierarchy_stats(),
            self.engine.as_ref(),
            &self.insecure_dram,
        )
    }

    fn apply<O: MetaObserver + ?Sized>(&mut self, ev: CapturedEvent, obs: &mut O) {
        self.cycles += ev.icount_delta;
        match (ev.event, &mut self.engine) {
            (MemEvent::Write(block, t), Some(engine)) => engine.handle_write_from(block, t, obs),
            (MemEvent::Read(block, t), Some(engine)) => {
                self.cycles += engine.handle_read_from(block, t, obs);
            }
            (MemEvent::Write(..), None) => self.insecure_dram.writes += 1,
            (MemEvent::Read(..), None) => {
                self.insecure_dram.reads += 1;
                self.cycles += self.cfg.dram.latency_cycles;
            }
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Varint decode for streams already proven well-formed — built by
/// `TraceBuilder` or pre-walked by [`CapturedTrace::from_bytes`] with the
/// checked [`read_varint`]. Skipping the error paths keeps the per-event
/// replay cost at its pre-hardening level; indexing still bounds-checks,
/// so a violated precondition panics rather than corrupting state.
fn read_varint_trusted(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or(DecodeError::Truncated { offset: start })?;
        *pos += 1;
        // A u64 varint is at most 10 bytes; the 10th (shift 63) may only
        // carry the top bit. Anything longer or wider silently dropped
        // bits in the old decoder — reject it instead.
        if shift > 63 || (shift == 63 && b > 1) {
            return Err(DecodeError::VarintOverflow { offset: start });
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecureSim;
    use maps_trace::BlockAddr;
    use maps_workloads::Benchmark;

    fn key() -> FrontEndKey {
        FrontEndKey::of(&SimConfig::paper_default())
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_varint_is_a_typed_error() {
        let mut buf = Vec::new();
        push_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                read_varint(&buf[..cut], &mut pos),
                Err(DecodeError::Truncated { offset: 0 }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn overlong_varint_is_a_typed_error() {
        // Eleven continuation bytes: more than 64 bits of payload.
        let buf = [0x80u8; 10]
            .iter()
            .chain(&[0x01u8])
            .copied()
            .collect::<Vec<_>>();
        let mut pos = 0;
        assert_eq!(
            read_varint(&buf, &mut pos),
            Err(DecodeError::VarintOverflow { offset: 0 })
        );
        // Ten bytes whose last carries more than the one bit u64 has left.
        let wide = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7F];
        let mut pos = 0;
        assert_eq!(
            read_varint(&wide, &mut pos),
            Err(DecodeError::VarintOverflow { offset: 0 })
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn builder_round_trips_events() {
        use maps_trace::TenantId;
        let events = [
            (MemEvent::Read(BlockAddr::new(100), TenantId::HOST), 7u64),
            (MemEvent::Write(BlockAddr::new(2), TenantId(3)), 0),
            (MemEvent::Read(BlockAddr::new(1 << 40), TenantId(3)), 129),
            (MemEvent::Write(BlockAddr::new(1 << 40), TenantId(0)), 1),
        ];
        let mut b = TraceBuilder::new("t", 0, key());
        b.mark_warmup_end();
        for &(ev, d) in &events {
            b.push(ev, d);
        }
        let trace = b.finish(5);
        assert_eq!(trace.total_events(), 4);
        assert_eq!(trace.tail_icount(), 5);
        let decoded: Vec<_> = trace.events().collect();
        for (got, &(event, icount_delta)) in decoded.iter().zip(&events) {
            assert_eq!((got.event, got.icount_delta), (event, icount_delta));
        }
        // Serialization must survive the tenant switches too.
        let reloaded = CapturedTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(reloaded, trace);
    }

    #[test]
    fn single_tenant_streams_pay_no_tenant_bytes() {
        use maps_trace::TenantId;
        let build = |tenant_run: &[TenantId]| {
            let mut b = TraceBuilder::new("t", 0, key());
            b.mark_warmup_end();
            for (i, &t) in tenant_run.iter().enumerate() {
                b.push(MemEvent::Read(BlockAddr::new(i as u64), t), 1);
            }
            b.finish(0)
        };
        let host_only = build(&[TenantId::HOST; 8]);
        let alternating = build(&[
            TenantId(0),
            TenantId(1),
            TenantId(0),
            TenantId(1),
            TenantId(0),
            TenantId(1),
            TenantId(0),
            TenantId(1),
        ]);
        // Same block/icount stream; only the tenant ids differ. The
        // single-tenant stream must not spend a single extra byte.
        assert!(host_only.encoded_len() < alternating.encoded_len());
        // One tenant-id byte per switch; the first event is already at the
        // stream's initial tenant 0, so 7 of the 8 events switch.
        assert_eq!(alternating.encoded_len() - host_only.encoded_len(), 7);
    }

    #[test]
    fn batched_cursor_tracks_tenant_switches() {
        use maps_trace::TenantId;
        let mut b = TraceBuilder::new("t", 0, key());
        b.mark_warmup_end();
        let tenants = [0u8, 0, 2, 2, 1, 255, 255, 0];
        for (i, &t) in tenants.iter().enumerate() {
            b.push(
                MemEvent::Write(BlockAddr::new(i as u64 * 17), TenantId(t)),
                2,
            );
        }
        let trace = b.finish(0);
        // Decode with a batch that straddles the switches.
        let mut cursor = trace.events();
        let mut buf = [MemEvent::Read(BlockAddr::new(0), TenantId::HOST); 3];
        let mut got = Vec::new();
        loop {
            let (n, _) = cursor.next_events(&mut buf);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        let want: Vec<_> = trace.events().map(|e| e.event).collect();
        assert_eq!(got, want);
        for (ev, &t) in got.iter().zip(&tenants) {
            assert_eq!(ev.tenant(), TenantId(t));
        }
    }

    #[test]
    fn record_marks_warmup_consistently() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(3), 10_000);
        assert!(trace.warmup_events() > 0);
        assert!(trace.warmup_events() < trace.total_events());
        assert_eq!(trace.accesses(), 10_000);
        assert_eq!(trace.workload(), "gups");
    }

    #[test]
    fn zero_warmup_capture_has_no_warmup_events() {
        let mut cfg = SimConfig::paper_default();
        cfg.warmup_fraction = 0.0;
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(3), 5_000);
        assert_eq!(trace.warmup_events(), 0);
    }

    #[test]
    fn replay_reproduces_direct_report() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(9), 20_000);
        let replayed = ReplaySim::new(cfg.clone(), &trace).run();
        let direct = SecureSim::new(cfg, Benchmark::Libquantum.build(9)).run(20_000);
        assert_eq!(replayed, direct);
    }

    #[test]
    #[should_panic(expected = "front end")]
    fn mismatched_front_end_is_rejected() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(1), 1_000);
        let other = cfg.with_llc_bytes(cfg.llc_bytes * 2);
        let _ = ReplaySim::new(other, &trace);
    }

    #[test]
    fn serialized_capture_round_trips() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(5), 8_000);
        let decoded = CapturedTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
        // And the replayed report matches, not just the struct.
        assert_eq!(
            ReplaySim::new(cfg.clone(), &decoded).run(),
            ReplaySim::new(cfg, &trace).run()
        );
    }

    #[test]
    fn save_load_round_trips() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(2), 2_000);
        let path = std::env::temp_dir().join(format!("maps-capture-{}.bin", std::process::id()));
        trace.save(&path).unwrap();
        let loaded = CapturedTrace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn load_distinguishes_io_from_decode() {
        let missing = std::path::Path::new("/nonexistent/maps-capture.bin");
        assert!(matches!(
            CapturedTrace::load(missing),
            Err(CaptureLoadError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(CapturedTrace::from_bytes(b""), Err(DecodeError::BadMagic));
        assert_eq!(
            CapturedTrace::from_bytes(b"NOTACAPT rest"),
            Err(DecodeError::BadMagic)
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Gups.build(4), 3_000);
        let bytes = trace.to_bytes();
        // Cut the file at every length: the decoder must return an error
        // (or, only for prefix-of-magic cuts, BadMagic) and never panic.
        for cut in 0..bytes.len() {
            assert!(
                CapturedTrace::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Appending garbage must be caught too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            CapturedTrace::from_bytes(&extended),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn fuzzed_corruptions_never_panic() {
        use maps_trace::rng::SmallRng;
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(6), 4_000);
        let pristine = trace.to_bytes();
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..500 {
            let mut mutated = pristine.clone();
            // 1–4 random byte-level mutations: flip, overwrite, truncate.
            for _ in 0..rng.gen_range(1u32..5) {
                match rng.gen_range(0u32..3) {
                    0 => {
                        let i = rng.gen_range(0usize..mutated.len());
                        mutated[i] ^= 1 << rng.gen_range(0u32..8);
                    }
                    1 => {
                        let i = rng.gen_range(0usize..mutated.len());
                        mutated[i] = rng.next_u64() as u8;
                    }
                    _ => {
                        let keep = rng.gen_range(0usize..mutated.len());
                        mutated.truncate(keep);
                    }
                }
                if mutated.is_empty() {
                    break;
                }
            }
            // Either the corruption is caught (typed error) or it decodes
            // to *some* valid trace whose stream fully iterates — both
            // acceptable; panicking is not.
            if let Ok(t) = CapturedTrace::from_bytes(&mutated) {
                assert_eq!(t.events().count() as u64, t.total_events());
            }
        }
    }

    #[test]
    fn header_inconsistencies_are_rejected() {
        // Hand-build a file whose warm-up count exceeds its event total.
        let mut bytes = CAPTURE_MAGIC.to_vec();
        push_varint(&mut bytes, 1); // workload name length
        bytes.push(b't');
        push_varint(&mut bytes, 0); // footprint
        push_varint(&mut bytes, 0); // accesses
        for _ in 0..7 {
            push_varint(&mut bytes, 0); // front-end key
        }
        push_varint(&mut bytes, 1); // total_events
        push_varint(&mut bytes, 2); // warmup_events > total_events
        assert_eq!(
            CapturedTrace::from_bytes(&bytes),
            Err(DecodeError::Header("warm-up event count exceeds total"))
        );
    }

    #[test]
    fn single_byte_tampering_never_panics() {
        let mut b = TraceBuilder::new("t", 0, key());
        b.push(
            MemEvent::Read(BlockAddr::new(1), maps_trace::TenantId(1)),
            0,
        );
        b.mark_warmup_end();
        let mut bytes = b.finish(0).to_bytes();
        for i in 0..bytes.len() {
            let original = bytes[i];
            for delta in [1u8, 0x7F, 0x80, 0xFF] {
                bytes[i] = original.wrapping_add(delta);
                if let Ok(t) = CapturedTrace::from_bytes(&bytes) {
                    let _ = t.events().count();
                }
            }
            bytes[i] = original;
        }
    }

    #[test]
    fn encoding_is_compact() {
        let cfg = SimConfig::paper_default();
        let trace = CapturedTrace::record(&cfg, Benchmark::Libquantum.build(9), 20_000);
        // Spatially local streams should pack to a handful of bytes/event.
        let per_event = trace.encoded_len() as f64 / trace.total_events() as f64;
        assert!(per_event < 8.0, "packed encoding at {per_event:.1} B/event");
    }
}
