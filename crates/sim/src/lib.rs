//! The MAPS secure-memory simulator: a cache hierarchy over synthetic
//! workloads, a memory controller with counter-mode encryption and Bonsai
//! Merkle Tree verification, and the unified **metadata cache** whose
//! access patterns the paper characterizes.
//!
//! The pipeline is:
//!
//! ```text
//! workload -> L1 -> L2 -> LLC -> MetadataEngine (counters/hashes/tree)
//!                                     |-- metadata cache (all types)
//!                                     '-- DRAM (timing + energy)
//! ```
//!
//! [`SecureSim`] ties the stages together and produces a [`SimReport`]
//! with MPKI, energy/delay, and per-type statistics. The metadata access
//! stream can be observed (for reuse-distance profiling, Figures 3–5) or
//! recorded (to feed Belady's MIN its oracle trace, Figure 6).
//!
//! # Examples
//!
//! ```
//! use maps_sim::{SecureSim, SimConfig};
//! use maps_workloads::Benchmark;
//!
//! let cfg = SimConfig::paper_default();
//! let mut sim = SecureSim::new(cfg, Benchmark::Libquantum.build(1));
//! let report = sim.run(20_000);
//! assert!(report.instructions > 0);
//! ```

pub mod capture;
pub mod config;
pub mod engine;
pub mod hierarchy;
pub mod itermin;
pub mod mdcache;
pub mod probe;
pub mod report;
pub mod sim;

pub use capture::{
    CaptureLoadError, CapturedEvent, CapturedTrace, DecodeError, EventCursor, FrontEndKey,
    ReplaySim, TraceBuilder, DEFAULT_BATCH_EVENTS, MAX_BATCH_EVENTS,
};
pub use config::{CacheContents, MdcConfig, MdcDesign, PartitionMode, PolicyChoice, SimConfig};
pub use engine::{
    BatchPrefetcher, EngineStats, MetaObserver, MetadataEngine, NoPrefetch, NullObserver,
    RecordingObserver, TagPrefetcher, PREFETCH_DISTANCE,
};
pub use hierarchy::{Hierarchy, HierarchyStats, MemEvent};
pub use mdcache::MetadataCache;
pub use probe::MetricsProbe;
pub use report::{ReportCodecError, SimReport, TenantMdcStats, REPORT_SCHEMA_VERSION};
pub use sim::SecureSim;
