//! MIN and iterative-MIN drivers (Figure 6, Section V-B).
//!
//! Belady's MIN needs future knowledge, which the paper obtains by first
//! simulating with a conventional policy to record the metadata cache's
//! access trace, then replaying with the oracle. Because eviction
//! decisions change which tree nodes are accessed, the oracle's trace
//! drifts from reality — *iterMIN* iterates the record/replay loop toward
//! a fixed point. Both are implemented here; the paper's headline finding
//! (neither reliably beats pseudo-LRU on metadata) is reproduced by
//! `fig6` in `maps-bench`.

use maps_workloads::Benchmark;

use crate::capture::{CapturedTrace, ReplaySim};
use crate::config::{PolicyChoice, SimConfig};
use crate::engine::RecordingObserver;
use crate::SimReport;

/// Result of an iterMIN run.
#[derive(Debug, Clone)]
pub struct IterMinResult {
    /// Report of the final iteration.
    pub report: SimReport,
    /// Metadata-miss counts per iteration (iteration 0 is the trace-
    /// collection run under true LRU).
    pub misses_per_iteration: Vec<u64>,
    /// Whether the miss count converged before the iteration cap.
    pub converged: bool,
}

/// Records the shared front end for MIN runs: the whole window is
/// measured (warm-up would desynchronize the oracle's time base), so the
/// capture is taken with `warmup_fraction = 0`.
fn capture_for_min(cfg: &SimConfig, bench: Benchmark, seed: u64, accesses: u64) -> CapturedTrace {
    let mut cfg = cfg.clone();
    cfg.warmup_fraction = 0.0;
    CapturedTrace::record(&cfg, bench.build(seed), accesses)
}

fn collect_lru_trace(cfg: &SimConfig, capture: &CapturedTrace) -> (SimReport, Vec<u64>) {
    // The collection pass uses true LRU, per Section V-B.
    let cfg = cfg.with_mdc(cfg.mdc.with_policy(PolicyChoice::TrueLru));
    let mut rec = RecordingObserver::new();
    let report = ReplaySim::new(cfg, capture).run_observed(&mut rec);
    (report, rec.keys().collect())
}

/// Runs Belady's MIN with a single trace-collection pass under true LRU,
/// exactly as Section V-B describes ("simulate the benchmark once using
/// true-LRU, gather the cache access trace, and feed that trace back").
///
/// The returned report reflects the MIN replay. Note the paper's caveat:
/// once MIN's decisions deviate from the LRU run, its future knowledge is
/// stale — this is the behaviour under study, not a bug.
pub fn run_min(cfg: &SimConfig, bench: Benchmark, seed: u64, accesses: u64) -> SimReport {
    let mut cfg = cfg.clone();
    cfg.warmup_fraction = 0.0;
    run_min_on(&cfg, &capture_for_min(&cfg, bench, seed, accesses))
}

/// [`run_min`] over an already-captured front end, so sweeps can share one
/// capture across MIN points. The capture must measure the whole window
/// (no warm-up).
///
/// # Panics
///
/// Panics when `capture` contains warm-up events or its front end differs
/// from `cfg`'s.
pub fn run_min_on(cfg: &SimConfig, capture: &CapturedTrace) -> SimReport {
    assert_eq!(
        capture.warmup_events(),
        0,
        "MIN requires a warm-up-free capture"
    );
    let (_, trace) = collect_lru_trace(cfg, capture);
    let min_cfg = cfg.with_mdc(cfg.mdc.with_policy(PolicyChoice::TraceMin(trace)));
    ReplaySim::new(min_cfg, capture).run()
}

/// Iterates MIN to a fixed point: each round replays with an oracle built
/// from the previous round's *actual* access trace, until the metadata
/// miss count stabilizes or `max_iterations` is reached.
pub fn run_iter_min(
    cfg: &SimConfig,
    bench: Benchmark,
    seed: u64,
    accesses: u64,
    max_iterations: usize,
) -> IterMinResult {
    let mut cfg = cfg.clone();
    cfg.warmup_fraction = 0.0;
    run_iter_min_on(
        &cfg,
        &capture_for_min(&cfg, bench, seed, accesses),
        max_iterations,
    )
}

/// [`run_iter_min`] over an already-captured front end.
///
/// # Panics
///
/// Panics when `capture` contains warm-up events or its front end differs
/// from `cfg`'s.
pub fn run_iter_min_on(
    cfg: &SimConfig,
    capture: &CapturedTrace,
    max_iterations: usize,
) -> IterMinResult {
    assert_eq!(
        capture.warmup_events(),
        0,
        "iterMIN requires a warm-up-free capture"
    );
    let (lru_report, mut trace) = collect_lru_trace(cfg, capture);
    let mut misses = vec![lru_report.engine.meta.metadata_total().misses];
    let mut last_report = lru_report;
    let mut converged = false;

    for _ in 0..max_iterations {
        let min_cfg = cfg.with_mdc(cfg.mdc.with_policy(PolicyChoice::TraceMin(trace.clone())));
        let mut rec = RecordingObserver::new();
        let report = ReplaySim::new(min_cfg, capture).run_observed(&mut rec);
        let m = report.engine.meta.metadata_total().misses;
        let prev = *misses.last().expect("at least the LRU run");
        misses.push(m);
        last_report = report;
        trace = rec.keys().collect();
        if m == prev {
            converged = true;
            break;
        }
    }

    IterMinResult {
        report: last_report,
        misses_per_iteration: misses,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdcConfig;

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.mdc = MdcConfig::paper_default().with_size(16 << 10);
        cfg.warmup_fraction = 0.0;
        cfg
    }

    #[test]
    fn min_runs_and_reports() {
        let r = run_min(&small_cfg(), Benchmark::Libquantum, 5, 8_000);
        assert!(r.engine.meta.metadata_total().accesses > 0);
    }

    #[test]
    fn iter_min_produces_monotone_iteration_log() {
        let res = run_iter_min(&small_cfg(), Benchmark::Libquantum, 5, 8_000, 3);
        assert!(res.misses_per_iteration.len() >= 2);
        assert!(res.misses_per_iteration.iter().all(|&m| m > 0));
    }

    #[test]
    fn iter_min_converges_on_stationary_stream() {
        // A pure streaming workload has a stable access trace, so iterMIN
        // should converge quickly.
        let res = run_iter_min(&small_cfg(), Benchmark::Libquantum, 5, 6_000, 6);
        assert!(res.converged, "iterations: {:?}", res.misses_per_iteration);
    }
}
