//! Three-level data cache hierarchy.

use maps_cache::policy::TrueLru;
use maps_cache::{CacheConfig, SetAssocCache};
use maps_trace::{AccessKind, BlockAddr, BlockKind, MemAccess, TenantId};

use crate::SimConfig;

/// A memory-controller event produced by the hierarchy, tagged with the
/// tenant whose access produced it. Attribution is requester-pays: a
/// writeback is charged to the tenant whose demand access (or flush)
/// evicted the dirty line, not to the tenant that originally dirtied it —
/// the same convention hardware QoS counters use, and the only one that
/// needs no per-line owner state in the data hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// Demand fill of a data block (LLC read miss).
    Read(BlockAddr, TenantId),
    /// Writeback of a dirty data block (LLC eviction).
    Write(BlockAddr, TenantId),
}

impl MemEvent {
    /// The block the event moves.
    pub const fn block(&self) -> BlockAddr {
        let (MemEvent::Read(b, _) | MemEvent::Write(b, _)) = *self;
        b
    }

    /// The tenant charged for the event.
    pub const fn tenant(&self) -> TenantId {
        let (MemEvent::Read(_, t) | MemEvent::Write(_, t)) = *self;
        t
    }
}

/// Counters for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Core accesses observed.
    pub accesses: u64,
    /// Instructions retired (sum of icount).
    pub instructions: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// LLC demand misses (memory reads).
    pub llc_demand_misses: u64,
    /// Dirty LLC evictions (memory writes).
    pub llc_writebacks: u64,
}

impl HierarchyStats {
    /// LLC demand misses per thousand instructions.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_demand_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Exports the front-end counters under `{prefix}.*`.
    pub fn export<S: maps_obs::MetricSink>(&self, prefix: &str, sink: &mut S) {
        for (name, value) in [
            ("accesses", self.accesses),
            ("instructions", self.instructions),
            ("l1_misses", self.l1_misses),
            ("l2_misses", self.l2_misses),
            ("llc_demand_misses", self.llc_demand_misses),
            ("llc_writebacks", self.llc_writebacks),
        ] {
            if value != 0 {
                sink.counter_add(&format!("{prefix}.{name}"), value);
            }
        }
    }
}

/// L1 → L2 → LLC write-back hierarchy with write-allocate demand paths.
///
/// Dirty evictions are installed into the next level without a demand
/// fetch (the full block is in hand); only LLC dirty evictions reach
/// memory. All three levels use true LRU — the paper varies only the
/// *metadata* cache's policy.
///
/// # Examples
///
/// ```
/// use maps_sim::{Hierarchy, MemEvent, SimConfig};
/// use maps_trace::{AccessKind, MemAccess, PhysAddr};
///
/// let mut h = Hierarchy::new(&SimConfig::paper_default());
/// let mut events = Vec::new();
/// h.access(&MemAccess::new(PhysAddr::new(0), AccessKind::Read, 1), &mut events);
/// assert_eq!(
///     events,
///     vec![MemEvent::Read(PhysAddr::new(0).block(), maps_trace::TenantId::HOST)]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: SetAssocCache<TrueLru>,
    l2: SetAssocCache<TrueLru>,
    llc: SetAssocCache<TrueLru>,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds the hierarchy from a simulation configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            l1: SetAssocCache::new(
                CacheConfig::from_bytes(cfg.l1_bytes, cfg.l1_ways),
                TrueLru::new(),
            ),
            l2: SetAssocCache::new(
                CacheConfig::from_bytes(cfg.l2_bytes, cfg.l2_ways),
                TrueLru::new(),
            ),
            llc: SetAssocCache::new(
                CacheConfig::from_bytes(cfg.llc_bytes, cfg.llc_ways),
                TrueLru::new(),
            ),
            stats: HierarchyStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets statistics (cache contents persist) for post-warm-up runs.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Runs one core access through the hierarchy as [`TenantId::HOST`],
    /// appending memory events to `events` (cleared first). Returns
    /// `true` on an LLC demand miss.
    pub fn access(&mut self, access: &MemAccess, events: &mut Vec<MemEvent>) -> bool {
        self.access_from(access, TenantId::HOST, events)
    }

    /// Runs one core access through the hierarchy on behalf of `tenant`,
    /// appending memory events to `events` (cleared first). Returns
    /// `true` on an LLC demand miss. Every emitted event is charged to
    /// `tenant` (requester-pays, including victim writebacks).
    pub fn access_from(
        &mut self,
        access: &MemAccess,
        tenant: TenantId,
        events: &mut Vec<MemEvent>,
    ) -> bool {
        events.clear();
        self.stats.accesses += 1;
        self.stats.instructions += u64::from(access.icount);
        let block = access.addr.block();
        let write = access.kind == AccessKind::Write;

        let r1 = self.l1.access(block.index(), BlockKind::Data, write);
        if let Some(victim) = r1.evicted {
            if victim.dirty {
                self.writeback_to_l2(BlockAddr::new(victim.key), tenant, events);
            }
        }
        if r1.hit {
            return false;
        }
        self.stats.l1_misses += 1;

        // Demand fetch through L2.
        let r2 = self.l2.access(block.index(), BlockKind::Data, false);
        if let Some(victim) = r2.evicted {
            if victim.dirty {
                self.writeback_to_llc(BlockAddr::new(victim.key), tenant, events);
            }
        }
        if r2.hit {
            return false;
        }
        self.stats.l2_misses += 1;

        let r3 = self.llc.access(block.index(), BlockKind::Data, false);
        if let Some(victim) = r3.evicted {
            if victim.dirty {
                self.stats.llc_writebacks += 1;
                events.push(MemEvent::Write(BlockAddr::new(victim.key), tenant));
            }
        }
        if r3.hit {
            return false;
        }
        self.stats.llc_demand_misses += 1;
        events.push(MemEvent::Read(block, tenant));
        true
    }

    fn writeback_to_l2(&mut self, block: BlockAddr, tenant: TenantId, events: &mut Vec<MemEvent>) {
        let r = self.l2.access(block.index(), BlockKind::Data, true);
        if let Some(victim) = r.evicted {
            if victim.dirty {
                self.writeback_to_llc(BlockAddr::new(victim.key), tenant, events);
            }
        }
    }

    fn writeback_to_llc(&mut self, block: BlockAddr, tenant: TenantId, events: &mut Vec<MemEvent>) {
        let r = self.llc.access(block.index(), BlockKind::Data, true);
        if let Some(victim) = r.evicted {
            if victim.dirty {
                self.stats.llc_writebacks += 1;
                events.push(MemEvent::Write(BlockAddr::new(victim.key), tenant));
            }
        }
    }

    /// Flushes every dirty block in the hierarchy to memory, appending the
    /// final writebacks to `events`. Used at end-of-simulation accounting;
    /// flush traffic is charged to [`TenantId::HOST`].
    pub fn flush(&mut self, events: &mut Vec<MemEvent>) {
        events.clear();
        // Push L1 dirty lines down through L2 into the LLC, then drain it.
        let l1_lines = self.l1.drain();
        for line in l1_lines.into_iter().filter(|l| l.dirty) {
            self.writeback_to_l2(BlockAddr::new(line.key), TenantId::HOST, events);
        }
        let l2_lines = self.l2.drain();
        for line in l2_lines.into_iter().filter(|l| l.dirty) {
            self.writeback_to_llc(BlockAddr::new(line.key), TenantId::HOST, events);
        }
        for line in self.llc.drain().into_iter().filter(|l| l.dirty) {
            self.stats.llc_writebacks += 1;
            events.push(MemEvent::Write(BlockAddr::new(line.key), TenantId::HOST));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_trace::PhysAddr;

    fn acc(block: u64, kind: AccessKind) -> MemAccess {
        MemAccess::new(PhysAddr::new(block * 64), kind, 4)
    }

    #[test]
    fn first_touch_misses_everywhere() {
        let mut h = Hierarchy::new(&SimConfig::paper_default());
        let mut ev = Vec::new();
        assert!(h.access(&acc(1, AccessKind::Read), &mut ev));
        assert_eq!(ev, vec![MemEvent::Read(BlockAddr::new(1), TenantId::HOST)]);
        assert_eq!(h.stats().llc_demand_misses, 1);
    }

    #[test]
    fn rereference_hits_l1_silently() {
        let mut h = Hierarchy::new(&SimConfig::paper_default());
        let mut ev = Vec::new();
        h.access(&acc(1, AccessKind::Read), &mut ev);
        assert!(!h.access(&acc(1, AccessKind::Read), &mut ev));
        assert!(ev.is_empty());
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn dirty_data_eventually_written_back() {
        let mut cfg = SimConfig::paper_default();
        // Tiny hierarchy so evictions happen quickly.
        cfg.l1_bytes = 512;
        cfg.l2_bytes = 1024;
        cfg.llc_bytes = 2048;
        let mut h = Hierarchy::new(&cfg);
        let mut ev = Vec::new();
        let mut writes = 0;
        // Write a streaming pattern much larger than the LLC.
        for i in 0..10_000u64 {
            h.access(&acc(i, AccessKind::Write), &mut ev);
            writes += ev
                .iter()
                .filter(|e| matches!(e, MemEvent::Write(..)))
                .count();
        }
        assert!(writes > 5_000, "only {writes} writebacks observed");
    }

    #[test]
    fn writes_do_not_lose_dirty_state_across_levels() {
        let mut cfg = SimConfig::paper_default();
        cfg.l1_bytes = 128; // 2 blocks
        cfg.l1_ways = 2;
        cfg.l2_bytes = 256;
        cfg.l2_ways = 2;
        cfg.llc_bytes = 512;
        cfg.llc_ways = 2;
        let mut h = Hierarchy::new(&cfg);
        let mut ev = Vec::new();
        h.access(&acc(1, AccessKind::Write), &mut ev);
        // Evict block 1 from every level by streaming conflicting blocks.
        for i in 2..200u64 {
            h.access(&acc(i, AccessKind::Read), &mut ev);
            if ev.contains(&MemEvent::Write(BlockAddr::new(1), TenantId::HOST)) {
                return; // dirty block reached memory
            }
        }
        // If it never surfaced, flush must produce it.
        h.flush(&mut ev);
        assert!(ev.contains(&MemEvent::Write(BlockAddr::new(1), TenantId::HOST)));
    }

    #[test]
    fn flush_drains_all_dirty_lines() {
        let mut h = Hierarchy::new(&SimConfig::paper_default());
        let mut ev = Vec::new();
        for i in 0..32u64 {
            h.access(&acc(i, AccessKind::Write), &mut ev);
        }
        h.flush(&mut ev);
        let writes = ev
            .iter()
            .filter(|e| matches!(e, MemEvent::Write(..)))
            .count();
        assert_eq!(writes, 32);
    }

    #[test]
    fn llc_mpki_reflects_misses() {
        let mut h = Hierarchy::new(&SimConfig::paper_default());
        let mut ev = Vec::new();
        for i in 0..1000u64 {
            h.access(&acc(i * 999, AccessKind::Read), &mut ev);
        }
        assert!(h.stats().llc_mpki() > 100.0);
    }
}
