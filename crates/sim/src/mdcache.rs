//! The unified metadata cache at the memory controller.

use maps_cache::policy::AnyPolicy;
use maps_cache::{CacheConfig, CacheStats, DuelingController, Line, SetAssocCache};
use maps_trace::BlockKind;

use crate::config::{CacheContents, MdcConfig, PartitionMode};

/// Outcome of a metadata cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line evicted to make room, if any.
    pub evicted: Option<Line>,
    /// `true` when the kind is not admitted under the contents
    /// configuration (the access was a statistics-only probe).
    pub bypassed: bool,
}

/// A metadata cache holding (a configurable subset of) counters, hashes,
/// and tree nodes, with optional way partitioning and set dueling.
///
/// # Examples
///
/// ```
/// use maps_sim::{MdcConfig, MetadataCache};
/// use maps_trace::BlockKind;
///
/// let mut mdc = MetadataCache::new(&MdcConfig::paper_default()).unwrap();
/// let miss = mdc.access(100, BlockKind::Counter, false);
/// assert!(!miss.hit);
/// assert!(mdc.access(100, BlockKind::Counter, false).hit);
/// ```
#[derive(Debug)]
pub struct MetadataCache {
    cache: SetAssocCache<AnyPolicy>,
    contents: CacheContents,
    partial_writes: bool,
    dueling: Option<DuelingController>,
}

impl MetadataCache {
    /// Builds the cache, or `None` when the configuration disables it
    /// (zero capacity).
    ///
    /// # Panics
    ///
    /// Panics if a static partition is invalid for the associativity, or
    /// if a dynamic partition requests more leader sets than exist.
    pub fn new(cfg: &MdcConfig) -> Option<Self> {
        if cfg.size_bytes == 0 {
            return None;
        }
        let geometry = CacheConfig::from_bytes(cfg.size_bytes, cfg.ways);
        let mut cache = SetAssocCache::new(geometry, cfg.policy.build());
        let mut dueling = None;
        match cfg.partition {
            PartitionMode::None => {}
            PartitionMode::Static(p) => cache.set_partition(Some(p)),
            PartitionMode::Dynamic {
                a,
                b,
                leaders_per_side,
            } => {
                dueling = Some(DuelingController::new(
                    geometry.sets(),
                    cfg.ways,
                    leaders_per_side,
                    a,
                    b,
                ));
            }
        }
        Some(Self {
            cache,
            contents: cfg.contents,
            partial_writes: cfg.partial_writes,
            dueling,
        })
    }

    /// Which metadata types this cache admits.
    pub fn contents(&self) -> CacheContents {
        self.contents
    }

    /// Whether partial writes are enabled.
    pub fn partial_writes_enabled(&self) -> bool {
        self.partial_writes
    }

    /// Accumulated statistics (bypassed kinds are counted as misses).
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Resets statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Accesses a metadata block. Non-admitted kinds are probed for
    /// statistics and bypass allocation.
    #[inline]
    pub fn access(&mut self, key: u64, kind: BlockKind, write: bool) -> MdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.cache.probe(key, kind);
            return MdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        let r = if self.dueling.is_some() {
            let set = self.set_of(key);
            let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
            let r = self.cache.access_with(key, kind, write, partition.as_ref());
            if !r.hit {
                if let Some(d) = &mut self.dueling {
                    d.record_miss(set);
                }
            }
            r
        } else {
            self.cache.access_with(key, kind, write, None)
        };
        MdOutcome {
            hit: r.hit,
            evicted: r.evicted,
            bypassed: false,
        }
    }

    /// Write of a single 8 B sub-entry (hash or tree HMAC slot). With
    /// partial writes enabled, a miss inserts a placeholder holding only
    /// `slot` and does not require a memory fetch; the caller inspects
    /// `hit`/`bypassed` to decide on DRAM traffic.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    #[inline]
    pub fn write_partial(&mut self, key: u64, kind: BlockKind, slot: u8) -> MdOutcome {
        if !self.contents.admits(kind) {
            let hit = self.cache.probe(key, kind);
            return MdOutcome {
                hit,
                evicted: None,
                bypassed: true,
            };
        }
        if self.cache.access_mark_valid(key, kind, slot).is_some() {
            return MdOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }
        if !self.partial_writes {
            // Caller must fetch the block from memory; insert it complete.
            return self.access(key, kind, true);
        }
        let set = self.set_of(key);
        let partition = self.dueling.as_ref().map(|d| d.partition_for(set));
        // Record the miss in both cache stats and the dueling selector.
        self.cache.probe(key, kind);
        if let Some(d) = &mut self.dueling {
            d.record_miss(set);
        }
        let evicted = self
            .cache
            .insert_placeholder(key, kind, slot, partition.as_ref());
        MdOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.cache.contains(key)
    }

    /// Valid mask of a resident line, if any.
    pub fn valid_mask(&self, key: u64) -> Option<u8> {
        self.cache.line(key).map(|l| l.valid_mask)
    }

    /// Marks a resident line fully valid (after a completing fill read).
    pub fn complete_line(&mut self, key: u64) {
        for slot in 0..8 {
            if self.cache.mark_valid(key, slot).is_none() {
                break;
            }
        }
    }

    /// Drains all resident lines (end-of-run writeback accounting).
    pub fn drain(&mut self) -> Vec<Line> {
        self.cache.drain()
    }

    /// Iterates over resident lines (for contents inspection, e.g. the
    /// per-set diversity analysis of Section V-C). Lines are materialized
    /// from the cache's column store.
    pub fn resident_lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.cache.resident_lines()
    }

    /// Prefetches the metadata-cache rows `key` would touch into the host
    /// cache (a hint for the batched replay path; no architectural effect).
    #[inline]
    pub fn prefetch(&self, key: u64) {
        self.cache.prefetch_set(key);
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    /// The inner cache's access counter (policy time base).
    pub fn time(&self) -> u64 {
        self.cache.time()
    }

    fn set_of(&self, key: u64) -> usize {
        self.cache.config().set_of(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyChoice;
    use maps_cache::Partition;

    fn cfg() -> MdcConfig {
        MdcConfig::paper_default().with_size(4096)
    }

    #[test]
    fn zero_size_disables() {
        assert!(MetadataCache::new(&MdcConfig::disabled()).is_none());
    }

    #[test]
    fn bypassed_kinds_probe_only() {
        let mut mdc =
            MetadataCache::new(&cfg().with_contents(CacheContents::COUNTERS_ONLY)).unwrap();
        let out = mdc.access(7, BlockKind::Hash, false);
        assert!(out.bypassed);
        assert!(!out.hit);
        assert!(!mdc.contains(7));
        // Misses recorded for MPKI accounting.
        assert_eq!(mdc.stats().kind(BlockKind::Hash).misses, 1);
    }

    #[test]
    fn partial_write_inserts_placeholder_without_fetch() {
        let mut cfg = cfg();
        cfg.partial_writes = true;
        let mut mdc = MetadataCache::new(&cfg).unwrap();
        let out = mdc.write_partial(9, BlockKind::Hash, 3);
        assert!(!out.hit);
        assert!(!out.bypassed);
        assert_eq!(mdc.valid_mask(9), Some(0b1000));
        // A second write to another slot coalesces.
        let out2 = mdc.write_partial(9, BlockKind::Hash, 4);
        assert!(out2.hit);
        assert_eq!(mdc.valid_mask(9), Some(0b11000));
    }

    #[test]
    fn without_partial_writes_misses_insert_complete() {
        let mut mdc = MetadataCache::new(&cfg()).unwrap();
        let out = mdc.write_partial(9, BlockKind::Hash, 3);
        assert!(!out.hit);
        assert_eq!(mdc.valid_mask(9), Some(0xFF));
    }

    #[test]
    fn complete_line_fills_mask() {
        let mut cfg = cfg();
        cfg.partial_writes = true;
        let mut mdc = MetadataCache::new(&cfg).unwrap();
        mdc.write_partial(9, BlockKind::Hash, 0);
        mdc.complete_line(9);
        assert_eq!(mdc.valid_mask(9), Some(0xFF));
    }

    #[test]
    fn static_partition_separates_counters_and_hashes() {
        let mut c = cfg();
        c.partition = PartitionMode::Static(Partition::counter_ways(4));
        c.policy = PolicyChoice::TrueLru;
        let mut mdc = MetadataCache::new(&c).unwrap();
        let sets = 4096 / 64 / 8; // 8 sets
                                  // Fill one set with counters far beyond 4 ways: occupancy in that
                                  // set must cap at 4 counter lines.
        for i in 0..32u64 {
            mdc.access(i * sets as u64, BlockKind::Counter, false);
        }
        assert_eq!(mdc.occupancy(), 4);
    }

    #[test]
    fn dynamic_mode_constructs_and_runs() {
        let mut c = cfg();
        c.partition = PartitionMode::Dynamic {
            a: Partition::counter_ways(2),
            b: Partition::counter_ways(6),
            leaders_per_side: 2,
        };
        let mut mdc = MetadataCache::new(&c).unwrap();
        for i in 0..1000u64 {
            mdc.access(i, BlockKind::Counter, false);
            mdc.access(10_000 + i, BlockKind::Hash, i % 3 == 0);
        }
        assert!(mdc.stats().total().accesses >= 2000);
    }
}
